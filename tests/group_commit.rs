//! Commit-path regressions at the engine level: a failing checkpoint must
//! never fail a transaction whose commit record is already durable, commit
//! and checkpoint stamps must stay monotone in LSN order under concurrency,
//! batched DML must roll back and crash-recover exactly like row-at-a-time
//! DML, and concurrent commits must coalesce onto fewer physical flushes.

use rewind::common::{Error, IoStats, Lsn, PageId, Result, SimClock, Timestamp};
use rewind::pagestore::{FileManager, MemFileManager, Page};
use rewind::wal::{LogConfig, LogPayloadView};
use rewind::{Column, DataType, Database, DbConfig, Row, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn row(id: u64) -> Row {
    vec![Value::U64(id), Value::str(&format!("row-{id}"))]
}

// ---- bug 2: commit is infallible once the flush succeeded ------------------

/// A file manager that forwards to an in-memory backend but fails page
/// writes on demand — enough to make `BufferPool::flush_all` (and therefore
/// checkpoints) fail.
struct FailingFm {
    inner: MemFileManager,
    fail_writes: AtomicBool,
}

impl FailingFm {
    fn new() -> Self {
        FailingFm {
            inner: MemFileManager::new(),
            fail_writes: AtomicBool::new(false),
        }
    }
}

impl FileManager for FailingFm {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        self.inner.read_page(pid)
    }

    fn read_page_seq(&self, pid: PageId) -> Result<Page> {
        self.inner.read_page_seq(pid)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        if self.fail_writes.load(Ordering::Acquire) {
            return Err(Error::Io("injected write failure".into()));
        }
        self.inner.write_page(pid, page)
    }

    fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()> {
        if self.fail_writes.load(Ordering::Acquire) {
            return Err(Error::Io("injected write failure".into()));
        }
        self.inner.write_page_seq(pid, page)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow_to(&self, count: u64) -> Result<()> {
        self.inner.grow_to(count)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn io_stats(&self) -> &Arc<IoStats> {
        self.inner.io_stats()
    }
}

// Scalar-delegating batched defaults: a failed write fails per page.
impl rewind_pagestore::IoBackend for FailingFm {}

/// Regression: `Database::commit` used to run `maybe_checkpoint()` on the
/// commit path and propagate its error, reporting `Err` for a transaction
/// that was already durably committed. A checkpoint failure must now be
/// deferred, every such commit must return `Ok`, and the data must survive.
#[test]
fn failing_checkpoint_does_not_fail_a_durable_commit() {
    let fm = Arc::new(FailingFm::new());
    let db = Database::create_on(
        fm.clone(),
        DbConfig {
            // Tiny interval so nearly every commit tries to checkpoint.
            checkpoint_interval_bytes: 4096,
            ..DbConfig::default()
        },
        SimClock::new(),
    )
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();

    // Break page writes: checkpoints now fail, commits must not.
    fm.fail_writes.store(true, Ordering::Release);
    for i in 0..64 {
        let r = db.with_txn(|txn| db.insert(txn, "t", &row(i)));
        assert!(r.is_ok(), "durable commit {i} reported as failed: {r:?}");
    }
    db.quiesce_checkpoints();
    let errs = db.take_background_errors();
    assert!(
        !errs.is_empty(),
        "the checkpoint failures must surface through the background channel"
    );
    assert!(errs
        .iter()
        .all(|(what, _)| what == "post-commit checkpoint"));

    // Every committed row is present, and the engine recovers fully once
    // the device heals.
    fm.fail_writes.store(false, Ordering::Release);
    let rows = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap();
    assert_eq!(rows.len(), 64);
    db.checkpoint().unwrap();
    db.quiesce_checkpoints();
    assert!(db.take_background_errors().is_empty());
}

// ---- bug 3: stamps are monotone in LSN order under concurrency -------------

/// Checkpoint Begin/End used to be stamped *outside* the commit sequencer,
/// so a checkpoint racing commits could log a timestamp older than the last
/// indexed commit — breaking the binary-search invariant SplitLSN relies
/// on. Stamps are now issued under the log writer mutex: scanning the whole
/// log must find commit/checkpoint stamps nondecreasing in LSN order.
#[test]
fn commit_and_checkpoint_stamps_monotone_under_races() {
    let db = Arc::new(
        Database::create(DbConfig {
            checkpoint_interval_bytes: 0, // manual checkpoints only
            ..DbConfig::default()
        })
        .unwrap(),
    );
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let committers: Vec<_> = (0..2u64)
        .map(|t| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..150u64 {
                    db.clock().advance_micros(3);
                    db.with_txn(|txn| db.insert(txn, "t", &row(t * 10_000 + i)))
                        .unwrap();
                }
            })
        })
        .collect();
    let checkpointer = {
        let db = db.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                db.clock().advance_micros(7);
                db.checkpoint().unwrap();
            }
        })
    };
    for c in committers {
        c.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    checkpointer.join().unwrap();

    // Every stamped record, in LSN order, must carry a nondecreasing stamp.
    let mut last = Timestamp::ZERO;
    let mut stamped = 0u64;
    db.log()
        .scan_views(Lsn::FIRST, Lsn::MAX, |h, view| {
            let at = match view {
                LogPayloadView::Commit { at } => Some(*at),
                LogPayloadView::CheckpointBegin { at } => Some(*at),
                _ => None,
            };
            if let Some(at) = at {
                assert!(
                    at >= last,
                    "stamp regressed at {}: {at:?} < {last:?}",
                    h.lsn
                );
                last = at;
                stamped += 1;
            }
            Ok(true)
        })
        .unwrap();
    assert!(
        stamped > 300,
        "expected commits + checkpoints, saw {stamped}"
    );

    // The checkpoint directory stays binary-searchable on both keys.
    let dir = db.log().checkpoints();
    assert!(dir.windows(2).all(|w| w[0].end_lsn < w[1].end_lsn));
    assert!(dir.windows(2).all(|w| w[0].at <= w[1].at));
}

// ---- batched DML: rollback and crash recovery ------------------------------

/// `insert_rows` on a heap table frames whole pages of inserts as one
/// batched log append. The batch-chained records must behave exactly like
/// row-at-a-time appends: rollback walks the chain backwards through the
/// batch, and crash recovery redoes it.
#[test]
fn batched_heap_inserts_roll_back_and_crash_recover() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_heap_table(txn, "h", schema())?;
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();

    // Rollback: a batched multi-page insert disappears completely.
    let rows: Vec<Row> = (0..400).map(row).collect();
    let txn = db.begin();
    db.insert_rows(&txn, "h", &rows).unwrap();
    db.rollback(txn).unwrap();
    assert_eq!(db.with_txn(|t| db.scan_all(t, "h")).unwrap().len(), 0);

    // Commit both a heap batch and a tree batch, then crash.
    db.with_txn(|txn| {
        db.insert_rows(txn, "h", &rows)?;
        db.insert_rows(txn, "t", &rows)?;
        Ok(())
    })
    .unwrap();
    let db = Database::recover(db.simulate_crash()).unwrap();
    let heap_rows = db.with_txn(|t| db.scan_all(t, "h")).unwrap();
    let tree_rows = db.with_txn(|t| db.scan_all(t, "t")).unwrap();
    assert_eq!(
        heap_rows, rows,
        "heap batch must survive the crash in order"
    );
    assert_eq!(tree_rows, rows, "tree batch must survive the crash");
}

// ---- group commit through Database::commit ---------------------------------

/// With a modeled device sync latency, concurrent `Database::commit`s
/// coalesce onto fewer physical flushes than commits, while every commit
/// remains durable and visible.
#[test]
fn concurrent_database_commits_coalesce_flushes() {
    let db = Arc::new(
        Database::create(DbConfig {
            checkpoint_interval_bytes: 0,
            log: LogConfig {
                flush_delay_us: 50,
                ..LogConfig::default()
            },
            ..DbConfig::default()
        })
        .unwrap(),
    );
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();

    let threads = 4u64;
    let per_thread = 40u64;
    let s0 = db.log_io();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    db.with_txn(|txn| db.insert(txn, "t", &row(t * 1_000 + i)))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let commits = threads * per_thread;
    let flushes = db.log_io().log_flushes - s0.log_flushes;
    assert!(flushes > 0);
    assert!(
        flushes < commits,
        "no coalescing: {flushes} flushes for {commits} commits"
    );
    assert_eq!(
        db.with_txn(|t| db.scan_all(t, "t")).unwrap().len() as u64,
        commits
    );
    // Nothing committed is left volatile.
    assert_eq!(db.log().flushed_lsn(), db.log().tail_lsn());
}
