//! Proof that warm snapshot reads are zero-copy.
//!
//! The side file stores immutable `Arc`-shared [`PageImage`]s; a warm §5.3
//! hit is an `Arc` clone served borrowed to the query closure. A counting
//! global allocator verifies the claim the hard way: re-reading prepared
//! pages performs **zero page-sized allocations** — no 8 KiB page is ever
//! cloned on the warm path. (The pre-image side file cloned 8 KiB per hit,
//! under the shard lock.)

use rewind::access::store::Store;
use rewind::common::testalloc::{allocations, large_allocations, CountingAllocator};
use rewind::{Column, DataType, Database, DbConfig, Schema, Value};

// The shared counting allocator: every allocation counted, page-sized
// (>= 8 KiB) ones tracked separately — any 8 KiB page clone lands in the
// large-allocation counter. Same implementation the snapbench CI gate uses.
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn counts() -> (u64, u64) {
    (allocations(), large_allocations())
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

#[test]
fn warm_side_file_hits_allocate_no_pages() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    // Enough rows for a multi-page tree, in several transactions so pages
    // carry real history.
    let pad = "x".repeat(64);
    for chunk in 0..8u64 {
        db.with_txn(|txn| {
            for i in 0..250 {
                let id = chunk * 250 + i;
                db.insert(
                    txn,
                    "t",
                    &[Value::U64(id), Value::Str(format!("v{id}-{pad}"))],
                )?;
            }
            Ok(())
        })
        .unwrap();
    }
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);
    // Post-split updates so preparation has genuine undo work.
    db.with_txn(|txn| {
        for i in (0..2000u64).step_by(17) {
            db.update(
                txn,
                "t",
                &[Value::U64(i), Value::Str(format!("w{i}-{pad}"))],
            )?;
        }
        Ok(())
    })
    .unwrap();

    let snap = db.create_snapshot_asof("zc", t0).unwrap();
    snap.wait_undo_complete();
    // Cold pass: prepare every page of the table (the §5.3 miss path; this
    // side allocates — once per page, into the shared image).
    let table = snap.table("t").unwrap();
    let rows = snap.scan_all(&table).unwrap();
    assert_eq!(rows.len(), 2000);

    let warm: Vec<_> = snap.raw().side_page_ids();
    assert!(warm.len() > 10, "need a real warm set, got {}", warm.len());
    let store = snap.raw().store();
    let hits0 = snap.stats().side_hits;

    // Warm-up pass (thread-locals, lazy statics — one-time costs).
    for &pid in &warm {
        store
            .with_page(pid, |p| {
                assert!(p.page_lsn().is_valid() || p.page_lsn().0 == 0);
                Ok(())
            })
            .unwrap();
    }

    // Measured pass: every access is a warm side-file hit; not one page
    // clone — in fact not one allocation of any size.
    let (alloc0, palloc0) = counts();
    for _ in 0..3 {
        for &pid in &warm {
            store
                .with_page(pid, |p| Ok(std::hint::black_box(p.page_lsn())))
                .unwrap();
        }
    }
    let (alloc1, palloc1) = counts();
    assert_eq!(
        palloc1 - palloc0,
        0,
        "warm side-file hits must not clone pages ({} page-sized allocations over {} hits)",
        palloc1 - palloc0,
        3 * warm.len()
    );
    assert_eq!(
        alloc1 - alloc0,
        0,
        "warm side-file hits must not allocate at all ({} allocations over {} hits)",
        alloc1 - alloc0,
        3 * warm.len()
    );
    let hits1 = snap.stats().side_hits;
    assert!(
        hits1 - hits0 >= 4 * warm.len() as u64,
        "accesses were not warm hits: {} over {} pages",
        hits1 - hits0,
        warm.len()
    );
    db.drop_snapshot("zc").unwrap();
}

#[test]
fn warm_hits_share_one_image_allocation() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        for i in 0..500u64 {
            db.insert(txn, "t", &[Value::U64(i), Value::Str(format!("v{i}"))])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(2);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(1);

    let snap = db.create_snapshot_asof("share", t0).unwrap();
    snap.wait_undo_complete();
    let table = snap.table("t").unwrap();
    let _ = snap.scan_all(&table).unwrap();

    let store = snap.raw().store();
    for pid in snap.raw().side_page_ids() {
        // Two reads of the same warm page return the same allocation, and
        // holding one keeps its epoch even if undo overwrites the entry.
        let a = match store.read_page(pid).unwrap() {
            rewind::buffer::PageRead::Image(img) => img,
            rewind::buffer::PageRead::Frame(_) => panic!("warm snapshot read must be an image"),
        };
        let b = match store.read_page(pid).unwrap() {
            rewind::buffer::PageRead::Image(img) => img,
            rewind::buffer::PageRead::Frame(_) => panic!("warm snapshot read must be an image"),
        };
        assert!(a.same_as(&b), "hits share one allocation");
    }
    db.drop_snapshot("share").unwrap();
}
