//! The flashback engine end-to-end: a TPC-C-shaped "erroneous batch job"
//! is surgically reverted while all later work survives, verified against
//! an oracle run that never executed the bad batch; plus conflict policies
//! and repair idempotency on a focused schema.

use rewind::repair::{diff_table, flashback, ConflictPolicy, RepairConfig, RepairTarget};
use rewind::tpcc::{self, bad_credit_batch, create_schema, load_initial, NewOrderLine, TpccScale};
use rewind::{Column, DataType, Database, DbConfig, Schema, SimClock, Timestamp, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

fn scale() -> TpccScale {
    TpccScale {
        warehouses: 2,
        districts_per_warehouse: 2,
        customers_per_district: 8,
        items: 40,
        initial_orders_per_district: 4,
    }
}

fn mk_db() -> Arc<Database> {
    // Separate clocks, identical start: both runs see the same timestamps
    // as long as the test advances them in lockstep.
    let clock = SimClock::starting_at(Timestamp::from_secs(1_000));
    Arc::new(Database::create_with_clock(DbConfig::default(), clock).unwrap())
}

/// A deterministic slab of TPC-C work. `w_id` confines it to one
/// warehouse so pre- and post-error work can be kept disjoint from the
/// damaged rows.
fn run_work(db: &Arc<Database>, w_id: u64, rounds: u64) {
    let sc = scale();
    for i in 0..rounds {
        let d_id = 1 + i % sc.districts_per_warehouse;
        let c_id = 1 + i % sc.customers_per_district;
        db.with_txn(|txn| {
            tpcc::new_order(
                db,
                txn,
                w_id,
                d_id,
                c_id,
                &[
                    NewOrderLine {
                        item_id: 1 + i % sc.items,
                        supply_w_id: w_id,
                        quantity: 3,
                    },
                    NewOrderLine {
                        item_id: 1 + (i * 7 + 3) % sc.items,
                        supply_w_id: w_id,
                        quantity: 1,
                    },
                ],
            )
            .map(|_| ())
        })
        .unwrap();
        db.with_txn(|txn| {
            tpcc::payment(
                db,
                txn,
                w_id,
                d_id,
                tpcc::txns::CustomerSelector::ById(c_id),
                7.25 + i as f64,
            )
        })
        .unwrap();
        db.clock().advance_secs(1);
    }
}

const TABLES: &[&str] = &[
    "warehouse",
    "district",
    "customer",
    "item",
    "stock",
    "orders",
    "new_order",
    "order_line",
    "history",
];

fn all_rows(db: &Arc<Database>, table: &str) -> Vec<rewind::Row> {
    let txn = db.begin();
    let rows = db.scan_all(&txn, table).unwrap();
    db.commit(txn).unwrap();
    rows
}

#[test]
fn erroneous_batch_flashback_matches_oracle() {
    let db = mk_db();
    let oracle = mk_db();
    for d in [&db, &oracle] {
        create_schema(d).unwrap();
        load_initial(d, &scale()).unwrap();
    }

    // Business as usual on both runs.
    run_work(&db, 1, 6);
    run_work(&oracle, 1, 6);
    db.checkpoint().unwrap();
    oracle.checkpoint().unwrap();

    // The erroneous batch job — only the real run executes it. The oracle's
    // clock advances identically so later commit stamps stay in lockstep.
    let bad_txn = {
        let txn = db.begin();
        let damaged = bad_credit_batch(&db, &txn, 1).unwrap();
        assert_eq!(
            damaged,
            scale().districts_per_warehouse * scale().customers_per_district
        );
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(5);
    oracle.clock().advance_secs(5);
    let damaged_at = db.clock().now();
    db.clock().advance_secs(5);
    oracle.clock().advance_secs(5);

    // Later work that must survive: confined to warehouse 2, disjoint from
    // every damaged row.
    run_work(&db, 2, 6);
    run_work(&oracle, 2, 6);

    // Flash the batch back.
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 2,
        },
    )
    .unwrap();
    assert_eq!(
        report.applied as u64,
        scale().districts_per_warehouse * scale().customers_per_district,
        "every damaged customer is restored"
    );
    assert!(
        report.skipped_conflicts.is_empty(),
        "no later writer overlaps"
    );
    assert!(
        report.unsupported.is_empty(),
        "the batch touched only B-Trees"
    );
    assert!(
        report.repair_txn.is_some(),
        "the repair ran as one transaction"
    );

    // Oracle equality: the repaired run is row-for-row the run on which the
    // batch never happened.
    for table in TABLES {
        assert_eq!(
            all_rows(&db, table),
            all_rows(&oracle, table),
            "table {table} diverged from the oracle"
        );
    }

    // The repair is an ordinary transaction: an as-of query *between* the
    // error and the repair still sees the damage; the present does not.
    db.clock().advance_secs(2);
    let snap = db.create_snapshot_asof("mid-damage", damaged_at).unwrap();
    let cust = snap.table("customer").unwrap();
    let damaged_row = snap
        .get(&cust, &[Value::U64(1), Value::U64(1), Value::U64(1)])
        .unwrap()
        .unwrap();
    assert_eq!(damaged_row[9], Value::str("PROMO-APPLIED"));
    assert_eq!(damaged_row[5], Value::F64(0.0));
    db.drop_snapshot("mid-damage").unwrap();

    let txn = db.begin();
    let live_row = db
        .get(
            &txn,
            "customer",
            &[Value::U64(1), Value::U64(1), Value::U64(1)],
        )
        .unwrap()
        .unwrap();
    db.commit(txn).unwrap();
    assert_ne!(live_row[9], Value::str("PROMO-APPLIED"));
}

fn small_table(db: &Database) {
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::Str),
                ],
                &["id"],
            )?,
        )?;
        for i in 1..=10u64 {
            db.insert(txn, "t", &[Value::U64(i), Value::str(&format!("v{i}"))])?;
        }
        Ok(())
    })
    .unwrap();
}

fn get_t(db: &Database, id: u64) -> Option<rewind::Row> {
    let txn = db.begin();
    let r = db.get(&txn, "t", &[Value::U64(id)]).unwrap();
    db.commit(txn).unwrap();
    r
}

#[test]
fn conflict_policies_skip_then_overwrite() {
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(10);

    // The bad transaction: updates 1..=5, deletes 6, inserts 11.
    let bad_txn = {
        let txn = db.begin();
        for i in 1..=5u64 {
            db.update(&txn, "t", &[Value::U64(i), Value::str("bad")])
                .unwrap();
        }
        db.delete(&txn, "t", &[Value::U64(6)]).unwrap();
        db.insert(&txn, "t", &[Value::U64(11), Value::str("bad-new")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(10);

    // A later, legitimate transaction overwrites key 2 and adds key 12.
    let later_txn = {
        let txn = db.begin();
        db.update(&txn, "t", &[Value::U64(2), Value::str("later")])
            .unwrap();
        db.insert(&txn, "t", &[Value::U64(12), Value::str("later-new")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(10);

    // Skip policy: everything but the conflicted key reverts.
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 1,
        },
    )
    .unwrap();
    // 4 restore-updates (1,3,4,5) + 1 reinsert (6) + 1 delete (11).
    assert_eq!(report.applied, 6);
    assert_eq!(report.skipped_conflicts.len(), 1, "key 2 is conflicted");
    let skipped = &report.skipped_conflicts[0];
    assert_eq!(skipped.entry.key, vec![Value::U64(2)]);
    assert_eq!(skipped.later.unwrap().txn, later_txn);

    for i in [1u64, 3, 4, 5] {
        assert_eq!(get_t(&db, i).unwrap()[1], Value::str(&format!("v{i}")));
    }
    assert_eq!(
        get_t(&db, 2).unwrap()[1],
        Value::str("later"),
        "conflict kept"
    );
    assert_eq!(get_t(&db, 6).unwrap()[1], Value::str("v6"), "delete undone");
    assert!(get_t(&db, 11).is_none(), "bad insert removed");
    assert_eq!(
        get_t(&db, 12).unwrap()[1],
        Value::str("later-new"),
        "later insert kept"
    );

    // Overwrite policy on the same target: only the conflicted key is left
    // to restore, and it is restored.
    db.clock().advance_secs(10);
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Overwrite,
            prefetch_workers: 1,
        },
    )
    .unwrap();
    assert_eq!(report.applied, 1);
    assert_eq!(report.overwritten_conflicts, 1);
    assert_eq!(get_t(&db, 2).unwrap()[1], Value::str("v2"));

    // Idempotency: a third run finds nothing to do.
    db.clock().advance_secs(10);
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig::default(),
    )
    .unwrap();
    assert_eq!(report.applied, 0);
    assert!(report.skipped_conflicts.is_empty());
    assert!(report.repair_txn.is_none());
}

#[test]
fn report_only_plans_without_touching_anything() {
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(5);
    let bad_txn = {
        let txn = db.begin();
        db.update(&txn, "t", &[Value::U64(1), Value::str("bad")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(5);

    let report =
        rewind::repair::plan_flashback(&db, &RepairTarget::Txns(BTreeSet::from([bad_txn])))
            .unwrap();
    assert_eq!(report.applied, 0);
    assert_eq!(report.plan.actionable(), 1);
    assert!(report.repair_txn.is_none());
    assert_eq!(
        get_t(&db, 1).unwrap()[1],
        Value::str("bad"),
        "dry run changed nothing"
    );
}

#[test]
fn time_window_targets_every_commit_in_the_window() {
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(100);

    let from = db.clock().now();
    db.clock().advance_secs(1);
    db.with_txn(|txn| db.update(txn, "t", &[Value::U64(1), Value::str("bad1")]))
        .unwrap();
    db.clock().advance_secs(1);
    db.with_txn(|txn| db.update(txn, "t", &[Value::U64(2), Value::str("bad2")]))
        .unwrap();
    db.clock().advance_secs(1);
    let to = db.clock().now();

    db.clock().advance_secs(50);
    db.with_txn(|txn| db.update(txn, "t", &[Value::U64(3), Value::str("after")]))
        .unwrap();

    let report = flashback(
        &db,
        &RepairTarget::TimeWindow { from, to },
        &RepairConfig::default(),
    )
    .unwrap();
    assert_eq!(report.targets.len(), 2, "both window commits are targets");
    assert_eq!(report.applied, 2);
    assert_eq!(get_t(&db, 1).unwrap()[1], Value::str("v1"));
    assert_eq!(get_t(&db, 2).unwrap()[1], Value::str("v2"));
    assert_eq!(
        get_t(&db, 3).unwrap()[1],
        Value::str("after"),
        "outside the window"
    );
}

#[test]
fn flashback_rejects_unknown_and_inflight_targets() {
    let db = mk_db();
    small_table(&db);
    let err = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([rewind::TxnId(99_999)])),
        &RepairConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, rewind::Error::InvalidArg(_)), "got {err:?}");

    // An in-flight transaction cannot be flashed back.
    let txn = db.begin();
    db.update(&txn, "t", &[Value::U64(1), Value::str("wip")])
        .unwrap();
    let id = txn.id();
    let err = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([id])),
        &RepairConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, rewind::Error::InvalidArg(_)), "got {err:?}");
    db.rollback(txn).unwrap();
}

#[test]
fn repair_transaction_is_itself_flashbackable() {
    // The compensation is a regular logged transaction — so it can itself
    // be reverted, bringing the damage back. (Nobody said flashback had to
    // be used wisely.)
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(5);
    let bad_txn = {
        let txn = db.begin();
        db.update(&txn, "t", &[Value::U64(1), Value::str("bad")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(5);
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig::default(),
    )
    .unwrap();
    let repair_txn = report.repair_txn.unwrap();
    assert_eq!(get_t(&db, 1).unwrap()[1], Value::str("v1"));

    db.clock().advance_secs(5);
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([repair_txn])),
        &RepairConfig::default(),
    )
    .unwrap();
    assert_eq!(report.applied, 1);
    assert_eq!(
        get_t(&db, 1).unwrap()[1],
        Value::str("bad"),
        "the repair was undone"
    );
}

#[test]
fn commits_between_harvest_and_apply_become_conflicts() {
    // The harvest→plan race, simulated deterministically: a transaction
    // that commits *after* the harvest pass but before apply must still be
    // treated as a later writer (refresh_conflicts closes the window the
    // engine runs through on every flashback).
    use rewind::repair::{harvest_log, refresh_conflicts};
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(5);
    let bad_txn = {
        let txn = db.begin();
        db.update(&txn, "t", &[Value::U64(1), Value::str("bad")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(5);

    let mut harvest =
        harvest_log(db.log(), &RepairTarget::Txns(BTreeSet::from([bad_txn]))).unwrap();
    assert!(harvest.conflicts.is_empty());

    // The racing commit lands after the harvest pass finished.
    let racer = {
        let txn = db.begin();
        db.update(&txn, "t", &[Value::U64(1), Value::str("racer")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };

    refresh_conflicts(db.log(), &mut harvest).unwrap();
    let conflict = harvest
        .conflicts
        .values()
        .next()
        .expect("the racing commit is now a conflict");
    assert_eq!(conflict.txn, racer);

    // And end-to-end: flashback under Skip preserves the racer's write.
    db.clock().advance_secs(5);
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig::default(),
    )
    .unwrap();
    assert_eq!(report.applied, 0);
    assert_eq!(report.skipped_conflicts.len(), 1);
    assert_eq!(get_t(&db, 1).unwrap()[1], Value::str("racer"));
}

#[test]
fn diff_table_is_empty_without_changes() {
    let db = mk_db();
    small_table(&db);
    db.clock().advance_secs(60);
    db.checkpoint().unwrap();
    let before = db.clock().now();
    db.clock().advance_secs(60);
    let snap = db.create_snapshot_asof("quiet", before).unwrap();
    assert!(diff_table(&db, &snap, "t").unwrap().is_empty());
    db.drop_snapshot("quiet").unwrap();
}
