//! `restore_table_from_snapshot` hardening: restoring into a live table
//! whose schema drifted since the split fails with a typed error before a
//! single row is written; matching-schema restores reconcile in place.

use rewind::{
    restore_table_from_snapshot, Column, DataType, Database, DbConfig, Error, Schema, Value,
};

fn setup() -> Database {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::Str),
                ],
                &["id"],
            )?,
        )?;
        for i in 1..=5u64 {
            db.insert(txn, "t", &[Value::U64(i), Value::str(&format!("v{i}"))])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(60);
    db.checkpoint().unwrap();
    db
}

#[test]
fn schema_drift_fails_typed_without_corrupting_rows() {
    let db = setup();
    let before = db.clock().now();
    db.clock().advance_secs(60);

    // The drift: the table is dropped and recreated under the same name
    // with an extra column (there is no ALTER TABLE; drop+recreate is how
    // schemas change here).
    db.with_txn(|txn| db.drop_table(txn, "t")).unwrap();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::Str),
                    Column::new("extra", DataType::I64),
                ],
                &["id"],
            )?,
        )?;
        db.insert(txn, "t", &[Value::U64(9), Value::str("new"), Value::I64(1)])
    })
    .unwrap();

    let snap = db.create_snapshot_asof("old", before).unwrap();
    let err = restore_table_from_snapshot(&db, &snap, "t", "t").unwrap_err();
    match err {
        Error::SchemaDrift {
            table,
            snapshot_columns,
            live_columns,
            ..
        } => {
            assert_eq!(table, "t");
            assert_eq!(snapshot_columns, 2);
            assert_eq!(live_columns, 3);
        }
        other => panic!("expected SchemaDrift, got {other:?}"),
    }

    // Nothing was corrupted: the live (3-column) table is untouched.
    let txn = db.begin();
    let rows = db.scan_all(&txn, "t").unwrap();
    db.commit(txn).unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::U64(9), Value::str("new"), Value::I64(1)]]
    );
    db.drop_snapshot("old").unwrap();
}

#[test]
fn type_change_is_drift_even_with_same_column_count() {
    let db = setup();
    let before = db.clock().now();
    db.clock().advance_secs(60);
    db.with_txn(|txn| db.drop_table(txn, "t")).unwrap();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::I64),
                ],
                &["id"],
            )?,
        )
        .map(|_| ())
    })
    .unwrap();

    let snap = db.create_snapshot_asof("old2", before).unwrap();
    let err = restore_table_from_snapshot(&db, &snap, "t", "t").unwrap_err();
    assert!(
        matches!(err, Error::SchemaDrift { ref detail, .. } if detail.contains("type")),
        "got {err:?}"
    );
    db.drop_snapshot("old2").unwrap();
}

#[test]
fn matching_schema_reconciles_into_live_table() {
    let db = setup();
    let before = db.clock().now();
    db.clock().advance_secs(60);

    // Damage the live table: delete 2, mutate 3, add 7.
    db.with_txn(|txn| {
        db.delete(txn, "t", &[Value::U64(2)])?;
        db.update(txn, "t", &[Value::U64(3), Value::str("mangled")])?;
        db.insert(txn, "t", &[Value::U64(7), Value::str("post")])
    })
    .unwrap();

    let snap = db.create_snapshot_asof("heal", before).unwrap();
    let copied = restore_table_from_snapshot(&db, &snap, "t", "t").unwrap();
    assert_eq!(copied, 2, "one re-insert plus one restore-update");

    let txn = db.begin();
    let rows = db.scan_all(&txn, "t").unwrap();
    db.commit(txn).unwrap();
    let expect: Vec<Vec<Value>> = vec![
        vec![Value::U64(1), Value::str("v1")],
        vec![Value::U64(2), Value::str("v2")],
        vec![Value::U64(3), Value::str("v3")],
        vec![Value::U64(4), Value::str("v4")],
        vec![Value::U64(5), Value::str("v5")],
        // reconcile is additive: rows created after the split survive
        vec![Value::U64(7), Value::str("post")],
    ];
    assert_eq!(rows, expect);
    db.drop_snapshot("heal").unwrap();
}
