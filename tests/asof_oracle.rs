//! The as-of oracle test: drive a randomized workload with clock advances,
//! capture the exact table state at marked times, and verify afterwards
//! that an as-of snapshot at each mark reproduces that state exactly —
//! through full scans, point reads and secondary-index reads.
//!
//! This is the strongest end-to-end check of the paper's mechanism: every
//! marked instant must be reconstructible from the current state plus the
//! log alone.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rewind::{Column, DataType, Database, DbConfig, Row, Schema, Timestamp, Value};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("grp", DataType::U64),
            Column::new("payload", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn run_oracle(fpi_interval: u32, seed: u64) {
    let db = Database::create(DbConfig {
        fpi_interval,
        buffer_pages: 512,
        checkpoint_interval_bytes: 1 << 20,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        db.create_index(txn, "t", "by_grp", &["grp"])?;
        Ok(())
    })
    .unwrap();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model: BTreeMap<u64, Row> = BTreeMap::new();
    let mut marks: Vec<(Timestamp, BTreeMap<u64, Row>)> = Vec::new();
    // the pre-DDL instant, for the genesis probe below
    db.clock().advance_secs(1);
    let genesis_time = db.clock().now();
    db.clock().advance_secs(1);
    db.with_txn(|txn| {
        db.insert(
            txn,
            "t",
            &[Value::U64(9999), Value::U64(0), Value::str("g")],
        )
    })
    .unwrap();
    db.with_txn(|txn| db.delete(txn, "t", &[Value::U64(9999)]))
        .unwrap();

    for round in 0..8 {
        // one "era": a burst of random committed transactions
        for _ in 0..20 {
            let ops = rng.gen_range(1..8);
            db.with_txn(|txn| {
                for _ in 0..ops {
                    let id = rng.gen_range(0..200u64);
                    let grp = rng.gen_range(0..10u64);
                    let row = vec![
                        Value::U64(id),
                        Value::U64(grp),
                        Value::Str(format!("r{round}-{}", rng.gen_range(0..1_000_000u64))),
                    ];
                    match rng.gen_range(0..10) {
                        0..=4 => {
                            if model.contains_key(&id) {
                                db.update(txn, "t", &row)?;
                            } else {
                                db.insert(txn, "t", &row)?;
                            }
                            model.insert(id, row);
                        }
                        5..=6 => {
                            if model.remove(&id).is_some() {
                                db.delete(txn, "t", &[Value::U64(id)])?;
                            }
                        }
                        _ => {
                            let got = db.get(txn, "t", &[Value::U64(id)])?;
                            assert_eq!(got.as_ref(), model.get(&id), "live read diverged");
                        }
                    }
                }
                Ok(())
            })
            .unwrap();
            db.clock().advance_millis_like(rng.gen_range(100..2000));
        }
        // some uncommitted noise that must never be visible as-of
        let noise = db.begin();
        for _ in 0..5 {
            let id = 500 + rng.gen_range(0..50u64);
            let _ = db.insert(
                &noise,
                "t",
                &[Value::U64(id), Value::U64(0), Value::str("noise")],
            );
        }
        db.rollback(noise).unwrap();

        db.clock().advance_secs(5);
        db.checkpoint().unwrap();
        marks.push((db.clock().now(), model.clone()));
        db.clock().advance_secs(5);
    }

    // Verify every era, newest to oldest (deeper rewinds each time).
    for (i, (t, expect)) in marks.iter().enumerate().rev() {
        let name = format!("era{i}");
        let snap = db.create_snapshot_asof(&name, *t).unwrap();
        let info = snap.table("t").unwrap();

        // full scan equality
        let rows = snap.scan_all(&info).unwrap();
        let got: BTreeMap<u64, Row> = rows
            .into_iter()
            .map(|r| (r[0].as_u64().unwrap(), r))
            .collect();
        assert_eq!(&got, expect, "era {i} (fpi={fpi_interval}) scan mismatch");

        // point reads, present and absent
        for id in (0..200u64).step_by(17) {
            let got = snap.get(&info, &[Value::U64(id)]).unwrap();
            assert_eq!(got.as_ref(), expect.get(&id), "era {i} get({id})");
        }

        // secondary index consistency as-of
        for grp in 0..10u64 {
            let via_index = snap
                .scan_index_prefix(&info, "by_grp", &[Value::U64(grp)], 10_000)
                .unwrap();
            let expect_grp: Vec<&Row> = expect
                .values()
                .filter(|r| r[1] == Value::U64(grp))
                .collect();
            assert_eq!(via_index.len(), expect_grp.len(), "era {i} index grp {grp}");
        }

        snap.wait_undo_complete();
        db.drop_snapshot(&name).unwrap();
    }

    // Deepest rewind: at `genesis_time` the table existed but was empty —
    // every row ever inserted must unwind away, including the page churn
    // from the insert+delete right after it.
    let genesis = db.create_snapshot_asof("genesis", genesis_time).unwrap();
    let info = genesis.table("t").unwrap();
    assert_eq!(
        genesis.count(&info).unwrap(),
        0,
        "table must be empty at genesis"
    );
    db.drop_snapshot("genesis").unwrap();
}

trait ClockExt {
    fn advance_millis_like(&self, ms: u64);
}

impl ClockExt for rewind::SimClock {
    fn advance_millis_like(&self, ms: u64) {
        self.advance_micros(ms * 1000);
    }
}

#[test]
fn asof_oracle_without_fpi() {
    run_oracle(0, 0xA11CE);
}

#[test]
fn asof_oracle_with_fpi() {
    run_oracle(8, 0xB0B);
}

#[test]
fn asof_oracle_second_seed() {
    run_oracle(0, 77);
}
