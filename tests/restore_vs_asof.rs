//! Equivalence of the two time-travel mechanisms: for any point in time,
//! the traditional restore-and-roll-forward baseline and the as-of snapshot
//! must produce identical data. (This is what makes Figs. 7/8 an
//! apples-to-apples comparison.)

use rewind::backup::{restore_to_point_in_time, take_full_backup};
use rewind::tpcc::{create_schema, load_initial, run_mixed, DriverConfig, TpccScale};
use rewind::{Database, DbConfig, Result, Row, SimClock, Value};
use std::sync::Arc;

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

#[test]
fn restore_and_asof_agree_at_every_mark() -> Result<()> {
    let scale = TpccScale::tiny();
    let db = Arc::new(Database::create(DbConfig::default())?);
    create_schema(&db)?;
    load_initial(&db, &scale)?;
    let backup = take_full_backup(&db)?;

    let mut marks = Vec::new();
    for seed in 0..3u64 {
        run_mixed(
            &db,
            &scale,
            &DriverConfig {
                threads: 2,
                txns_per_thread: 40,
                us_per_txn: 250_000,
                seed,
                rollback_pct: 5,
            },
        )?;
        db.checkpoint()?;
        marks.push(db.clock().now());
        db.clock().advance_secs(1);
    }

    for (i, &t) in marks.iter().enumerate() {
        // Path A: as-of snapshot.
        let name = format!("mark{i}");
        let snap = db.create_snapshot_asof(&name, t)?;

        // Path B: restore the backup and roll forward to the same t.
        let (restored, report) = restore_to_point_in_time(
            &backup,
            db.log(),
            t,
            DbConfig::default(),
            SimClock::starting_at(t),
        )?;
        assert!(report.records_replayed > 0);

        for table in [
            "warehouse",
            "district",
            "customer",
            "orders",
            "order_line",
            "new_order",
            "stock",
        ] {
            let info = snap.table(table)?;
            let a = sorted(snap.scan_all(&info)?);
            let b = sorted(restored.with_txn(|txn| restored.scan_all(txn, table))?);
            assert_eq!(a.len(), b.len(), "{table} row count at mark {i}");
            assert_eq!(a, b, "{table} contents at mark {i}");
        }
        snap.wait_undo_complete();
        db.drop_snapshot(&name)?;
    }
    Ok(())
}

#[test]
fn restore_includes_inflight_undo() -> Result<()> {
    let db = Arc::new(Database::create(DbConfig::default())?);
    let scale = TpccScale::tiny();
    create_schema(&db)?;
    load_initial(&db, &scale)?;
    let backup = take_full_backup(&db)?;
    db.clock().advance_secs(5);

    // leave a transaction in flight spanning the restore target
    let inflight = db.begin();
    let w = db
        .get_for_update(&inflight, "warehouse", &[Value::U64(1)])?
        .unwrap();
    db.update(
        &inflight,
        "warehouse",
        &[w[0].clone(), w[1].clone(), w[2].clone(), Value::F64(-1.0)],
    )?;
    db.clock().advance_secs(5);
    db.with_txn(|txn| {
        let d = db
            .get_for_update(txn, "district", &[Value::U64(1), Value::U64(1)])?
            .unwrap();
        let mut d2 = d.clone();
        d2[4] = Value::F64(123.0);
        db.update(txn, "district", &d2)
    })?;
    let t = db.clock().now();
    db.clock().advance_secs(5);

    let (restored, report) = restore_to_point_in_time(
        &backup,
        db.log(),
        t,
        DbConfig::default(),
        SimClock::starting_at(t),
    )?;
    assert_eq!(report.losers_undone, 1, "the in-flight txn must be undone");
    let wrow = restored
        .with_txn(|txn| restored.get(txn, "warehouse", &[Value::U64(1)]))?
        .unwrap();
    assert_ne!(
        wrow[3],
        Value::F64(-1.0),
        "uncommitted update must not survive restore"
    );
    let drow = restored
        .with_txn(|txn| restored.get(txn, "district", &[Value::U64(1), Value::U64(1)]))?
        .unwrap();
    assert_eq!(
        drow[4],
        Value::F64(123.0),
        "committed update must survive restore"
    );
    db.rollback(inflight)?;
    Ok(())
}
