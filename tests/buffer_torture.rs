//! Buffer-pool concurrency torture: live readers + an as-of reader mix vs.
//! a page writer vs. an evictor vs. `drop_cache` crash simulation, all on
//! one sharded pool.
//!
//! Invariants checked:
//! * **no torn FrameView access** — a latched frame always holds exactly
//!   the requested page (or the zeroed on-disk image of a never-written
//!   one), never another page and never a half-replaced image;
//! * **no lost pins** — when all accessors have finished, no frame is
//!   pinned;
//! * **recLSN sanity** — while a frame is dirty its recLSN never passes its
//!   pageLSN (also debug-asserted on every exclusive access inside the
//!   pool), and the dirty-page table only ever reports LSNs the writer has
//!   actually issued;
//! * **split-consistent as-of reads** — an as-of scan racing live writes,
//!   eviction churn and crash simulation either completes with exactly the
//!   pre-update image or fails cleanly; it never returns mixed-epoch rows.

use rewind::{Column, DataType, Database, DbConfig, Row, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

#[test]
fn pool_torture_live_asof_writer_evictor_crash() {
    const ROWS: u64 = 300;
    let db = Database::create(DbConfig {
        buffer_pages: 64, // small pool: eviction churn is constant
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        for i in 0..ROWS {
            db.insert(txn, "t", &[Value::U64(i), Value::str("v0")])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);
    // Post-split updates: every as-of read below must unwind these.
    db.with_txn(|txn| {
        for i in 0..ROWS {
            db.update(txn, "t", &[Value::U64(i), Value::str("v1")])?;
        }
        Ok(())
    })
    .unwrap();

    let snap = db.create_snapshot_asof("torture", t0).unwrap();
    snap.wait_undo_complete();
    let table = snap.table("t").unwrap();
    let expect: Vec<Row> = (0..ROWS)
        .map(|i| vec![Value::U64(i), Value::str("v0")])
        .collect();

    let pool = db.parts().pool.clone();
    let data_pages = db.parts().pool.file_manager().page_count().max(1);
    let stop = Arc::new(AtomicBool::new(false));
    // Scratch-page LSNs start far above anything the engine issued, so the
    // dirty-page-table check below can tell the two apart.
    let max_lsn_issued = Arc::new(AtomicU64::new(1_000_000));

    std::thread::scope(|s| {
        // Live readers: hammer the table's page range through the pool.
        for t in 0..2u64 {
            let pool = pool.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let pid = rewind_common::PageId(1 + (t * 7 + round) % data_pages);
                    pool.with_page(pid, |p| {
                        assert!(
                            p.page_id() == pid || p.page_id() == rewind_common::PageId(0),
                            "torn frame: asked {pid:?}, latched {:?}",
                            p.page_id()
                        );
                        Ok(())
                    })
                    .unwrap();
                    round += 1;
                }
            });
        }
        // As-of readers: every scan must be the exact pre-update image.
        for _ in 0..2 {
            let snap = snap.clone();
            let table = table.clone();
            let expect = expect.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut rows = snap.scan_all(&table).unwrap();
                    rows.sort_by_key(|r| r[0].as_u64().unwrap());
                    assert_eq!(rows, expect, "as-of scan saw a mixed-epoch image");
                }
            });
        }
        // Writer: dirties a scratch page range (pool-level, no engine
        // structures), with strictly increasing LSNs.
        {
            let pool = pool.clone();
            let stop = stop.clone();
            let max_lsn = max_lsn_issued.clone();
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let pid = rewind_common::PageId(20_000 + n % 48);
                    let lsn = max_lsn.fetch_add(1, Ordering::Relaxed) + 1;
                    pool.with_page_mut(pid, |v| {
                        v.page_mut().set_page_lsn(rewind_common::Lsn(lsn));
                        v.mark_dirty(rewind_common::Lsn(lsn));
                        Ok(())
                    })
                    .unwrap();
                    n += 1;
                }
            });
        }
        // Evictor: flushes and inspects the dirty-page table.
        {
            let pool = pool.clone();
            let stop = stop.clone();
            let max_lsn = max_lsn_issued.clone();
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if n.is_multiple_of(5) {
                        pool.flush_all().unwrap();
                    } else {
                        pool.flush_page(rewind_common::PageId(20_000 + n % 48))
                            .unwrap();
                    }
                    for e in pool.dirty_page_table() {
                        assert!(
                            !e.rec_lsn.is_valid()
                                || e.rec_lsn.0 <= max_lsn.load(Ordering::Relaxed) + 1,
                            "dirty-page table reports an LSN nobody issued"
                        );
                    }
                    n += 1;
                }
            });
        }
        // Crash simulator: volatile state vanishes, repeatedly.
        {
            let pool = pool.clone();
            let stop = stop.clone();
            s.spawn(move || {
                for _ in 0..40 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    pool.drop_cache();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(600));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(pool.pinned_frames(), 0, "lost pins after the torture");
    // One more full as-of pass on the quiescent pool.
    let mut rows = snap.scan_all(&table).unwrap();
    rows.sort_by_key(|r| r[0].as_u64().unwrap());
    assert_eq!(rows, expect);
    assert_eq!(snap.raw().prepare_gate_entries(), 0, "gate table leaked");
    db.drop_snapshot("torture").unwrap();
}
