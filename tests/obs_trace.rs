//! End-to-end observability invariants over real engine traces.
//!
//! * **Count exactness on a serial trace** — the histograms are recorded
//!   in the same branch as the counters they describe, so on a
//!   single-threaded workload: commit-latency samples == durable commits,
//!   flush-stall samples == counted log flushes, as-of prepare samples ==
//!   pages prepared. This is what makes a histogram a trustworthy
//!   denominator (a p95 over an unknown population is noise).
//! * **Disabled obs is inert** — the identical serial workload with
//!   `ObsConfig::enabled = false` produces bit-identical I/O and pool
//!   accounting, records nothing, and exposes `obs_enabled 0`.
//! * **Recovery phases are reported** — `Database::recover` leaves a
//!   [`RecoveryReport`] with per-phase durations and record counts, and
//!   the ring carries the three recovery events. Durations come from the
//!   monotonic timebase, so they are real even with obs disabled.

use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use rewind_obs::{EventKind, MetricsSnapshot};

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn build(obs_enabled: bool) -> Database {
    let mut config = DbConfig {
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    };
    config.log.obs.enabled = obs_enabled;
    Database::create(config).unwrap()
}

/// A deterministic serial workload; returns the number of durable commits
/// it performed through `Database::commit`.
fn workload(db: &Database) -> u64 {
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    for i in 0..60u64 {
        db.with_txn(|txn| db.insert(txn, "t", &[Value::U64(i), Value::str("obs-trace")]))
            .unwrap();
    }
    1 + 60
}

#[test]
fn serial_trace_histogram_counts_are_exact() {
    let db = build(true);
    let obs = db.obs().clone();
    let commit0 = obs.commit_latency().count;
    let flush0 = obs.flush_stall().count;
    let flushes0 = db.log_io().log_flushes;

    let commits = workload(&db);

    assert_eq!(
        obs.commit_latency().count - commit0,
        commits,
        "one commit-latency sample per durable commit"
    );
    assert_eq!(
        obs.flush_stall().count - flush0,
        db.log_io().log_flushes - flushes0,
        "one flush-stall sample per counted log flush"
    );

    // A read-only commit is not durable work: no sample.
    let before = obs.commit_latency().count;
    let txn = db.begin();
    db.commit(txn).unwrap();
    assert_eq!(obs.commit_latency().count, before);

    // As-of preparation: one histogram sample per pages_prepared increment.
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);
    db.with_txn(|txn| {
        for i in (0..60u64).step_by(3) {
            db.update(txn, "t", &[Value::U64(i), Value::str("post-split")])?;
        }
        Ok(())
    })
    .unwrap();
    let snap = db.create_snapshot_asof("trace", t0).unwrap();
    snap.wait_undo_complete();
    let prepare0 = obs.asof_prepare().count;
    let prepared0 = snap.stats().pages_prepared;
    let table = snap.table("t").unwrap();
    let rows = snap.scan_all(&table).unwrap();
    assert_eq!(rows.len(), 60);
    assert_eq!(
        obs.asof_prepare().count - prepare0,
        snap.stats().pages_prepared - prepared0,
        "one as-of prepare sample per prepared page"
    );
    db.drop_snapshot("trace").unwrap();

    // The trace is small: nothing may have been dropped, and the ring's
    // commit events pair begin/durable.
    assert_eq!(obs.events_dropped(), 0);
    let events = obs.events();
    let begins = events
        .iter()
        .filter(|e| e.kind == EventKind::CommitBegin)
        .count();
    let durables = events
        .iter()
        .filter(|e| e.kind == EventKind::CommitDurable)
        .count();
    assert_eq!(begins, durables, "every durable commit has a begin event");

    // The registry composes everything and the exposition round-trips.
    let metrics = db.metrics();
    let parsed = MetricsSnapshot::parse_text(&metrics.to_text()).expect("exposition parses");
    assert_eq!(parsed["obs_enabled"], 1);
    assert_eq!(
        parsed["commit_latency_us_count"],
        metrics.hist("commit_latency_us").unwrap().count
    );
    assert_eq!(
        parsed["io_log_log_flushes"],
        metrics.get("io_log_log_flushes")
    );
    assert!(metrics.get("log_total_bytes") > 0);
}

#[test]
fn disabled_obs_is_inert_and_accounting_identical() {
    let on = build(true);
    let off = build(false);
    let commits_on = workload(&on);
    let commits_off = workload(&off);
    assert_eq!(commits_on, commits_off);

    // Bit-exact accounting: the identical serial trace produces identical
    // I/O and pool counters whether obs records or not.
    assert_eq!(
        on.log_io().fields(),
        off.log_io().fields(),
        "log I/O accounting diverges with obs on vs off"
    );
    assert_eq!(
        on.data_io().fields(),
        off.data_io().fields(),
        "data I/O accounting diverges with obs on vs off"
    );
    let (pon, poff) = (on.pool_stats(), off.pool_stats());
    assert_eq!(
        (pon.hits, pon.misses, pon.evictions),
        (poff.hits, poff.misses, poff.evictions)
    );

    // The disabled engine recorded nothing and says so.
    assert!(!off.obs().is_enabled());
    assert_eq!(off.obs().events_recorded(), 0);
    assert_eq!(off.obs().commit_latency().count, 0);
    let m = off.metrics();
    assert_eq!(m.get("obs_enabled"), 0);
    assert_eq!(m.hist("commit_latency_us").unwrap().count, 0);
    // Exposition still parses — monitoring never has to special-case a
    // disabled engine.
    MetricsSnapshot::parse_text(&m.to_text()).expect("disabled exposition parses");
}

#[test]
fn recovery_reports_phase_timings_and_events() {
    let db = build(true);
    workload(&db);
    // Leave one transaction in flight with real writes: recovery must undo
    // it, so the undo phase has nonzero record counts.
    let loser = db.begin();
    for i in 100..110u64 {
        db.insert(&loser, "t", &[Value::U64(i), Value::str("loser")])
            .unwrap();
    }
    db.log().flush_to(db.log().tail_lsn());
    std::mem::forget(loser);

    let artifacts = db.simulate_crash();
    let db2 = Database::recover(artifacts).unwrap();

    let report = db2.last_recovery().expect("recover() leaves a report");
    assert!(report.records_scanned > 0, "analysis scanned the log");
    assert_eq!(report.losers, 1, "the in-flight transaction is a loser");
    assert!(
        report.records_undone >= 10,
        "undo compensated the loser's writes (got {})",
        report.records_undone
    );
    assert!(report.analysis_us > 0, "analysis duration is real");
    assert!(report.redo_us > 0, "redo duration is real");
    assert!(report.redo_workers >= 1, "restart used at least one worker");
    assert_eq!(
        report.redone_per_worker.iter().sum::<u64>(),
        report.records_redone,
        "per-worker redo counts sum to the total"
    );
    assert_eq!(report.loser_txns.len() as u64, report.losers);
    // A fresh instance (no recovery) reports None.
    assert!(build(true).last_recovery().is_none());

    // The ring carries the three phase events, each exactly once.
    let events = db2.obs().events();
    for kind in [
        EventKind::RecoveryAnalysis,
        EventKind::RecoveryRedo,
        EventKind::RecoveryUndo,
    ] {
        assert_eq!(
            events.iter().filter(|e| e.kind == kind).count(),
            1,
            "expected exactly one {kind:?} event"
        );
    }
    let undo = events
        .iter()
        .find(|e| e.kind == EventKind::RecoveryUndo)
        .unwrap();
    assert_eq!(undo.arg, report.records_undone);

    // The recovered database keeps working and keeps counting.
    let c0 = db2.obs().commit_latency().count;
    db2.with_txn(|txn| db2.insert(txn, "t", &[Value::U64(999), Value::str("post")]))
        .unwrap();
    assert_eq!(db2.obs().commit_latency().count, c0 + 1);
}

/// Regression: phase durations used to come from `Obs::now_us`, which is
/// pinned to 0 on a disabled-obs engine — `last_recovery()` then displayed
/// "0.000ms" for every phase. Durations now come from the monotonic
/// timebase and must be real regardless of obs state.
#[test]
fn recovery_timings_are_real_with_obs_disabled() {
    let db = build(false);
    workload(&db);
    let loser = db.begin();
    for i in 100..110u64 {
        db.insert(&loser, "t", &[Value::U64(i), Value::str("loser")])
            .unwrap();
    }
    db.log().flush_to(db.log().tail_lsn());
    std::mem::forget(loser);

    let db2 = Database::recover(db.simulate_crash()).unwrap();
    assert!(!db2.obs().is_enabled());
    let report = db2.last_recovery().expect("recover() leaves a report");
    assert!(report.records_scanned > 0);
    assert!(report.analysis_us > 0, "real analysis duration without obs");
    assert!(report.redo_us > 0, "real redo duration without obs");
    // The Display form monitoring logs must not claim instant phases.
    assert!(!format!("{report}").contains("analysis 0.000ms"));
}
