//! Regression test for the prepare-gate leak: the pre-shard snapshot store
//! inserted one `Arc<Mutex<()>>` per first-prepared page into a global
//! `preparing` map and never removed it, so the gate table grew with every
//! page a snapshot ever touched. The sharded gate table holds entries only
//! while a preparation is in flight: preparing 10k pages must leave it
//! empty, and mid-flight it is bounded by the number of concurrent
//! preparers, never by pages touched.

use parking_lot::{Mutex, RwLock};
use rewind_access::store::Store;
use rewind_buffer::BufferPool;
use rewind_common::{ObjectId, PageId, SimClock};
use rewind_pagestore::{FileManager, IoBackend, MemFileManager, Page, PageType};
use rewind_recovery::{take_checkpoint, EngineParts};
use rewind_snapshot::AsOfSnapshot;
use rewind_txn::{ObjectLatches, TxnManager};
use rewind_wal::{LogConfig, LogManager};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const PAGES: u64 = 10_000;

fn engine_with_pages() -> Arc<EngineParts> {
    let fm = Arc::new(MemFileManager::new());
    for i in 1..=PAGES {
        let pid = PageId(i);
        fm.write_page(pid, &Page::formatted(pid, ObjectId(1), PageType::Heap))
            .unwrap();
    }
    let fm: Arc<dyn IoBackend> = fm;
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let pool = Arc::new(BufferPool::new(fm, log.clone(), 128));
    Arc::new(EngineParts {
        pool,
        log,
        latches: Arc::new(ObjectLatches::new()),
        alloc_lock: Mutex::new(()),
        mod_gate: RwLock::new(()),
        cow_sinks: RwLock::new(Vec::new()),
        cow_token: AtomicU64::new(1),
        fpi_interval: 0,
    })
}

#[test]
fn gate_table_stays_bounded_over_10k_prepared_pages() {
    let parts = engine_with_pages();
    let clock = SimClock::new();
    clock.advance_secs(1);
    let txns = TxnManager::new();
    take_checkpoint(&parts.log, &txns, &parts.pool, &clock).unwrap();
    let split = parts.log.tail_lsn();
    let snap = AsOfSnapshot::create_at_lsn("gates", &parts, clock.now(), split).unwrap();

    const WORKERS: u64 = 4;
    let max_seen = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let snap = &snap;
            let max_seen = &max_seen;
            s.spawn(move || {
                let store = snap.store();
                for i in (1 + w..=PAGES).step_by(WORKERS as usize) {
                    store
                        .with_page(PageId(i), |p| {
                            assert_eq!(p.page_id(), PageId(i));
                            Ok(())
                        })
                        .unwrap();
                    if i % 64 == 0 {
                        max_seen.fetch_max(snap.prepare_gate_entries(), Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Mid-flight the table is bounded by concurrent preparers, not by the
    // pages touched; quiescent it is empty.
    assert!(
        max_seen.load(Ordering::Relaxed) <= 2 * WORKERS as usize,
        "gate table grew with pages touched: saw {} entries",
        max_seen.load(Ordering::Relaxed)
    );
    assert_eq!(snap.prepare_gate_entries(), 0, "gate entries leaked");
    // Every page really was prepared (this is not a no-op workload)...
    assert_eq!(snap.side_pages(), PAGES as usize);
    // ...and re-reads are pure side-file hits that create no gates.
    let store = snap.store();
    for i in 1..=100u64 {
        store.with_page(PageId(i), |_| Ok(())).unwrap();
    }
    assert_eq!(snap.prepare_gate_entries(), 0);
}
