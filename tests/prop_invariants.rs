//! Property-based tests over the public API: arbitrary operation programs
//! against a model, with an as-of checkpoint in the middle that must be
//! reconstructible afterwards.

use proptest::prelude::*;
use rewind::{Column, DataType, Database, DbConfig, Row, Schema, Timestamp, Value};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u8, u16),
    Delete(u8),
    Get(u8),
    Commit,
    RollbackBurst(Vec<(u8, u16)>),
    Tick(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        Just(Op::Commit),
        proptest::collection::vec((any::<u8>(), any::<u16>()), 1..5).prop_map(Op::RollbackBurst),
        (1u16..2000).prop_map(Op::Tick),
    ]
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("k", DataType::U64),
            Column::new("v", DataType::U64),
        ],
        &["k"],
    )
    .unwrap()
}

fn row(k: u8, v: u16) -> Row {
    vec![Value::U64(k as u64), Value::U64(v as u64)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Random committed programs match a BTreeMap model, rolled-back bursts
    /// leave no trace, and the state at a marked mid-point is exactly
    /// reproducible through an as-of snapshot.
    #[test]
    fn engine_matches_model_and_history(ops in proptest::collection::vec(op_strategy(), 20..120)) {
        let db = Database::create(DbConfig {
            buffer_pages: 128,
            checkpoint_interval_bytes: 64 << 10,
            ..DbConfig::default()
        }).unwrap();
        db.with_txn(|txn| { db.create_table(txn, "t", schema())?; Ok(()) }).unwrap();
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();

        // first half
        let mid = ops.len() / 2;
        let mut mark: Option<(Timestamp, BTreeMap<u8, u16>)> = None;
        for (i, op) in ops.iter().enumerate() {
            apply(&db, &mut model, op);
            if i == mid {
                db.clock().advance_secs(1);
                db.checkpoint().unwrap();
                mark = Some((db.clock().now(), model.clone()));
                db.clock().advance_secs(1);
            }
        }

        // final state equals the model
        let rows = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap();
        let got: BTreeMap<u8, u16> = rows
            .into_iter()
            .map(|r| (r[0].as_u64().unwrap() as u8, r[1].as_u64().unwrap() as u16))
            .collect();
        prop_assert_eq!(&got, &model);

        // the marked instant is reconstructible
        if let Some((t, expect)) = mark {
            let snap = db.create_snapshot_asof("mid", t).unwrap();
            let info = snap.table("t").unwrap();
            let rows = snap.scan_all(&info).unwrap();
            let got: BTreeMap<u8, u16> = rows
                .into_iter()
                .map(|r| (r[0].as_u64().unwrap() as u8, r[1].as_u64().unwrap() as u16))
                .collect();
            snap.wait_undo_complete();
            db.drop_snapshot("mid").unwrap();
            prop_assert_eq!(&got, &expect);
        }
    }
}

fn apply(db: &Database, model: &mut BTreeMap<u8, u16>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            db.with_txn(|txn| {
                if model.contains_key(k) {
                    db.update(txn, "t", &row(*k, *v))?;
                } else {
                    db.insert(txn, "t", &row(*k, *v))?;
                }
                Ok(())
            })
            .unwrap();
            model.insert(*k, *v);
        }
        Op::Delete(k) => {
            if model.remove(k).is_some() {
                db.with_txn(|txn| db.delete(txn, "t", &[Value::U64(*k as u64)]))
                    .unwrap();
            }
        }
        Op::Get(k) => {
            let got = db
                .with_txn(|txn| db.get(txn, "t", &[Value::U64(*k as u64)]))
                .unwrap();
            assert_eq!(
                got.map(|r| r[1].as_u64().unwrap() as u16),
                model.get(k).copied()
            );
        }
        Op::Commit => {
            db.clock().advance_micros(1000);
        }
        Op::RollbackBurst(puts) => {
            let txn = db.begin();
            for (k, v) in puts {
                // upsert-ish: try insert, else update
                if db.insert(&txn, "t", &row(*k, *v)).is_err() {
                    db.update(&txn, "t", &row(*k, *v)).unwrap();
                }
            }
            db.rollback(txn).unwrap();
        }
        Op::Tick(ms) => {
            db.clock().advance_micros(*ms as u64 * 1000);
        }
    }
}
