//! Crash-recovery torture: randomized committed work (tracked in a model)
//! interleaved with in-flight transactions that vanish at the crash; after
//! every crash+restart the database must match the model exactly, and keep
//! working.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rewind::{Column, DataType, Database, DbConfig, Row, Schema, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

#[test]
fn crash_recover_repeatedly_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xDEAD);
    let mut db = Database::create(DbConfig {
        buffer_pages: 256,
        checkpoint_interval_bytes: 256 << 10,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let mut model: BTreeMap<u64, Row> = BTreeMap::new();

    for round in 0..6 {
        // committed work
        for _ in 0..rng.gen_range(5..25) {
            let ops = rng.gen_range(1..10);
            db.with_txn(|txn| {
                for _ in 0..ops {
                    let id = rng.gen_range(0..300u64);
                    let row = vec![
                        Value::U64(id),
                        Value::Str(format!("{round}:{}", rng.gen::<u32>())),
                    ];
                    match model.entry(id) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            if rng.gen_bool(0.3) {
                                db.delete(txn, "t", &[Value::U64(id)])?;
                                model.remove(&id);
                            } else {
                                db.update(txn, "t", &row)?;
                                e.insert(row);
                            }
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            db.insert(txn, "t", &row)?;
                            e.insert(row);
                        }
                    }
                }
                Ok(())
            })
            .unwrap();
            db.clock().advance_micros(rng.gen_range(1000..100_000));
        }
        // in-flight garbage lost at the crash (sometimes big enough to split)
        let loser = db.begin();
        for i in 0..rng.gen_range(1..200u64) {
            let _ = db.insert(&loser, "t", &[Value::U64(1000 + i), Value::str("doomed")]);
        }
        std::mem::forget(loser);

        // sometimes a checkpoint lands right before the crash
        if rng.gen_bool(0.5) {
            db.checkpoint().unwrap();
        }

        let artifacts = db.simulate_crash();
        db = Database::recover(artifacts).unwrap();

        let rows = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap();
        let got: BTreeMap<u64, Row> = rows
            .into_iter()
            .map(|r| (r[0].as_u64().unwrap(), r))
            .collect();
        assert_eq!(got, model, "state after crash {round}");
        db.check_consistency().unwrap();
    }
}

/// Partitioned redo must be a pure performance feature: running the SAME
/// deterministic workload to the same crash point and restarting with 1, 4
/// and 16 redo workers must yield byte-identical backing files, identical
/// row state, and identical recovery accounting (records scanned / redone /
/// undone, loser sets). Only the worker count in the report may differ.
#[test]
fn restart_is_bit_identical_across_worker_counts() {
    use rewind::common::TxnId;
    use rewind::pagestore::PAGE_SIZE;

    struct Outcome {
        rows: BTreeMap<u64, Row>,
        image: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
        scanned: u64,
        redone: u64,
        undone: u64,
        losers: Vec<TxnId>,
    }

    let run = |workers: usize| -> Outcome {
        let db = Database::create(DbConfig {
            buffer_pages: 128,
            // No checkpoint daemon: its kicks land at nondeterministic log
            // positions and would break cross-run byte comparison. The
            // manual checkpoint below still exercises the DPT-seeded
            // prefix-redo path.
            checkpoint_interval_bytes: 0,
            redo_workers: workers,
            ..DbConfig::default()
        })
        .unwrap();
        db.with_txn(|txn| {
            db.create_table(txn, "t", schema())?;
            for i in 0..400u64 {
                db.insert(txn, "t", &[Value::U64(i), Value::str("v0")])?;
            }
            Ok(())
        })
        .unwrap();
        db.checkpoint().unwrap();
        db.with_txn(|txn| {
            for i in 0..400u64 {
                if i % 3 == 0 {
                    db.update(txn, "t", &[Value::U64(i), Value::Str(format!("v1-{i}"))])?;
                } else if i % 7 == 0 {
                    db.delete(txn, "t", &[Value::U64(i)])?;
                }
            }
            Ok(())
        })
        .unwrap();
        // Two in-flight losers of different sizes: undo must run, and the
        // loser set is part of the cross-worker-count contract.
        let l1 = db.begin();
        for i in 1000..1050u64 {
            db.insert(&l1, "t", &[Value::U64(i), Value::str("doomed")])
                .unwrap();
        }
        let l2 = db.begin();
        for i in 2000..2010u64 {
            db.insert(&l2, "t", &[Value::U64(i), Value::str("doomed")])
                .unwrap();
        }
        db.log().flush_to(db.log().tail_lsn());
        std::mem::forget(l1);
        std::mem::forget(l2);

        let db = Database::recover(db.simulate_crash()).unwrap();
        let report = db.last_recovery().expect("recover() leaves a report");
        assert_eq!(
            report.redo_workers, workers as u64,
            "restart used the configured worker count"
        );
        assert_eq!(report.redone_per_worker.len(), workers);
        assert_eq!(
            report.redone_per_worker.iter().sum::<u64>(),
            report.records_redone
        );
        let rows = db
            .with_txn(|txn| db.scan_all(txn, "t"))
            .unwrap()
            .into_iter()
            .map(|r| (r[0].as_u64().unwrap(), r))
            .collect();
        // recover() ends with a full checkpoint (flush_all), so the backing
        // file carries the complete post-restart state.
        let image = db.mem_file().unwrap().clone_contents();
        Outcome {
            rows,
            image,
            scanned: report.records_scanned,
            redone: report.records_redone,
            undone: report.records_undone,
            losers: report.loser_txns,
        }
    };

    let base = run(1);
    assert!(base.redone > 0, "the workload left redo work");
    assert_eq!(base.losers.len(), 2, "both in-flight txns are losers");
    for workers in [4usize, 16] {
        let o = run(workers);
        assert_eq!(o.rows, base.rows, "row state diverged at {workers} workers");
        assert_eq!(
            o.image, base.image,
            "backing file diverged at {workers} workers"
        );
        assert_eq!(
            (o.scanned, o.redone, o.undone),
            (base.scanned, base.redone, base.undone)
        );
        assert_eq!(o.losers, base.losers);
    }
}

#[test]
fn crash_during_ddl_rolls_it_back() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "keep", schema())?;
        db.insert(txn, "keep", &[Value::U64(1), Value::str("v")])?;
        Ok(())
    })
    .unwrap();
    db.checkpoint().unwrap();

    // DDL in flight at the crash: a created table and a dropped table
    let t1 = db.begin();
    db.create_table(&t1, "doomed", schema()).unwrap();
    db.insert(&t1, "doomed", &[Value::U64(1), Value::str("x")])
        .unwrap();
    std::mem::forget(t1);

    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();
    assert!(
        db.table("doomed").is_err(),
        "uncommitted CREATE TABLE must vanish"
    );
    assert_eq!(db.count_approx("keep").unwrap(), 1);

    // drop in flight
    let t2 = db.begin();
    db.drop_table(&t2, "keep").unwrap();
    std::mem::forget(t2);
    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();
    assert_eq!(
        db.count_approx("keep").unwrap(),
        1,
        "uncommitted DROP TABLE must be undone"
    );
    db.with_txn(|txn| {
        assert_eq!(
            db.get(txn, "keep", &[Value::U64(1)])?.unwrap(),
            vec![Value::U64(1), Value::str("v")]
        );
        Ok(())
    })
    .unwrap();
}

/// As-of queries racing `drop_cache`: a crash simulation in the middle of a
/// snapshot scan must either complete from already-prepared frames or fail
/// cleanly — it must never return mixed-epoch rows (some pre-update, some
/// post-update). Afterwards a real crash + ARIES restart must still
/// reproduce the committed post-update state.
#[test]
fn asof_scans_racing_drop_cache_never_see_mixed_epochs() {
    const ROWS: u64 = 200;
    let db = Database::create(DbConfig {
        buffer_pages: 48, // tight pool: scans evict constantly
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        for i in 0..ROWS {
            db.insert(txn, "t", &[Value::U64(i), Value::str("epoch0")])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(10);
    db.with_txn(|txn| {
        for i in 0..ROWS {
            db.update(txn, "t", &[Value::U64(i), Value::str("epoch1")])?;
        }
        Ok(())
    })
    .unwrap();

    let snap = db.create_snapshot_asof("mid_crash", t0).unwrap();
    snap.wait_undo_complete();
    let table = snap.table("t").unwrap();
    let expect: Vec<Row> = (0..ROWS)
        .map(|i| vec![Value::U64(i), Value::str("epoch0")])
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let snap = snap.clone();
            let table = table.clone();
            let expect = expect.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut scans = 0u32;
                while !stop.load(Ordering::Relaxed) || scans == 0 {
                    // A scan caught mid-crash may also "fail cleanly" (e.g.
                    // the tight pool transiently exhausted) — that outcome
                    // is allowed; the loop condition still demands at least
                    // one *successful* split-consistent scan per thread
                    // before exiting.
                    if let Ok(mut rows) = snap.scan_all(&table) {
                        rows.sort_by_key(|r| r[0].as_u64().unwrap());
                        assert_eq!(rows, expect, "mid-crash scan saw mixed epochs");
                        scans += 1;
                    }
                }
            });
        }
        // The crash simulator: volatile pool state vanishes repeatedly while
        // the scans above are mid-flight.
        let pool = db.parts().pool.clone();
        for _ in 0..30 {
            pool.drop_cache();
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(db.parts().pool.pinned_frames(), 0, "lost pins");
    db.drop_snapshot("mid_crash").unwrap();

    // A real crash (+ discarded unflushed tail) then ARIES restart: the
    // committed second epoch must be fully present.
    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();
    let rows = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap();
    assert_eq!(rows.len(), ROWS as usize);
    for r in &rows {
        assert_eq!(r[1], Value::str("epoch1"), "recovery lost a committed row");
    }
    db.check_consistency().unwrap();
}

#[test]
fn snapshot_works_on_recovered_database() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        for i in 0..50u64 {
            db.insert(txn, "t", &[Value::U64(i), Value::str("before")])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(10);
    db.with_txn(|txn| {
        for i in 0..50u64 {
            db.update(txn, "t", &[Value::U64(i), Value::str("after")])?;
        }
        Ok(())
    })
    .unwrap();

    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();

    // time travel across the crash boundary
    let snap = db.create_snapshot_asof("pre_crash_time", t).unwrap();
    let info = snap.table("t").unwrap();
    let row = snap.get(&info, &[Value::U64(7)]).unwrap().unwrap();
    assert_eq!(row[1], Value::str("before"));
    snap.wait_undo_complete();
    db.drop_snapshot("pre_crash_time").unwrap();
}

/// CRC framing round-trips across crashes, and a log segment shortened to
/// a non-frame boundary — the classic torn tail a real crash leaves on
/// media — is detected and cleanly truncated to the last valid frame.
#[test]
fn shortened_segment_truncates_to_last_valid_frame() {
    use rewind::common::Lsn;

    let mut rng = SmallRng::seed_from_u64(0xF4A3);
    let mut db = Database::create(DbConfig {
        // No checkpoints: restart rebuilds purely from the log, so the
        // truncation point fully determines the surviving rows.
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let mut model: BTreeMap<u64, Row> = BTreeMap::new();
    let mut boundaries = Vec::new();
    for round in 0..4 {
        for _ in 0..10 {
            db.with_txn(|txn| {
                for _ in 0..rng.gen_range(1..6) {
                    let id = rng.gen_range(0..150u64);
                    let row = vec![
                        Value::U64(id),
                        Value::Str(format!("{round}:{}", rng.gen::<u32>())),
                    ];
                    if model.contains_key(&id) {
                        db.update(txn, "t", &row)?;
                    } else {
                        db.insert(txn, "t", &row)?;
                    }
                    model.insert(id, row);
                }
                Ok(())
            })
            .unwrap();
        }
        db.log().flush_to(db.log().tail_lsn());
        boundaries.push((db.log().tail_lsn(), model.clone()));
    }

    // Every committed frame's CRC round-trips: a full verifying scan of
    // the durable log sees every record and no corruption.
    let mut frames = 0u64;
    db.log()
        .scan_views(Lsn::FIRST, Lsn::MAX, |_, _| {
            frames += 1;
            Ok(true)
        })
        .unwrap();
    assert!(frames > 40, "the workload logged plenty of frames");
    assert_eq!(db.log_io().corruptions_detected, 0);

    // "Shorten" the segment mid-frame: blow up the length prefix of the
    // first frame after batch 1, so the frame claims to run past the end
    // of the segment — byte-identical to a tail that lost its final
    // sectors at a non-frame boundary.
    let (cut, expect) = boundaries[1].clone();
    assert!(db.log().corrupt_byte_at(cut.0 + 2, 0x7F));

    db = Database::recover(db.simulate_crash()).unwrap();
    assert_eq!(
        db.log_io().corruptions_detected,
        1,
        "the overrunning frame is detected exactly once"
    );
    let got: BTreeMap<u64, Row> = db
        .with_txn(|txn| db.scan_all(txn, "t"))
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_u64().unwrap(), r))
        .collect();
    assert_eq!(got, expect, "exactly the rows before the shortened frame");
    db.check_consistency().unwrap();

    // The truncated log is a clean foundation: new commits append and
    // survive a further, fault-free crash.
    db.with_txn(|txn| db.insert(txn, "t", &[Value::U64(9_000), Value::str("post")]))
        .unwrap();
    db = Database::recover(db.simulate_crash()).unwrap();
    assert!(db
        .with_txn(|txn| db.get(txn, "t", &[Value::U64(9_000)]))
        .unwrap()
        .is_some());
    db.check_consistency().unwrap();
}

/// The crash point is a *point*: `simulate_crash` settles the background
/// writeback pool (drain or cancel, deterministically) before returning, so
/// no page write can land on the surviving file afterwards — the artifacts
/// a restart recovers from are frozen the moment the call returns.
#[test]
fn no_background_write_lands_after_simulate_crash() {
    use rewind::common::{SimClock, Timestamp};
    use rewind::pagestore::{FileManager, MemFileManager};

    let fm = Arc::new(MemFileManager::new());
    let db = Database::create_on(
        fm.clone(),
        DbConfig {
            buffer_pages: 128,
            // Aggressive daemon checkpoints: the writeback pool is busy
            // flushing page batches while commits are still arriving, so
            // the crash lands with writes genuinely in flight.
            checkpoint_interval_bytes: 32 << 10,
            ..DbConfig::default()
        },
        SimClock::starting_at(Timestamp::from_secs(1)),
    )
    .unwrap();
    db.with_txn(|txn| db.create_table(txn, "t", schema()))
        .unwrap();
    let mut model = BTreeMap::new();
    for i in 0..1_500u64 {
        let row = vec![Value::U64(i), Value::Str(format!("v-{i}"))];
        db.with_txn(|txn| db.insert(txn, "t", &row)).unwrap();
        model.insert(i, row);
    }

    let arts = db.simulate_crash();
    let frozen = fm.io_stats().snapshot();
    // Any straggler writeback thread would land its batch within this
    // window; the shutdown contract says there is none left to land.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let after = fm.io_stats().snapshot();
    assert_eq!(
        after.page_writes, frozen.page_writes,
        "page write landed after simulate_crash returned"
    );
    assert_eq!(
        after.batched_write_ops, frozen.batched_write_ops,
        "batched write landed after simulate_crash returned"
    );

    let db = Database::recover(arts).unwrap();
    let got: BTreeMap<u64, Row> = db
        .with_txn(|txn| db.scan_all(txn, "t"))
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_u64().unwrap(), r))
        .collect();
    assert_eq!(got, model);
    db.check_consistency().unwrap();
}
