//! Scan resistance for bulk as-of preparation (ROADMAP item (h)).
//!
//! §5.3 step (b) streams cold snapshot reads through the shared buffer
//! pool. Before this PR, a bulk as-of preparation over a table larger than
//! the pool marched the clock hand over every frame and evicted the live
//! working set. Bulk preparation now runs inside a pin-limited
//! `ScanPartition`: the deterministic test below proves the damage bound
//! (live misses after a scan 3x the pool ≤ the partition budget plus
//! discovery overhead), and the torture test races live readers, two bulk
//! as-of scans and `drop_cache` to show the partitioned path keeps the
//! PR 4 invariants: split-consistent scans, no lost pins, exact values.

use rewind::{Column, DataType, Database, DbConfig, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

/// Insert `rows` rows with ~64-byte payloads (≈ 80 rows per leaf).
fn fill(db: &Database, table: &str, rows: u64, tag: &str) {
    let pad = "x".repeat(64);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(500) {
        db.with_txn(|txn| {
            for &i in chunk {
                db.insert(
                    txn,
                    table,
                    &[Value::U64(i), Value::Str(format!("{tag}{i}-{pad}"))],
                )?;
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn bulk_asof_scan_larger_than_pool_spares_live_working_set() {
    const POOL: usize = 128;
    const BUDGET: usize = 8;
    let db = Database::create(DbConfig {
        buffer_pages: POOL,
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "hot", schema())?;
        db.create_table(txn, "big", schema())?;
        Ok(())
    })
    .unwrap();
    fill(&db, "hot", 3_000, "h"); // ~40 leaves: the live working set
    fill(&db, "big", 16_000, "b"); // ~200 leaves: larger than the pool
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);

    let read_hot = || {
        db.with_txn(|txn| {
            for i in (0..3_000u64).step_by(3) {
                let row = db.get(txn, "hot", &[Value::U64(i)])?.expect("hot row");
                assert_eq!(row[0], Value::U64(i));
            }
            Ok(())
        })
        .unwrap()
    };

    // Make the hot working set resident, then verify it really is: a
    // second pass over it misses (almost) nothing.
    read_hot();
    let s0 = db.pool_stats();
    read_hot();
    let warm_misses = db.pool_stats().delta(s0).misses;
    assert!(
        warm_misses <= 2,
        "working set not resident before the scan: {warm_misses} misses"
    );

    // Bulk as-of preparation of the whole big table — more pages than the
    // pool holds — through a BUDGET-frame scan partition.
    let snap = db
        .create_snapshot_asof("scanres", t0)
        .unwrap()
        .with_scan_budget(BUDGET);
    snap.wait_undo_complete();
    let big = snap.table("big").unwrap();
    let s1 = db.pool_stats();
    let prepared = snap.prefetch_table(&big, 4).unwrap();
    assert!(
        prepared > POOL as u64,
        "scan must exceed the pool to prove anything: {prepared} pages"
    );
    let scan_io = db.pool_stats().delta(s1);
    assert!(
        scan_io.misses + scan_io.hits >= prepared,
        "every prepared page takes §5.3 step (b) through the pool"
    );

    // The live working set must still be (almost entirely) resident: the
    // scan may have claimed its budget from the pool, plus the handful of
    // frames the serial leaf-discovery walk (internal pages, snapshot
    // catalog) touched outside the partition.
    let s2 = db.pool_stats();
    read_hot();
    let after = db.pool_stats().delta(s2);
    let slack = 16; // discovery reads: big's internals + snapshot catalog
    assert!(
        (after.misses as usize) <= BUDGET + slack,
        "bulk as-of scan trashed the live working set: {} misses (budget {BUDGET} + slack {slack})",
        after.misses
    );

    // And the scan was not crippled by the bound: every big row is served,
    // warm, from the side file.
    let rows = snap.scan_all(&big).unwrap();
    assert_eq!(rows.len(), 16_000);
    db.drop_snapshot("scanres").unwrap();
}

/// A *serial* cold `scan_all` must honour a configured scan budget too —
/// `DbConfig::asof_scan_budget` is a promise about bulk as-of streams, not
/// only about explicitly parallel prefetches. (Regression: the partition
/// originally engaged only when `prefetch_workers > 1`, so the default
/// serial scan path silently bypassed the budget.)
#[test]
fn serial_scan_with_configured_budget_engages_partition() {
    const POOL: usize = 128;
    const BUDGET: usize = 8;
    let db = Database::create(DbConfig {
        buffer_pages: POOL,
        asof_scan_budget: BUDGET,
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "hot", schema())?;
        db.create_table(txn, "big", schema())?;
        db.create_heap_table(txn, "bigheap", schema())?;
        Ok(())
    })
    .unwrap();
    fill(&db, "hot", 3_000, "h");
    fill(&db, "big", 16_000, "b");
    fill(&db, "bigheap", 16_000, "p");
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);

    let read_hot = || {
        db.with_txn(|txn| {
            for i in (0..3_000u64).step_by(3) {
                db.get(txn, "hot", &[Value::U64(i)])?.expect("hot row");
            }
            Ok(())
        })
        .unwrap()
    };
    read_hot();
    read_hot();

    // A *bounded* range scan covering most of the (cold) table first: a
    // configured budget must bound it even though it takes no prefetch.
    let snap = db.create_snapshot_asof("serial", t0).unwrap();
    snap.wait_undo_complete();
    let big = snap.table("big").unwrap();
    let rows = snap
        .scan_between(&big, &[Value::U64(100)], &[Value::U64(15_000)])
        .unwrap();
    assert_eq!(rows.len(), 14_901);
    assert!(snap.side_pages() > POOL, "range scan exceeded the pool");
    let s = db.pool_stats();
    read_hot();
    let after = db.pool_stats().delta(s);
    assert!(
        (after.misses as usize) <= BUDGET + 16,
        "bounded budgeted range scan trashed the live working set: {} misses",
        after.misses
    );

    // Plain scan_all — no explicit prefetch, default (serial) workers. The
    // configured budget must still route the cold stream through the
    // partition.
    let rows = snap.scan_all(&big).unwrap();
    assert_eq!(rows.len(), 16_000);

    let s = db.pool_stats();
    read_hot();
    let after = db.pool_stats().delta(s);
    let slack = 16;
    assert!(
        (after.misses as usize) <= BUDGET + slack,
        "serial budgeted scan trashed the live working set: {} misses",
        after.misses
    );

    // Heap tables have no leaves to prefetch — the budget must bound their
    // cold chain walk the same way (regression: only Tree tables were
    // partitioned at first).
    read_hot();
    let heap = snap.table("bigheap").unwrap();
    let rows = snap.scan_all(&heap).unwrap();
    assert_eq!(rows.len(), 16_000);
    let s = db.pool_stats();
    read_hot();
    let after = db.pool_stats().delta(s);
    assert!(
        (after.misses as usize) <= BUDGET + slack,
        "serial budgeted heap scan trashed the live working set: {} misses",
        after.misses
    );
    db.drop_snapshot("serial").unwrap();
}

/// Live readers vs. two bulk as-of preparations vs. `drop_cache`: the
/// partitioned read path must honour every pool invariant under fire —
/// no lost pins, no torn values, and the as-of result split-consistent
/// (pre-update epoch exactly, no matter how the crash simulation races
/// the §5.3 step (b) reads).
#[test]
fn partitioned_prepare_races_drop_cache_split_consistently() {
    const POOL: usize = 96;
    let db = Arc::new(
        Database::create(DbConfig {
            buffer_pages: POOL,
            checkpoint_interval_bytes: 0,
            ..DbConfig::default()
        })
        .unwrap(),
    );
    db.with_txn(|txn| {
        db.create_table(txn, "hot", schema())?;
        db.create_table(txn, "big", schema())?;
        Ok(())
    })
    .unwrap();
    fill(&db, "hot", 1_500, "h");
    fill(&db, "big", 10_000, "e0-");
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(5);
    // Epoch 1: rewrite a slice of big *after* the split; as-of readers must
    // never see these.
    db.with_txn(|txn| {
        let pad = "x".repeat(64);
        for i in (0..10_000u64).step_by(7) {
            db.update(
                txn,
                "big",
                &[Value::U64(i), Value::Str(format!("e1-{i}-{pad}"))],
            )?;
        }
        Ok(())
    })
    .unwrap();
    // Everything durable: drop_cache below only discards clean state, so
    // live readers keep seeing exact values throughout.
    db.checkpoint().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Live readers hammering the hot working set, verifying values.
        for t in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 17 * t;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 13) % 1_500;
                    db.with_txn(|txn| {
                        let row = db.get(txn, "hot", &[Value::U64(i)])?.expect("hot row");
                        match &row[1] {
                            Value::Str(v) => assert!(
                                v.starts_with(&format!("h{i}-")),
                                "torn live value for {i}: {v}"
                            ),
                            other => panic!("bad value {other:?}"),
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
        // Crash simulation racing everything.
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    db.parts().pool.drop_cache();
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
        // Two successive bulk as-of preparations (fresh snapshot each, so
        // both really stream cold pages through their partitions).
        for round in 0..2 {
            let name = format!("torture{round}");
            let snap = db
                .create_snapshot_asof(&name, t0)
                .unwrap()
                .with_scan_budget(6);
            snap.wait_undo_complete();
            let big = snap.table("big").unwrap();
            let prepared = snap.prefetch_table(&big, 4).unwrap();
            assert!(prepared > POOL as u64, "round {round}: {prepared} pages");
            // Split consistency: every row is epoch 0, byte-exact.
            let rows = snap.scan_all(&big).unwrap();
            assert_eq!(rows.len(), 10_000);
            for row in &rows {
                let id = match row[0] {
                    Value::U64(id) => id,
                    ref other => panic!("bad key {other:?}"),
                };
                match &row[1] {
                    Value::Str(v) => assert!(
                        v.starts_with(&format!("e0-{id}-")),
                        "as-of scan saw post-split epoch for {id}: {v}"
                    ),
                    other => panic!("bad value {other:?}"),
                }
            }
            db.drop_snapshot(&name).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(db.parts().pool.pinned_frames(), 0, "no lost pins");
}
