//! Concurrency of as-of snapshots with a live workload (the paper's §6.3
//! setting, as a correctness test): while writer threads hammer the
//! database, snapshots taken at quiesced marks must reproduce those marks
//! exactly — unaffected by everything committed afterwards — and the
//! workload must keep its invariants.

use rewind::{Column, DataType, Database, DbConfig, Error, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn snapshots_are_stable_under_concurrent_writes() {
    let db = Arc::new(
        Database::create(DbConfig {
            buffer_pages: 1024,
            checkpoint_interval_bytes: 1 << 20,
            ..DbConfig::default()
        })
        .unwrap(),
    );
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "counters",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("n", DataType::U64),
                ],
                &["id"],
            )?,
        )?;
        for i in 0..32u64 {
            db.insert(txn, "counters", &[Value::U64(i), Value::U64(0)])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();

    // Quiesced mark: sum of all counters is exactly 0 here.
    let mark = db.clock().now();
    db.clock().advance_secs(1);

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let db = db.clone();
        let stop = stop.clone();
        let committed = committed.clone();
        writers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let id = (t * 8 + i) % 32;
                i += 1;
                let txn = db.begin();
                let r = (|| {
                    let row = db
                        .get_for_update(&txn, "counters", &[Value::U64(id)])?
                        .unwrap();
                    let n = row[1].as_u64()?;
                    db.update(&txn, "counters", &[Value::U64(id), Value::U64(n + 1)])?;
                    Ok(())
                })();
                match r {
                    Ok(()) => {
                        db.commit(txn).unwrap();
                        committed.fetch_add(1, Ordering::Release);
                    }
                    Err(Error::Deadlock(_)) | Err(Error::LockTimeout(_)) => {
                        db.rollback(txn).unwrap()
                    }
                    Err(e) => panic!("{e}"),
                }
                db.clock().advance_micros(500);
                // Busy-looping writers can starve the snapshots' background
                // undo threads on small CI machines until the 30s lock gate
                // times out; yield so undo always gets timely slices.
                std::thread::yield_now();
            }
        }));
    }

    // While writers run, repeatedly snapshot the quiesced mark and verify.
    for round in 0..5 {
        let name = format!("mark_{round}");
        let snap = db.create_snapshot_asof(&name, mark).unwrap();
        let info = snap.table("counters").unwrap();
        let rows = snap.scan_all(&info).unwrap();
        assert_eq!(rows.len(), 32);
        let total: u64 = rows.iter().map(|r| r[1].as_u64().unwrap()).sum();
        assert_eq!(total, 0, "round {round}: the mark predates all increments");
        snap.wait_undo_complete();
        db.drop_snapshot(&name).unwrap();
    }

    // The sharded read path made the snapshot rounds fast enough that on a
    // 1-core machine all five can finish before any writer is scheduled:
    // wait for the first commit (bounded) before stopping, so the assert
    // below checks what it means to check — that writers *can* progress
    // under concurrent snapshots, not how the OS happened to schedule them.
    #[allow(clippy::disallowed_methods)] // test watchdog: wall-clock is the point
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    #[allow(clippy::disallowed_methods)]
    while committed.load(Ordering::Acquire) == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }

    // Meanwhile the live table moved on and is internally consistent.
    let rows = db.with_txn(|txn| db.scan_all(txn, "counters")).unwrap();
    let total: u64 = rows.iter().map(|r| r[1].as_u64().unwrap()).sum();
    assert!(total > 0, "writers made progress");
    assert_eq!(
        total,
        committed.load(Ordering::Acquire),
        "every commit visible"
    );
}

#[test]
fn parallel_prepare_fanout_equals_serial_scan() {
    // Two snapshots of the same past instant: one scanned serially, one
    // with its leaf preparation fanned out over 4 workers. Same rows, and
    // the fan-out actually prepares pages (misses, not side-file hits).
    let db = Database::create(DbConfig::default()).unwrap();
    let filler = "y".repeat(200);
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "wide",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::Str),
                ],
                &["id"],
            )?,
        )?;
        for i in 0..2000u64 {
            db.insert(txn, "wide", &[Value::U64(i), Value::str(&filler)])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let mark = db.clock().now();
    db.clock().advance_secs(10);
    // Post-mark churn so preparation has real undo work per leaf.
    db.with_txn(|txn| {
        for i in (0..2000u64).step_by(3) {
            db.update(txn, "wide", &[Value::U64(i), Value::str("post-mark")])?;
        }
        Ok(())
    })
    .unwrap();

    let serial = db.create_snapshot_asof("serial", mark).unwrap();
    let st = serial.table("wide").unwrap();
    let serial_rows = serial.scan_all(&st).unwrap();

    let fanout = db
        .create_snapshot_asof("fanout", mark)
        .unwrap()
        .with_prefetch_workers(4);
    let ft = fanout.table("wide").unwrap();
    let prepared = fanout.prefetch_table(&ft, 4).unwrap();
    assert!(prepared > 8, "fan-out prepared only {prepared} pages");
    let fanout_rows = fanout.scan_all(&ft).unwrap();

    assert_eq!(serial_rows, fanout_rows);
    assert_eq!(fanout_rows.len(), 2000);
    assert!(fanout_rows.iter().all(|r| r[1] != Value::str("post-mark")));
    db.drop_snapshot("serial").unwrap();
    db.drop_snapshot("fanout").unwrap();
}

#[test]
fn snapshot_of_running_state_is_transactionally_consistent() {
    // Transfers preserve a global invariant (sum == 0 net); any as-of
    // snapshot taken mid-run must also satisfy it, because snapshots are
    // transactionally consistent (§5: in-flight txns at the split are
    // undone).
    let db = Arc::new(Database::create(DbConfig::default()).unwrap());
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "acct",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("bal", DataType::I64),
                ],
                &["id"],
            )?,
        )?;
        for i in 0..16u64 {
            db.insert(txn, "acct", &[Value::U64(i), Value::I64(1_000)])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..3u64 {
        let db = db.clone();
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut x = t + 1;
            let mut rng = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            };
            while !stop.load(Ordering::Acquire) {
                let a = rng() % 16;
                let b = rng() % 16;
                if a == b {
                    continue;
                }
                let txn = db.begin();
                let r = (|| {
                    let ra = db.get_for_update(&txn, "acct", &[Value::U64(a)])?.unwrap();
                    let rb = db.get_for_update(&txn, "acct", &[Value::U64(b)])?.unwrap();
                    let amt = (rng() % 50) as i64;
                    db.update(
                        &txn,
                        "acct",
                        &[Value::U64(a), Value::I64(ra[1].as_i64()? - amt)],
                    )?;
                    db.update(
                        &txn,
                        "acct",
                        &[Value::U64(b), Value::I64(rb[1].as_i64()? + amt)],
                    )?;
                    Ok(())
                })();
                match r {
                    Ok(()) => db.commit(txn).unwrap(),
                    Err(Error::Deadlock(_)) | Err(Error::LockTimeout(_)) => {
                        db.rollback(txn).unwrap()
                    }
                    Err(e) => panic!("{e}"),
                }
                db.clock().advance_micros(700);
                // See above: keep the undo threads scheduled on 1-2 core CI.
                std::thread::yield_now();
            }
        }));
    }

    // Take snapshots of the *recent past* while transfers are in flight:
    // each must see a total of exactly 16_000 despite concurrent and
    // in-flight transfers at its split point.
    let mut checked = 0;
    while checked < 5 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t = db.clock().now().minus_micros(2_000);
        let name = format!("live_{checked}");
        let snap = match db.create_snapshot_asof(&name, t) {
            Ok(s) => s,
            Err(Error::RetentionExceeded { .. }) => continue,
            Err(e) => panic!("{e}"),
        };
        let info = snap.table("acct").unwrap();
        let rows = snap.scan_all(&info).unwrap();
        let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(
            total, 16_000,
            "snapshot {checked} must be transactionally consistent"
        );
        snap.wait_undo_complete();
        db.drop_snapshot(&name).unwrap();
        checked += 1;
    }

    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }
}
