//! Media-corruption torture: every fault class the hardening defends
//! against — log bit-flips, page bit rot, torn page writes, lost tail
//! sectors, corrupt checkpoint anchors, transient EIO — driven by the
//! deterministic seeded [`FaultInjector`], asserting that recovery yields
//! *exactly* the committed durable prefix (or a typed corruption error when
//! the log chain itself is damaged), that as-of snapshots and flashback
//! still work after pages were salvaged, and that the salvage/corruption/
//! retry counters in `IoStats` are deterministic.
//!
//! CI runs this suite as a hard gate (counters exact, no panics); the three
//! fixed seeds keep every randomized choice reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rewind::common::{Error, Lsn, PageId};
use rewind::pagestore::{FaultInjector, FileManager};
use rewind::repair::{flashback, ConflictPolicy, RepairConfig, RepairTarget};
use rewind::{Column, DataType, Database, DbConfig, Row, Schema, SimClock, Timestamp, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The fixed seeds the CI `corruption-torture` step pins.
const SEEDS: [u64; 3] = [0x00C0_FFEE, 0x0DDB_17E5, 0x5EED_F00D];

/// One log frame's `[u32 length][u32 crc]` prefix; offsets into a record's
/// body start this many bytes after its LSN.
const FRAME_HEADER: u64 = 8;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn to_map(rows: Vec<Row>) -> BTreeMap<u64, Row> {
    rows.into_iter()
        .map(|r| (r[0].as_u64().unwrap(), r))
        .collect()
}

/// One committed batch of randomized inserts/updates/deletes, mirrored in
/// `model`.
fn commit_batch(db: &Database, rng: &mut SmallRng, model: &mut BTreeMap<u64, Row>, round: u64) {
    for _ in 0..rng.gen_range(3..10) {
        let ops = rng.gen_range(1..8);
        db.with_txn(|txn| {
            for _ in 0..ops {
                let id = rng.gen_range(0..200u64);
                let row = vec![
                    Value::U64(id),
                    Value::Str(format!("{round}:{}", rng.gen::<u32>())),
                ];
                match model.entry(id) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        if rng.gen_bool(0.25) {
                            db.delete(txn, "t", &[Value::U64(id)])?;
                            model.remove(&id);
                        } else {
                            db.update(txn, "t", &row)?;
                            e.insert(row);
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        db.insert(txn, "t", &row)?;
                        e.insert(row);
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        db.clock().advance_micros(rng.gen_range(1_000..50_000));
    }
}

fn scan_map(db: &Database) -> BTreeMap<u64, Row> {
    to_map(db.with_txn(|txn| db.scan_all(txn, "t")).unwrap())
}

/// Fresh database over a seeded fault injector. Manual checkpoints only,
/// so tests control exactly when pages reach the (faulty) media.
fn faulty_db(seed: u64) -> (Arc<FaultInjector>, Database) {
    let fi = Arc::new(FaultInjector::new(seed));
    let db = Database::create_on(
        fi.clone(),
        DbConfig {
            checkpoint_interval_bytes: 0,
            ..DbConfig::default()
        },
        SimClock::starting_at(Timestamp::from_secs(1_000)),
    )
    .unwrap();
    db.with_txn(|txn| db.create_table(txn, "t", schema()))
        .unwrap();
    (fi, db)
}

/// Fault class: a bit flip in the durable log. Recovery must stop at the
/// first bad frame and come back with exactly the batches committed before
/// it — no panic, no rows from past the damage.
#[test]
fn log_bitflip_recovers_exactly_committed_prefix() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut db = Database::create(DbConfig {
            // No checkpoints: every page stays volatile, so restart rebuilds
            // purely from the log and the cut prefix is the whole truth.
            checkpoint_interval_bytes: 0,
            ..DbConfig::default()
        })
        .unwrap();
        db.with_txn(|txn| db.create_table(txn, "t", schema()))
            .unwrap();
        let mut model = BTreeMap::new();
        // (log position, model) after each committed batch.
        let mut boundaries = Vec::new();
        for round in 0..8 {
            commit_batch(&db, &mut rng, &mut model, round);
            db.log().flush_to(db.log().tail_lsn());
            boundaries.push((db.log().tail_lsn(), model.clone()));
        }
        // Flip one bit in the body of the first frame after batch `j`.
        let j = 2 + (seed as usize % 4);
        let (cut, expect) = boundaries[j].clone();
        assert!(db.log().corrupt_byte_at(cut.0 + FRAME_HEADER + 1, 0x40));

        db = Database::recover(db.simulate_crash()).unwrap();
        assert_eq!(
            db.log_io().corruptions_detected,
            1,
            "exactly the one damaged frame is detected (seed {seed:#x})"
        );
        // Recovery itself appends (and checkpoints) past the cut, so the
        // tail only bounds it from above; the model equality below proves
        // nothing past the damage survived.
        assert!(db.log().tail_lsn() >= cut);
        assert_eq!(
            scan_map(&db),
            expect,
            "recovery must yield exactly batches 0..={j} (seed {seed:#x})"
        );
        db.check_consistency().unwrap();
        // The survivor keeps working.
        db.with_txn(|txn| db.insert(txn, "t", &[Value::U64(9_999), Value::str("after")]))
            .unwrap();
        assert!(scan_map(&db).contains_key(&9_999));
    }
}

/// Fault classes: page bit rot and lost tail sectors, injected into every
/// page image on the media. Every subsequent read must self-heal from the
/// per-page log chain (salvage + repair-on-read), with exact counters.
#[test]
fn page_bitrot_and_short_reads_salvage_every_page() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (fi, db) = faulty_db(seed);
        let mut model = BTreeMap::new();
        let mut times = Vec::new();
        for round in 0..5 {
            commit_batch(&db, &mut rng, &mut model, round);
            // Record the as-of time BEFORE advancing: the next round's
            // first commit stamps the clock's current value, so the
            // recorded instant must be strictly older than it.
            times.push((db.clock().now(), model.clone()));
            db.clock().advance_micros(10_000);
        }
        // Push every page to the media, then damage all of them at rest.
        db.checkpoint().unwrap();
        db.parts().pool.drop_cache();
        let mut damaged = 0u64;
        for pid in 0..fi.page_count() {
            let pid = PageId(pid);
            if fi.inner().raw_image(pid).is_some() {
                let hit = if rng.gen_bool(0.5) {
                    fi.flip_bit(pid)
                } else {
                    fi.zero_tail(pid)
                };
                assert!(hit);
                damaged += 1;
            }
        }
        assert!(damaged > 3, "workload must have persisted several pages");

        // Full scan + structural check: every page read heals itself.
        assert_eq!(scan_map(&db), model, "salvaged rows (seed {seed:#x})");
        db.check_consistency().unwrap();
        let io = db.data_io();
        assert!(io.page_salvages > 0, "salvage must have run");
        assert_eq!(
            io.page_salvages, io.corruptions_detected,
            "every detected page salvaged exactly once — repair-on-read \
             means no page pays twice (seed {seed:#x})"
        );
        assert!(io.page_salvages <= damaged);

        // As-of time travel still works on salvaged history.
        let (t_mid, model_mid) = times[2].clone();
        let snap = db.create_snapshot_asof("mid", t_mid).unwrap();
        let tbl = snap.table("t").unwrap();
        assert_eq!(
            to_map(snap.scan_all(&tbl).unwrap()),
            model_mid,
            "as-of snapshot after salvage (seed {seed:#x})"
        );
    }
}

/// Fault class: a torn write through the real write-back path — the armed
/// page persists only a sector prefix during checkpoint's flush.
#[test]
fn torn_writeback_detected_and_salvaged() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (fi, db) = faulty_db(seed);
        let mut model = BTreeMap::new();
        commit_batch(&db, &mut rng, &mut model, 0);
        db.checkpoint().unwrap();
        commit_batch(&db, &mut rng, &mut model, 1);
        // Arm a tear on a page the next flush will actually write.
        let victim = db
            .parts()
            .pool
            .dirty_page_table()
            .iter()
            .map(|e| e.page)
            .max()
            .expect("second batch dirtied pages");
        fi.arm_torn_write(victim);
        db.checkpoint().unwrap();

        db.parts().pool.drop_cache();
        assert_eq!(scan_map(&db), model, "seed {seed:#x}");
        db.check_consistency().unwrap();
        let io = db.data_io();
        assert_eq!(
            io.page_salvages, 1,
            "exactly the torn page (seed {seed:#x})"
        );
        assert_eq!(io.corruptions_detected, 1);
    }
}

/// Flashback (the paper's headline repair primitive) must keep working on
/// a database whose pages went through salvage.
#[test]
fn flashback_works_after_salvage() {
    let (fi, db) = faulty_db(SEEDS[0]);
    let mut rng = SmallRng::seed_from_u64(SEEDS[0]);
    let mut model = BTreeMap::new();
    commit_batch(&db, &mut rng, &mut model, 0);
    db.clock().advance_secs(5);

    // The erroneous transaction to surgically revert later.
    let bad_txn = {
        let txn = db.begin();
        db.insert(&txn, "t", &[Value::U64(5_000), Value::str("erroneous")])
            .unwrap();
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(5);

    // Media damage + self-heal in between.
    db.checkpoint().unwrap();
    db.parts().pool.drop_cache();
    let mut hit = 0;
    for pid in 0..fi.page_count() {
        if fi.flip_bit(PageId(pid)) {
            hit += 1;
        }
    }
    assert!(hit > 0);
    assert_eq!(
        scan_map(&db),
        {
            let mut m = model.clone();
            m.insert(5_000, vec![Value::U64(5_000), Value::str("erroneous")]);
            m
        },
        "salvaged state includes the bad row"
    );
    assert!(db.data_io().page_salvages > 0);

    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 1,
        },
    )
    .unwrap();
    assert_eq!(report.applied, 1, "the bad insert is reverted");
    assert_eq!(scan_map(&db), model, "flashback lands on salvaged pages");
    db.check_consistency().unwrap();
}

/// Fault class: corrupt checkpoint anchors. A bad newest anchor falls back
/// to the older slot; two bad anchors degrade to a full scan. Either way
/// recovery returns every durable commit.
#[test]
fn anchor_corruption_falls_back_and_recovers_fully() {
    let mut rng = SmallRng::seed_from_u64(SEEDS[1]);
    let mut db = Database::create(DbConfig {
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| db.create_table(txn, "t", schema()))
        .unwrap();
    let mut model = BTreeMap::new();
    commit_batch(&db, &mut rng, &mut model, 0);
    db.checkpoint().unwrap();
    commit_batch(&db, &mut rng, &mut model, 1);
    db.checkpoint().unwrap();
    commit_batch(&db, &mut rng, &mut model, 2);
    db.log().flush_to(db.log().tail_lsn());

    // Newest anchor corrupt: the older one carries recovery.
    let newest = db.log().newest_anchor_slot().unwrap();
    assert!(db.log().corrupt_anchor_slot(newest));
    db = Database::recover(db.simulate_crash()).unwrap();
    // Both discard passes (crash + restart) see the same bad slot.
    assert_eq!(db.log_io().corruptions_detected, 2);
    assert_eq!(scan_map(&db), model, "older anchor recovers everything");
    db.check_consistency().unwrap();

    // Both anchors corrupt: analysis degrades to a scan, same answer.
    // Two fresh checkpoints first, so both slots hold valid anchors (the
    // slot corruption is an XOR — re-corrupting phase 1's slot would undo
    // it) and some committed work follows the newest one.
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    commit_batch(&db, &mut rng, &mut model, 3);
    db.log().flush_to(db.log().tail_lsn());
    assert!(db.log().corrupt_anchor_slot(0));
    assert!(db.log().corrupt_anchor_slot(1));
    let before = db.log_io().corruptions_detected;
    db = Database::recover(db.simulate_crash()).unwrap();
    // Both bad slots detected on both discard passes (crash + restart);
    // the post-recovery checkpoint then lays down a fresh valid anchor.
    assert_eq!(db.log_io().corruptions_detected - before, 4);
    assert_eq!(scan_map(&db), model, "scan fallback recovers everything");
    db.check_consistency().unwrap();
}

/// Fault class: transient EIO. Bounded retry absorbs short outages with
/// exact retry accounting; a persistent outage surfaces as a typed,
/// retryable I/O error — never a panic, never wrong rows.
#[test]
fn transient_eio_bounded_retry_and_typed_exhaustion() {
    let mut rng = SmallRng::seed_from_u64(SEEDS[2]);
    let (fi, db) = faulty_db(SEEDS[2]);
    let mut model = BTreeMap::new();
    commit_batch(&db, &mut rng, &mut model, 0);

    // Three write hiccups during checkpoint's flush: absorbed, counted.
    fi.arm_eio_writes(3);
    db.checkpoint().unwrap();
    assert_eq!(db.data_io().io_retries, 3);

    // Two read hiccups during the post-drop re-read: absorbed, counted.
    fi.arm_eio_reads(2);
    db.parts().pool.drop_cache();
    assert_eq!(scan_map(&db), model);
    assert_eq!(db.data_io().io_retries, 5);

    // A persistent outage exhausts the retry budget and surfaces typed.
    fi.arm_eio_reads(1_000);
    db.parts().pool.drop_cache();
    let err = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap_err();
    assert!(matches!(err, Error::Io(_)), "typed transient error: {err}");
    assert!(err.is_transient(), "callers may retry the whole operation");

    // Device recovers: the same database serves the same rows.
    fi.arm_eio_reads(0);
    assert_eq!(scan_map(&db), model);
    db.check_consistency().unwrap();
}

/// Salvage is honest about its limits: when the per-page log chain itself
/// is damaged, the page read fails with a typed corruption error rather
/// than fabricating rows.
#[test]
fn salvage_fails_typed_when_log_chain_damaged() {
    let mut rng = SmallRng::seed_from_u64(SEEDS[0]);
    let (fi, db) = faulty_db(SEEDS[0]);
    let mut model = BTreeMap::new();
    for round in 0..3 {
        commit_batch(&db, &mut rng, &mut model, round);
    }
    db.checkpoint().unwrap();
    db.parts().pool.drop_cache();

    // Find a data page with real history and damage BOTH the page and a
    // mid-chain log record it needs for reconstruction.
    let mut victim = None;
    db.log()
        .scan_views(Lsn::FIRST, Lsn::MAX, |h, _| {
            if h.page.0 > 1 && h.kind.is_page_op() {
                victim = Some((h.page, h.lsn));
            }
            Ok(true)
        })
        .unwrap();
    let (pid, chain_lsn) = victim.expect("workload logged page ops");
    assert!(db
        .log()
        .corrupt_byte_at(chain_lsn.0 + FRAME_HEADER + 1, 0x08));
    assert!(fi.flip_bit(pid));

    let err = db.with_txn(|txn| db.scan_all(txn, "t")).unwrap_err();
    assert!(
        err.corruption_kind().is_some(),
        "typed corruption, no panic: {err}"
    );
    assert!(
        err.to_string().contains("unsalvageable"),
        "failure names the salvage limit: {err}"
    );
    assert_eq!(db.data_io().page_salvages, 0, "no fabricated salvage");
}

/// Media errors hit by *background* maintenance (the checkpoint daemon
/// kicked by commits) are deferred and surface through
/// `take_background_errors`, typed.
#[test]
fn background_checkpoint_media_errors_surface_typed() {
    let fi = Arc::new(FaultInjector::new(SEEDS[1]));
    let db = Database::create_on(
        fi.clone(),
        DbConfig {
            // Checkpoint after every commit: maintenance runs hot.
            checkpoint_interval_bytes: 1,
            ..DbConfig::default()
        },
        SimClock::starting_at(Timestamp::from_secs(1_000)),
    )
    .unwrap();
    db.with_txn(|txn| db.create_table(txn, "t", schema()))
        .unwrap();
    // Let the checkpoint kicked by the healthy commit finish before the
    // faults arm, so the outage hits exactly the next one.
    db.quiesce_checkpoints();
    assert!(db.take_background_errors().is_empty());

    // A persistent write outage: the kicked checkpoint exhausts its retry
    // budget, but the commit itself (log-only) succeeds.
    fi.arm_eio_writes(1_000);
    db.with_txn(|txn| db.insert(txn, "t", &[Value::U64(1), Value::str("v")]))
        .unwrap();
    db.quiesce_checkpoints();
    let errs = db.take_background_errors();
    assert!(
        errs.iter()
            .any(|(what, e)| what.contains("checkpoint") && matches!(e, Error::Io(_))),
        "deferred background error must be typed: {errs:?}"
    );

    // Device recovers; maintenance heals.
    fi.arm_eio_writes(0);
    db.checkpoint().unwrap();
    assert!(scan_map(&db).contains_key(&1));
    db.check_consistency().unwrap();
}

/// Fault class: transient EIO striking individual pages *inside* vectored
/// batches. A per-page fault must fail only its own slot — the batch's
/// clean segments still coalesce and succeed — and the pool's per-page
/// retry protocol absorbs each faulted slot with exactly one counted
/// retry, on both the batched read path (restart's staged redo prefetch)
/// and the batched write path (the checkpoint writeback pool).
#[test]
fn mid_batch_faults_fail_only_their_page() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (fi, db) = faulty_db(seed);
        let mut model = BTreeMap::new();
        for round in 0..4 {
            commit_batch(&db, &mut rng, &mut model, round);
        }

        // Batched writes: faults land mid-batch inside the writeback
        // pool's `write_pages`; only the faulted slots retry (scalar), the
        // checkpoint still succeeds, and each fault costs exactly one
        // retry.
        let before = db.data_io();
        fi.arm_eio_writes(3);
        db.checkpoint().unwrap();
        let after = db.data_io();
        assert_eq!(
            after.io_retries - before.io_retries,
            3,
            "each faulted write slot retries exactly once (seed {seed:#x})"
        );
        assert!(
            after.batched_write_ops > before.batched_write_ops,
            "checkpoint flush must go through batched writes (seed {seed:#x})"
        );

        // Batched reads: more committed work, then crash. Restart's redo
        // prefetch stages page runs through `read_pages`; the armed faults
        // fail individual slots mid-batch, each resuming the scalar retry
        // protocol at its own miss.
        for round in 4..6 {
            commit_batch(&db, &mut rng, &mut model, round);
        }
        let arts = db.simulate_crash();
        fi.arm_eio_reads(3);
        let db = Database::recover(arts).unwrap();
        let io = db.data_io();
        assert_eq!(
            io.io_retries - after.io_retries,
            3,
            "each faulted read slot retries exactly once (seed {seed:#x})"
        );
        assert_eq!(
            scan_map(&db),
            model,
            "every committed row survives mid-batch faults (seed {seed:#x})"
        );
        assert_eq!(
            db.data_io().corruptions_detected,
            0,
            "transient EIO is not corruption"
        );
        db.check_consistency().unwrap();
    }
}
