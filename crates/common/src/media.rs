//! Storage-device models and I/O accounting.
//!
//! The paper's evaluation (§6) runs the same experiments against SAS spinning
//! disks and SLC SSDs and shows that the *shape* of each result is governed by
//! two device terms: random-read latency (log stalls while walking per-page
//! chains) and sequential bandwidth (restore, log writes). We reproduce those
//! terms explicitly: every file/log manager counts its I/Os in an [`IoStats`],
//! and a [`MediaModel`] converts a count delta into modeled elapsed time.
//! Benchmarks report modeled time for the paper's device classes alongside
//! actually-measured CPU time.

use crate::stripe::StripedCounters;
use std::fmt;

/// Parameters of a storage device class.
#[derive(Clone, Debug, PartialEq)]
pub struct MediaModel {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Latency of one random (page-sized) read, in microseconds.
    pub random_read_us: u64,
    /// Latency of one random (page-sized) write, in microseconds.
    pub random_write_us: u64,
    /// Sequential read bandwidth in MiB/s.
    pub seq_read_mibps: u64,
    /// Sequential write bandwidth in MiB/s.
    pub seq_write_mibps: u64,
}

impl MediaModel {
    /// 10K RPM SAS spinning disk, as in the paper's testbed (8×146 GB 2.5"
    /// 10K SAS). Dominated by ~5 ms seeks; ~100 MB/s sequential, which is the
    /// figure the paper quotes for sustained log bandwidth.
    pub const fn sas_hdd() -> Self {
        MediaModel {
            name: "sas-10k",
            random_read_us: 5_000,
            random_write_us: 5_000,
            seq_read_mibps: 100,
            seq_write_mibps: 100,
        }
    }

    /// SLC SSD, as in the paper's testbed (8×32 GB SLC). ~100 µs random
    /// reads, a few hundred MiB/s sequential.
    pub const fn ssd() -> Self {
        MediaModel {
            name: "ssd-slc",
            random_read_us: 100,
            random_write_us: 120,
            seq_read_mibps: 250,
            seq_write_mibps: 200,
        }
    }

    /// An idealized infinitely fast device; useful to isolate CPU costs in
    /// ablation benchmarks.
    pub const fn instant() -> Self {
        MediaModel {
            name: "instant",
            random_read_us: 0,
            random_write_us: 0,
            seq_read_mibps: u64::MAX,
            seq_write_mibps: u64::MAX,
        }
    }

    /// Modeled time for `n` random page reads, in microseconds.
    #[inline]
    pub fn random_read_time_us(&self, n: u64) -> u64 {
        n.saturating_mul(self.random_read_us)
    }

    /// Modeled time for `n` random page writes, in microseconds.
    #[inline]
    pub fn random_write_time_us(&self, n: u64) -> u64 {
        n.saturating_mul(self.random_write_us)
    }

    /// Modeled time to sequentially read `bytes`, in microseconds.
    #[inline]
    pub fn seq_read_time_us(&self, bytes: u64) -> u64 {
        if self.seq_read_mibps == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000) / (self.seq_read_mibps * 1024 * 1024)
        }
    }

    /// Modeled time to sequentially write `bytes`, in microseconds.
    #[inline]
    pub fn seq_write_time_us(&self, bytes: u64) -> u64 {
        if self.seq_write_mibps == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000) / (self.seq_write_mibps * 1024 * 1024)
        }
    }
}

// Counter indices into the striped array (see [`StripedCounters`]).
const IO_PAGE_READS: usize = 0;
const IO_PAGE_WRITES: usize = 1;
const IO_LOG_READ_IOS: usize = 2;
const IO_LOG_CACHE_HITS: usize = 3;
const IO_LOG_BYTES_WRITTEN: usize = 4;
const IO_LOG_BYTES_SCANNED: usize = 5;
const IO_LOG_FLUSHES: usize = 6;
const IO_SEQ_DATA_BYTES: usize = 7;
const IO_PAGE_SALVAGES: usize = 8;
const IO_CORRUPTIONS_DETECTED: usize = 9;
const IO_RETRIES: usize = 10;
const IO_COUNTERS: usize = 11;

/// Thread-safe I/O counters. One instance is shared by a file manager or log
/// manager and everything that wants to observe it.
///
/// Internally the counters are a [`StripedCounters`]: each thread increments
/// its own cache-padded stripe, so the hot `fetch_add`s on the lock-free log
/// read path no longer contend on a single line. [`IoStats::snapshot`] sums
/// the stripes, so every recorded event appears in the aggregate exactly
/// once — the totals the paper's Figs. 5–11 are computed from are
/// bit-identical to the previous single-atomic accounting.
#[derive(Debug, Default)]
pub struct IoStats {
    counters: StripedCounters<IO_COUNTERS>,
}

impl IoStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture a point-in-time copy of the counters (exact aggregate: the
    /// sum over all stripes, each event counted exactly once).
    pub fn snapshot(&self) -> IoSnapshot {
        let s = self.counters.sums();
        IoSnapshot {
            page_reads: s[IO_PAGE_READS],
            page_writes: s[IO_PAGE_WRITES],
            log_read_ios: s[IO_LOG_READ_IOS],
            log_cache_hits: s[IO_LOG_CACHE_HITS],
            log_bytes_written: s[IO_LOG_BYTES_WRITTEN],
            log_bytes_scanned: s[IO_LOG_BYTES_SCANNED],
            log_flushes: s[IO_LOG_FLUSHES],
            seq_data_bytes: s[IO_SEQ_DATA_BYTES],
            page_salvages: s[IO_PAGE_SALVAGES],
            corruptions_detected: s[IO_CORRUPTIONS_DETECTED],
            io_retries: s[IO_RETRIES],
        }
    }

    /// Add `n` random page reads.
    #[inline]
    pub fn add_page_reads(&self, n: u64) {
        self.counters.add(IO_PAGE_READS, n);
    }

    /// Add `n` random page writes.
    #[inline]
    pub fn add_page_writes(&self, n: u64) {
        self.counters.add(IO_PAGE_WRITES, n);
    }

    /// Record a log random-read miss (a media I/O).
    #[inline]
    pub fn add_log_read_io(&self) {
        self.counters.incr(IO_LOG_READ_IOS);
    }

    /// Record a log-cache hit.
    #[inline]
    pub fn add_log_cache_hit(&self) {
        self.counters.incr(IO_LOG_CACHE_HITS);
    }

    /// Record `n` bytes appended to the log.
    #[inline]
    pub fn add_log_bytes_written(&self, n: u64) {
        self.counters.add(IO_LOG_BYTES_WRITTEN, n);
    }

    /// Record one physical log flush (a device write barrier). Group commit
    /// coalesces many committers' requests into one of these; the ratio
    /// flushes / commits is the quantity `commitbench` gates on. Flushes are
    /// not part of modeled time — the bytes they move already are.
    #[inline]
    pub fn add_log_flush(&self) {
        self.counters.incr(IO_LOG_FLUSHES);
    }

    /// Record `n` bytes scanned sequentially from the log.
    #[inline]
    pub fn add_log_bytes_scanned(&self, n: u64) {
        self.counters.add(IO_LOG_BYTES_SCANNED, n);
    }

    /// Record `n` bytes of sequential data-file movement (backup/restore).
    #[inline]
    pub fn add_seq_data_bytes(&self, n: u64) {
        self.counters.add(IO_SEQ_DATA_BYTES, n);
    }

    /// Record a successful page salvage: a checksum-bad or torn page was
    /// re-materialized from its per-page log chain instead of failing the
    /// read. The log reads the replay performs are charged separately.
    #[inline]
    pub fn add_page_salvage(&self) {
        self.counters.incr(IO_PAGE_SALVAGES);
    }

    /// Record one detected media corruption (bad log frame CRC, page
    /// checksum/torn mismatch, bad checkpoint anchor) — counted at detection
    /// time, whether or not it was subsequently repaired or routed around.
    #[inline]
    pub fn add_corruption_detected(&self) {
        self.counters.incr(IO_CORRUPTIONS_DETECTED);
    }

    /// Record one retry of a transiently-failed I/O (e.g. EIO answered by a
    /// bounded retry/backoff loop).
    #[inline]
    pub fn add_io_retry(&self) {
        self.counters.incr(IO_RETRIES);
    }
}

/// A point-in-time copy of [`IoStats`], supporting deltas and cost modeling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// See [`IoStats::page_reads`].
    pub page_reads: u64,
    /// See [`IoStats::page_writes`].
    pub page_writes: u64,
    /// See [`IoStats::log_read_ios`].
    pub log_read_ios: u64,
    /// See [`IoStats::log_cache_hits`].
    pub log_cache_hits: u64,
    /// See [`IoStats::log_bytes_written`].
    pub log_bytes_written: u64,
    /// See [`IoStats::log_bytes_scanned`].
    pub log_bytes_scanned: u64,
    /// See [`IoStats::add_log_flush`].
    pub log_flushes: u64,
    /// See [`IoStats::seq_data_bytes`].
    pub seq_data_bytes: u64,
    /// See [`IoStats::add_page_salvage`].
    pub page_salvages: u64,
    /// See [`IoStats::add_corruption_detected`].
    pub corruptions_detected: u64,
    /// See [`IoStats::add_io_retry`].
    pub io_retries: u64,
}

impl IoSnapshot {
    /// Counter-wise `self - earlier` (saturating), for measuring an interval.
    pub fn delta(self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            log_read_ios: self.log_read_ios.saturating_sub(earlier.log_read_ios),
            log_cache_hits: self.log_cache_hits.saturating_sub(earlier.log_cache_hits),
            log_bytes_written: self
                .log_bytes_written
                .saturating_sub(earlier.log_bytes_written),
            log_bytes_scanned: self
                .log_bytes_scanned
                .saturating_sub(earlier.log_bytes_scanned),
            log_flushes: self.log_flushes.saturating_sub(earlier.log_flushes),
            seq_data_bytes: self.seq_data_bytes.saturating_sub(earlier.seq_data_bytes),
            page_salvages: self.page_salvages.saturating_sub(earlier.page_salvages),
            corruptions_detected: self
                .corruptions_detected
                .saturating_sub(earlier.corruptions_detected),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
        }
    }

    /// Modeled elapsed time in microseconds, with data pages on `data` media
    /// and the transaction log on `log` media — the paper's experiments place
    /// these on different devices.
    pub fn modeled_micros(&self, data: &MediaModel, log: &MediaModel) -> u64 {
        data.random_read_time_us(self.page_reads)
            + data.random_write_time_us(self.page_writes)
            + data.seq_read_time_us(self.seq_data_bytes)
            + log.random_read_time_us(self.log_read_ios)
            + log.seq_write_time_us(self.log_bytes_written)
            + log.seq_read_time_us(self.log_bytes_scanned)
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} log_ios={} log_hits={} log_w={}B log_scan={}B log_flushes={} seq={}B",
            self.page_reads,
            self.page_writes,
            self.log_read_ios,
            self.log_cache_hits,
            self.log_bytes_written,
            self.log_bytes_scanned,
            self.log_flushes,
            self.seq_data_bytes
        )?;
        if self.page_salvages + self.corruptions_detected + self.io_retries > 0 {
            write!(
                f,
                " salvages={} corruptions={} retries={}",
                self.page_salvages, self.corruptions_detected, self.io_retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_have_sensible_relative_costs() {
        let sas = MediaModel::sas_hdd();
        let ssd = MediaModel::ssd();
        assert!(sas.random_read_time_us(100) > ssd.random_read_time_us(100));
        // 1 GiB sequential at 100 MiB/s ≈ 10.24 s
        let t = sas.seq_read_time_us(1 << 30);
        assert!((9_000_000..12_000_000).contains(&t), "t={t}");
        assert_eq!(MediaModel::instant().seq_read_time_us(1 << 40), 0);
    }

    #[test]
    fn stats_snapshot_and_delta() {
        let s = IoStats::new();
        s.add_page_reads(3);
        s.add_log_read_io();
        s.add_log_bytes_written(100);
        let a = s.snapshot();
        s.add_page_reads(2);
        s.add_log_cache_hit();
        let b = s.snapshot();
        let d = b.delta(a);
        assert_eq!(d.page_reads, 2);
        assert_eq!(d.log_cache_hits, 1);
        assert_eq!(d.log_read_ios, 0);
        assert_eq!(d.log_bytes_written, 0);
    }

    #[test]
    fn striped_counters_aggregate_exactly() {
        // Hammer the counters from more threads than stripes; the aggregate
        // must equal the number of events exactly — no loss, no double
        // counting, regardless of stripe assignment.
        let s = std::sync::Arc::new(IoStats::new());
        let threads = 2 * crate::stripe::COUNTER_STRIPES;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        s.add_log_cache_hit();
                        s.add_page_reads(2);
                        s.add_log_bytes_written(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        let n = threads as u64 * per_thread;
        assert_eq!(snap.log_cache_hits, n);
        assert_eq!(snap.page_reads, 2 * n);
        assert_eq!(snap.log_bytes_written, 3 * n);
        assert_eq!(snap.log_read_ios, 0);
    }

    #[test]
    fn modeled_time_uses_both_devices() {
        let io = IoSnapshot {
            log_read_ios: 10,
            page_reads: 2,
            ..Default::default()
        };
        let t = io.modeled_micros(&MediaModel::ssd(), &MediaModel::sas_hdd());
        // 10 log stalls on SAS at 5 ms + 2 page reads on SSD at 100 µs
        assert_eq!(t, 50_000 + 200);
    }
}
