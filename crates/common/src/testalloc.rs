//! A counting global allocator for zero-copy / zero-alloc proofs.
//!
//! Several proofs in this workspace assert allocation behaviour the hard
//! way — "a warm side-file hit allocates nothing", "a header-only chain
//! walk allocates nothing per record", "clones-per-hit is exactly 0" — by
//! registering a counting allocator as the binary's `#[global_allocator]`
//! and reading counter deltas around the measured section. The counting
//! logic lives here exactly once so the test and the CI bench gate can
//! never drift apart in what they measure.
//!
//! The type is inert unless a binary opts in:
//!
//! ```ignore
//! use rewind_common::testalloc::{allocations, large_allocations, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//! ```
//!
//! Counters are process-global (there is only one global allocator);
//! callers measure deltas, so absolute values never matter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations at or above this size count as "large" — sized to the
/// engine's 8 KiB page, so every page clone lands in
/// [`large_allocations`]. (`rewind-pagestore` asserts at compile time that
/// its `PAGE_SIZE` matches.)
pub const LARGE_ALLOC_MIN: usize = 8192;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every allocation (and
/// page-sized ones separately). Frees are not counted — the proofs are
/// about allocation pressure, and `realloc` counts as one allocation.
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System` plus relaxed atomic counting — every
// GlobalAlloc contract obligation is discharged by the system allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if layout.size() >= LARGE_ALLOC_MIN {
            LARGE_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr`/`layout` come from `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's arguments unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if new_size >= LARGE_ALLOC_MIN {
            LARGE_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations since process start (meaningful as deltas).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations of [`LARGE_ALLOC_MIN`] bytes or more — page clones, in this
/// engine (meaningful as deltas).
pub fn large_allocations() -> u64 {
    LARGE_ALLOCATIONS.load(Ordering::Relaxed)
}
