//! CRC-32C (Castagnoli) for media integrity checks.
//!
//! Every durable artifact in the engine — log record frames, page images,
//! checkpoint anchor slots — is covered by this checksum so that a bit flip
//! or torn write is *detected* at read time instead of silently decoding
//! into garbage. CRC-32C is the polynomial used by iSCSI, ext4 and InnoDB's
//! redo log (`crc32c`, reflected polynomial `0x82F63B78`); we implement it
//! here as a table-driven software routine so the shims-only build stays
//! dependency-free.

/// Reflected CRC-32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32C of `bytes` (init `!0`, final xor `!0` — the standard `crc32c`
/// convention, matching hardware `SSE4.2 crc32` output).
#[inline]
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Continue a CRC-32C over `bytes`, where `crc` is the finalized checksum of
/// the preceding bytes (pass `0` to start). Lets callers checksum a frame in
/// pieces without concatenating buffers.
#[inline]
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32C check vectors (iSCSI / RFC 3720 appendix B.4).
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn append_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32c(data);
        for split in 0..data.len() {
            let a = crc32c_append(0, &data[..split]);
            let b = crc32c_append(a, &data[split..]);
            assert_eq!(b, whole, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), clean, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
