//! Shared foundation types for the `rewind` engine.
//!
//! This crate hosts everything that every other layer of the system needs but
//! that does not itself contain any storage-engine logic:
//!
//! * strongly-typed identifiers ([`Lsn`], [`PageId`], [`TxnId`], [`ObjectId`]),
//! * the engine-wide [`Error`]/[`Result`] types,
//! * the simulated wall clock ([`SimClock`]) that gives the engine a
//!   deterministic time axis (commit and checkpoint records are stamped with
//!   it, and as-of snapshot creation maps wall-clock time back to an LSN),
//! * device models ([`MediaModel`]) and I/O accounting ([`IoStats`]) used to
//!   reproduce the paper's SSD-vs-SAS experiments on arbitrary hardware,
//! * small binary codec helpers shared by the log and row formats.

pub mod clock;
pub mod codec;
pub mod crc;
pub mod error;
pub mod ids;
pub mod media;
pub mod stripe;
pub mod testalloc;

pub use clock::{SimClock, Timestamp};
pub use crc::{crc32c, crc32c_append};
pub use error::{CorruptionKind, Error, Result};
pub use ids::{Lsn, ObjectId, PageId, SlotId, TxnId};
pub use media::{IoSnapshot, IoStats, MediaModel};
pub use stripe::{thread_stripe, StripedCounters, COUNTER_STRIPES};

/// Shard pick for pid-keyed sharded structures (buffer-pool page table,
/// snapshot side file, prepare gates): Fibonacci multiplicative hash so
/// sequentially-allocated ids spread evenly. `shards` must be a power of
/// two — the pick is a mask.
#[inline]
pub fn shard_index(key: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (shards - 1)
}
