//! Engine-wide error and result types.

use crate::ids::{Lsn, ObjectId, PageId, TxnId};
use crate::Timestamp;
use std::fmt;

/// The engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Every failure the engine can surface.
///
/// The variants are deliberately specific: callers (the TPC-C driver, the
/// snapshot machinery, tests) dispatch on them — e.g. a driver retries on
/// [`Error::Deadlock`] but aborts the run on [`Error::Corruption`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A row or key was not found where one was required.
    KeyNotFound,
    /// An insert collided with an existing key in a unique index.
    DuplicateKey,
    /// A record did not fit in a page and could not be split further
    /// (e.g. a single row larger than a page).
    RecordTooLarge { size: usize, max: usize },
    /// The named table does not exist in the catalog.
    TableNotFound(String),
    /// An object id present in a reference was missing from the catalog.
    ObjectNotFound(ObjectId),
    /// The transaction was chosen as a deadlock victim and rolled back.
    Deadlock(TxnId),
    /// A lock could not be acquired within the configured timeout.
    LockTimeout(TxnId),
    /// The transaction has already been aborted; no further work is allowed.
    TxnAborted(TxnId),
    /// The transaction handle was used after commit/rollback.
    TxnFinished(TxnId),
    /// An as-of time fell outside the configured retention period, or the
    /// log needed for undo has been truncated.
    RetentionExceeded {
        /// Requested point in time.
        requested: Timestamp,
        /// Earliest recoverable point.
        earliest: Timestamp,
    },
    /// A log record needed for undo/redo has been truncated away.
    LogTruncated(Lsn),
    /// A write was attempted against a read-only database (e.g. a snapshot).
    ReadOnly,
    /// The page image failed an integrity check (checksum, id mismatch,
    /// structural invariant).
    Corruption(String),
    /// A page id was out of the database's range or otherwise invalid.
    InvalidPage(PageId),
    /// An argument or configuration value was rejected.
    InvalidArg(String),
    /// The underlying (real or simulated) storage failed.
    Io(String),
    /// The requested snapshot does not exist or was dropped.
    SnapshotNotFound(String),
    /// A restore/repair found the live table's schema incompatible with the
    /// snapshot's (the schema drifted since the split point). Refusing is
    /// the only safe move: copying rows across would silently mis-shape them.
    SchemaDrift {
        /// The table being restored into.
        table: String,
        /// Columns in the snapshot's schema.
        snapshot_columns: usize,
        /// Columns in the live schema.
        live_columns: usize,
        /// What drifted (column count, type, key shape).
        detail: String,
    },
    /// Catch-all for internal invariant violations; always a bug.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyNotFound => write!(f, "key not found"),
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            Error::TableNotFound(name) => write!(f, "table '{name}' not found"),
            Error::ObjectNotFound(id) => write!(f, "object {id} not found in catalog"),
            Error::Deadlock(t) => write!(f, "transaction {t} was chosen as deadlock victim"),
            Error::LockTimeout(t) => write!(f, "transaction {t} timed out waiting for a lock"),
            Error::TxnAborted(t) => write!(f, "transaction {t} is aborted"),
            Error::TxnFinished(t) => write!(f, "transaction {t} has already finished"),
            Error::RetentionExceeded {
                requested,
                earliest,
            } => write!(
                f,
                "requested time {requested} is outside the retention period (earliest {earliest})"
            ),
            Error::LogTruncated(lsn) => {
                write!(f, "log record at {lsn} has been truncated away")
            }
            Error::ReadOnly => write!(f, "database is read-only"),
            Error::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            Error::InvalidPage(p) => write!(f, "invalid page id {p}"),
            Error::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::SnapshotNotFound(name) => write!(f, "snapshot '{name}' not found"),
            Error::SchemaDrift {
                table,
                snapshot_columns,
                live_columns,
                detail,
            } => write!(
                f,
                "schema of table '{table}' drifted since the snapshot \
                 (snapshot {snapshot_columns} columns, live {live_columns}): {detail}"
            ),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::RetentionExceeded {
            requested: Timestamp::from_micros(1_000_000),
            earliest: Timestamp::from_micros(2_000_000),
        };
        let s = e.to_string();
        assert!(s.contains("retention"));
        assert!(Error::Deadlock(TxnId(3)).to_string().contains("T3"));
        assert!(Error::TableNotFound("orders".into())
            .to_string()
            .contains("orders"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
