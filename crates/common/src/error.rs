//! Engine-wide error and result types.

use crate::ids::{Lsn, ObjectId, PageId, TxnId};
use crate::Timestamp;
use std::fmt;

/// The engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// What kind of media damage a [`Error::Corruption`] describes.
///
/// The kind drives the recovery policy: a [`CorruptionKind::LogBlock`] past
/// the durable point truncates the log tail (same semantics as discarding
/// unflushed records); a [`CorruptionKind::PageChecksum`] or
/// [`CorruptionKind::TornPage`] triggers page salvage from the per-page log
/// chain; a [`CorruptionKind::CheckpointAnchor`] falls back to the older of
/// the two anchor slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A log record frame failed its CRC-32C, or its length prefix was
    /// structurally impossible.
    LogBlock,
    /// A page image failed its checksum with a *consistent* trailer — the
    /// whole image is suspect (bit rot, misdirected write).
    PageChecksum,
    /// A page image failed its checksum and the trailer disagrees with the
    /// header pageLSN — the classic torn 8 KiB write (only part of the page
    /// reached the media).
    TornPage,
    /// A checkpoint anchor slot failed its CRC-32C.
    CheckpointAnchor,
    /// A logical/structural invariant was violated (bad slot directory,
    /// impossible record shape, catalog inconsistency) — the bytes may be
    /// intact but their meaning is not.
    Structure,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptionKind::LogBlock => "log-block",
            CorruptionKind::PageChecksum => "page-checksum",
            CorruptionKind::TornPage => "torn-page",
            CorruptionKind::CheckpointAnchor => "checkpoint-anchor",
            CorruptionKind::Structure => "structure",
        };
        f.write_str(s)
    }
}

/// Every failure the engine can surface.
///
/// The variants are deliberately specific: callers (the TPC-C driver, the
/// snapshot machinery, tests) dispatch on them — e.g. a driver retries on
/// [`Error::Deadlock`] but aborts the run on [`Error::Corruption`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A row or key was not found where one was required.
    KeyNotFound,
    /// An insert collided with an existing key in a unique index.
    DuplicateKey,
    /// A record did not fit in a page and could not be split further
    /// (e.g. a single row larger than a page).
    RecordTooLarge { size: usize, max: usize },
    /// The named table does not exist in the catalog.
    TableNotFound(String),
    /// An object id present in a reference was missing from the catalog.
    ObjectNotFound(ObjectId),
    /// The transaction was chosen as a deadlock victim and rolled back.
    Deadlock(TxnId),
    /// A lock could not be acquired within the configured timeout.
    LockTimeout(TxnId),
    /// The transaction has already been aborted; no further work is allowed.
    TxnAborted(TxnId),
    /// The transaction handle was used after commit/rollback.
    TxnFinished(TxnId),
    /// An as-of time fell outside the configured retention period, or the
    /// log needed for undo has been truncated.
    RetentionExceeded {
        /// Requested point in time.
        requested: Timestamp,
        /// Earliest recoverable point.
        earliest: Timestamp,
    },
    /// A log record needed for undo/redo has been truncated away.
    LogTruncated(Lsn),
    /// A write was attempted against a read-only database (e.g. a snapshot).
    ReadOnly,
    /// Media or structural damage was detected (checksum mismatch, torn
    /// write, impossible structure). `kind` selects the degraded-mode
    /// policy; `lsn`/`pid` locate the damage when known.
    Corruption {
        /// What failed — see [`CorruptionKind`] for the policy each implies.
        kind: CorruptionKind,
        /// Log position of the damaged frame, when the damage is in the log.
        lsn: Option<Lsn>,
        /// Page id of the damaged page, when the damage is in the data file.
        pid: Option<PageId>,
        /// Human-readable description.
        detail: String,
    },
    /// A page id was out of the database's range or otherwise invalid.
    InvalidPage(PageId),
    /// An argument or configuration value was rejected.
    InvalidArg(String),
    /// The underlying (real or simulated) storage failed.
    Io(String),
    /// The requested snapshot does not exist or was dropped.
    SnapshotNotFound(String),
    /// A restore/repair found the live table's schema incompatible with the
    /// snapshot's (the schema drifted since the split point). Refusing is
    /// the only safe move: copying rows across would silently mis-shape them.
    SchemaDrift {
        /// The table being restored into.
        table: String,
        /// Columns in the snapshot's schema.
        snapshot_columns: usize,
        /// Columns in the live schema.
        live_columns: usize,
        /// What drifted (column count, type, key shape).
        detail: String,
    },
    /// Catch-all for internal invariant violations; always a bug.
    Internal(String),
}

impl Error {
    /// Structural corruption with no media location — the migration-friendly
    /// constructor used by logical integrity checks (bad slot directory,
    /// impossible record shape, catalog inconsistency).
    #[inline]
    pub fn corruption(detail: impl Into<String>) -> Error {
        Error::Corruption {
            kind: CorruptionKind::Structure,
            lsn: None,
            pid: None,
            detail: detail.into(),
        }
    }

    /// A log frame failed its CRC or length check at `lsn`.
    #[inline]
    pub fn log_corruption(lsn: Lsn, detail: impl Into<String>) -> Error {
        Error::Corruption {
            kind: CorruptionKind::LogBlock,
            lsn: Some(lsn),
            pid: None,
            detail: detail.into(),
        }
    }

    /// A page image failed its checksum/torn-write check.
    #[inline]
    pub fn page_corruption(kind: CorruptionKind, pid: PageId, detail: impl Into<String>) -> Error {
        Error::Corruption {
            kind,
            lsn: None,
            pid: Some(pid),
            detail: detail.into(),
        }
    }

    /// A checkpoint anchor slot failed its CRC.
    #[inline]
    pub fn anchor_corruption(detail: impl Into<String>) -> Error {
        Error::Corruption {
            kind: CorruptionKind::CheckpointAnchor,
            lsn: None,
            pid: None,
            detail: detail.into(),
        }
    }

    /// The [`CorruptionKind`] if this is a corruption error.
    #[inline]
    pub fn corruption_kind(&self) -> Option<CorruptionKind> {
        match self {
            Error::Corruption { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// True for failures worth a bounded retry (the device may answer on the
    /// next attempt): transient I/O errors, but never corruption — re-reading
    /// a checksum-bad page returns the same bad bytes.
    #[inline]
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Io(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyNotFound => write!(f, "key not found"),
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            Error::TableNotFound(name) => write!(f, "table '{name}' not found"),
            Error::ObjectNotFound(id) => write!(f, "object {id} not found in catalog"),
            Error::Deadlock(t) => write!(f, "transaction {t} was chosen as deadlock victim"),
            Error::LockTimeout(t) => write!(f, "transaction {t} timed out waiting for a lock"),
            Error::TxnAborted(t) => write!(f, "transaction {t} is aborted"),
            Error::TxnFinished(t) => write!(f, "transaction {t} has already finished"),
            Error::RetentionExceeded {
                requested,
                earliest,
            } => write!(
                f,
                "requested time {requested} is outside the retention period (earliest {earliest})"
            ),
            Error::LogTruncated(lsn) => {
                write!(f, "log record at {lsn} has been truncated away")
            }
            Error::ReadOnly => write!(f, "database is read-only"),
            Error::Corruption {
                kind,
                lsn,
                pid,
                detail,
            } => {
                write!(f, "corruption detected [{kind}")?;
                if let Some(lsn) = lsn {
                    write!(f, " at {lsn}")?;
                }
                if let Some(pid) = pid {
                    write!(f, " on {pid}")?;
                }
                write!(f, "]: {detail}")
            }
            Error::InvalidPage(p) => write!(f, "invalid page id {p}"),
            Error::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::SnapshotNotFound(name) => write!(f, "snapshot '{name}' not found"),
            Error::SchemaDrift {
                table,
                snapshot_columns,
                live_columns,
                detail,
            } => write!(
                f,
                "schema of table '{table}' drifted since the snapshot \
                 (snapshot {snapshot_columns} columns, live {live_columns}): {detail}"
            ),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::RetentionExceeded {
            requested: Timestamp::from_micros(1_000_000),
            earliest: Timestamp::from_micros(2_000_000),
        };
        let s = e.to_string();
        assert!(s.contains("retention"));
        assert!(Error::Deadlock(TxnId(3)).to_string().contains("T3"));
        assert!(Error::TableNotFound("orders".into())
            .to_string()
            .contains("orders"));
    }

    #[test]
    fn corruption_display_carries_kind_and_location() {
        let e = Error::log_corruption(Lsn(4096), "crc mismatch");
        let s = e.to_string();
        assert!(s.contains("log-block"), "{s}");
        assert!(s.contains("crc mismatch"), "{s}");
        assert_eq!(e.corruption_kind(), Some(CorruptionKind::LogBlock));
        let e = Error::page_corruption(CorruptionKind::TornPage, PageId(7), "trailer mismatch");
        assert!(e.to_string().contains("torn-page"));
        assert_eq!(e.corruption_kind(), Some(CorruptionKind::TornPage));
        assert!(Error::corruption("bad slot dir")
            .to_string()
            .contains("structure"));
        assert!(!Error::corruption("x").is_transient());
        assert!(Error::Io("eio".into()).is_transient());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
