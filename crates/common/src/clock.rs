//! The simulated wall clock.
//!
//! The paper maps wall-clock time to LSNs in two places: commit and checkpoint
//! records carry a wall-clock stamp, and `CREATE DATABASE ... AS OF '<time>'`
//! translates the requested time into a SplitLSN by scanning them (§5.1). To
//! make that machinery deterministic and testable, the engine never reads the
//! OS clock: it reads a [`SimClock`] that workload drivers advance explicitly
//! (optionally at a fixed rate per commit). A benchmark that wants "50 minutes
//! of log" simply advances the clock while it runs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point on the simulated time axis, in microseconds since database
/// creation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Time zero: the instant the database was created.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable time.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        Timestamp(m * 60_000_000)
    }

    /// Raw microseconds since time zero.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration in microseconds.
    #[inline]
    pub fn plus_micros(self, us: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(us))
    }

    /// Saturating subtraction of a duration in microseconds.
    #[inline]
    pub fn minus_micros(self, us: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(us))
    }

    /// Duration in microseconds since `earlier`; saturates at zero.
    #[inline]
    pub fn micros_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// The engine's monotonically advancing simulated wall clock.
///
/// Cloning the handle shares the underlying clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        let c = Self::new();
        c.micros.store(t.as_micros(), Ordering::SeqCst);
        c
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }

    /// Advance the clock by `us` microseconds and return the new time.
    #[inline]
    pub fn advance_micros(&self, us: u64) -> Timestamp {
        Timestamp(self.micros.fetch_add(us, Ordering::SeqCst) + us)
    }

    /// Advance the clock by whole seconds.
    pub fn advance_secs(&self, s: u64) -> Timestamp {
        self.advance_micros(s * 1_000_000)
    }

    /// Advance the clock by whole minutes.
    pub fn advance_mins(&self, m: u64) -> Timestamp {
        self.advance_micros(m * 60_000_000)
    }

    /// Move the clock forward to `t`. Times in the past are ignored — the
    /// clock never goes backwards.
    pub fn advance_to(&self, t: Timestamp) {
        self.micros.fetch_max(t.as_micros(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance_micros(5);
        c.advance_secs(1);
        assert_eq!(c.now().as_micros(), 1_000_005);
        c.advance_to(Timestamp::from_micros(10)); // in the past: ignored
        assert_eq!(c.now().as_micros(), 1_000_005);
        c.advance_to(Timestamp::from_secs(2));
        assert_eq!(c.now().as_micros(), 2_000_000);
    }

    #[test]
    fn handles_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_mins(1);
        assert_eq!(b.now(), Timestamp::from_mins(1));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t.plus_micros(500_000), Timestamp::from_millis(10_500));
        assert_eq!(t.minus_micros(20_000_000), Timestamp::ZERO);
        assert_eq!(t.micros_since(Timestamp::from_secs(4)), 6_000_000);
        assert_eq!(Timestamp::from_mins(2), Timestamp::from_secs(120));
    }
}
