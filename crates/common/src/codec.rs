//! Minimal binary codec helpers.
//!
//! The log-record format, page layouts and the row codec all need byte-stable
//! little-endian serialization with explicit bounds checking (a half-written
//! log tail must fail to decode, not panic). These helpers are the single
//! shared implementation.

use crate::{Error, Result};

/// Sequential writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// New writer appending to an existing buffer (its contents are kept).
    /// Lets callers serialize into a reusable scratch buffer without an
    /// allocation per record.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    /// Consume the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_raw(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Sequential bounds-checked reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// New reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed all input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption(format!(
                "decode underrun: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(array_at(self.take(2)?, 0)))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(array_at(self.take(4)?, 0)))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(array_at(self.take(8)?, 0)))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(array_at(self.take(8)?, 0)))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(array_at(self.take(8)?, 0)))
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| Error::corruption("invalid utf-8 string"))
    }
}

/// Copy `N` bytes at `off` out of `buf` into an array — the shared core
/// of every fixed-width read. Infallible by construction (no
/// `try_into().unwrap()`): the subslice is exactly `N` long, so
/// `copy_from_slice` cannot mismatch; out-of-range offsets trip the slice
/// bounds check, which is the caller's contract everywhere this is used
/// (frame and anchor readers length-check before decoding).
#[inline]
pub fn array_at<const N: usize>(buf: &[u8], off: usize) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(&buf[off..off + N]);
    a
}

/// Read a little-endian `u16` at a fixed offset in a buffer (page headers).
#[inline]
pub fn read_u16_at(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(array_at(buf, off))
}

/// Write a little-endian `u16` at a fixed offset in a buffer.
#[inline]
pub fn write_u16_at(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` at a fixed offset in a buffer.
#[inline]
pub fn read_u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(array_at(buf, off))
}

/// Write a little-endian `u32` at a fixed offset in a buffer.
#[inline]
pub fn write_u32_at(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64` at a fixed offset in a buffer.
#[inline]
pub fn read_u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(array_at(buf, off))
}

/// Write a little-endian `u64` at a fixed offset in a buffer.
#[inline]
pub fn write_u64_at(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(1.5);
        w.put_bytes(b"hello");
        w.put_str("world");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world");
        assert!(r.is_exhausted());
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[4, 0, 0, 0, 1]); // claims 4 bytes, has 1
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn fixed_offset_helpers() {
        let mut buf = vec![0u8; 32];
        write_u16_at(&mut buf, 3, 777);
        write_u32_at(&mut buf, 8, 123_456);
        write_u64_at(&mut buf, 16, u64::MAX / 7);
        assert_eq!(read_u16_at(&buf, 3), 777);
        assert_eq!(read_u32_at(&buf, 8), 123_456);
        assert_eq!(read_u64_at(&buf, 16), u64::MAX / 7);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
