//! Generic striped monotonic counters.
//!
//! Several hot paths in the engine (the lock-free log read path, the buffer
//! pool's hit path) bump counters on every access. A single shared atomic
//! would bounce its cache line between every core touching it, so the
//! counters are *striped*: [`COUNTER_STRIPES`] cache-line-isolated copies,
//! each thread incrementing only its own stripe (a fixed round-robin
//! assignment for the thread's lifetime). [`StripedCounters::sums`] adds the
//! stripes back up, so every recorded event appears in the aggregate exactly
//! once — striping moves contention, never accuracy.
//!
//! This helper extracts the idiom that `IoStats` (wal/file I/O accounting)
//! and the buffer pool's `PoolStats` previously re-implemented
//! token-for-token: the stripe constant, the `#[repr(align(128))]` padded
//! stripe struct, the thread-local stripe pick, and the sum-on-snapshot.
//! Both now wrap a `StripedCounters<N>` with named accessors; new striped
//! statistics should do the same rather than re-deriving the pattern.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter stripes. Power of two so the stripe pick is a mask; a
/// thread's increments are uncontended unless more than this many threads
/// are live at once (then stripes are shared, still correctly).
pub const COUNTER_STRIPES: usize = 16;

/// One cache-line-isolated stripe of `N` counters. The alignment keeps two
/// stripes from sharing a cache line, so threads incrementing different
/// stripes never bounce a line between cores.
#[derive(Debug)]
#[repr(align(128))]
struct Stripe<const N: usize>([AtomicU64; N]);

impl<const N: usize> Stripe<N> {
    fn new() -> Self {
        Stripe(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

static NEXT_STRIPE_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Each thread gets a fixed stripe index for its lifetime (round-robin
    /// assignment). One assignment is shared by every `StripedCounters`
    /// instance — the stripe pick is a property of the thread, not of any
    /// particular counter set.
    static THREAD_STRIPE: usize =
        NEXT_STRIPE_SEED.fetch_add(1, Ordering::Relaxed) as usize & (COUNTER_STRIPES - 1);
}

/// The calling thread's stripe index. Public so striped structures built
/// *outside* this module (the observability layer's histograms and event
/// ring) share the same thread→stripe assignment as the counters — one
/// thread always lands on one stripe, whatever it is recording into.
#[inline]
pub fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

/// `N` monotonically increasing `u64` counters, striped per thread.
///
/// Increments are `Relaxed` — these are statistics, not synchronization —
/// and [`StripedCounters::sums`] is an exact aggregate: the sum over all
/// stripes counts every recorded event exactly once. (Like any multi-word
/// statistics read, a snapshot taken while writers are active is not an
/// atomic cut across counters; quiesce first when exactness across counters
/// matters, as the serial-trace accounting tests do.)
#[derive(Debug)]
pub struct StripedCounters<const N: usize> {
    stripes: [Stripe<N>; COUNTER_STRIPES],
}

impl<const N: usize> StripedCounters<N> {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        StripedCounters {
            stripes: std::array::from_fn(|_| Stripe::new()),
        }
    }

    /// Add `n` to counter `counter` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, counter: usize, n: u64) {
        self.stripes[thread_stripe()].0[counter].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to counter `counter`.
    #[inline]
    pub fn incr(&self, counter: usize) {
        self.add(counter, 1);
    }

    /// Raise counter `counter` on the calling thread's stripe to at least
    /// `v` (a striped running maximum; read back with
    /// [`StripedCounters::max_of`]). Mixing `add` and `max_up` on the same
    /// counter index is a caller bug — `sums` would add stripe maxima.
    #[inline]
    pub fn max_up(&self, counter: usize, v: u64) {
        self.stripes[thread_stripe()].0[counter].fetch_max(v, Ordering::Relaxed);
    }

    /// Aggregate of a [`StripedCounters::max_up`]-maintained counter: the
    /// maximum over all stripes.
    pub fn max_of(&self, counter: usize) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0[counter].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Exact aggregate of every counter (sum over stripes).
    pub fn sums(&self) -> [u64; N] {
        let mut out = [0u64; N];
        for stripe in &self.stripes {
            for (o, c) in out.iter_mut().zip(stripe.0.iter()) {
                *o += c.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Exact aggregate of one counter.
    pub fn sum(&self, counter: usize) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0[counter].load(Ordering::Relaxed))
            .sum()
    }
}

impl<const N: usize> Default for StripedCounters<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_is_exact_across_more_threads_than_stripes() {
        let c = std::sync::Arc::new(StripedCounters::<3>::new());
        let threads = 2 * COUNTER_STRIPES;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.incr(0);
                        c.add(1, 2);
                        c.add(2, 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = threads as u64 * per_thread;
        assert_eq!(c.sums(), [n, 2 * n, 3 * n]);
        assert_eq!(c.sum(2), 3 * n);
    }

    #[test]
    fn stripes_are_cache_line_isolated() {
        assert!(std::mem::align_of::<Stripe<1>>() >= 128);
        assert!(std::mem::size_of::<Stripe<1>>() >= 128);
        // a stripe never spans into its neighbour's line
        assert_eq!(std::mem::size_of::<Stripe<8>>() % 128, 0);
    }
}
