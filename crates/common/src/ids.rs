//! Strongly-typed identifiers used across the engine.
//!
//! All identifiers are thin newtypes over integers with explicit sentinel
//! values, so that "no LSN" or "no page" can never be confused with a real
//! one by accident.

use std::fmt;

/// A log sequence number.
///
/// As in SQL Server, an [`Lsn`] is a *byte offset into the virtual log
/// stream*: record ordering, "amount of log between two points" and log-space
/// accounting all fall out of plain integer arithmetic. The null LSN (`0`)
/// sorts before every real record; real records start at offset
/// [`Lsn::FIRST`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN: "no record". Per-page and per-transaction chains are
    /// terminated with this value.
    pub const NULL: Lsn = Lsn(0);
    /// Offset of the first record ever written to a log stream.
    pub const FIRST: Lsn = Lsn(8);
    /// Largest representable LSN; used as an "infinitely far in the future"
    /// bound when scanning.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Whether this is the null LSN.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Whether this LSN refers to an actual record (i.e. is not null).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// Byte distance from `earlier` to `self`; saturates at zero.
    #[inline]
    pub fn bytes_since(self, earlier: Lsn) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Exclusive scan end for a scan that must *include* a record starting
    /// at `self`: one past this LSN, saturating at [`Lsn::MAX`].
    ///
    /// Scan ranges in this engine are half-open `[from, to)`, so including
    /// a bound record means passing `bound.scan_end()`. The naive
    /// `Lsn(bound.0 + 1)` overflows to `Lsn::NULL` when the bound is
    /// `Lsn::MAX` (the "no bound" sentinel), turning an unbounded scan
    /// into an empty one; saturation keeps the sentinel meaning "to the
    /// end of the log".
    #[inline]
    pub fn scan_end(self) -> Lsn {
        Lsn(self.0.saturating_add(1))
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Lsn(NULL)")
        } else {
            write!(f, "Lsn({})", self.0)
        }
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an 8 KiB database page. Page ids are dense indexes into the
/// database file: page `n` lives at byte offset `n * PAGE_SIZE`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (e.g. the right-sibling of the last leaf).
    pub const INVALID: PageId = PageId(u64::MAX);
    /// The boot page: fixed location of database-wide metadata.
    pub const BOOT: PageId = PageId(0);

    /// Whether this id refers to a real page.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != u64::MAX
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "P{}", self.0)
        } else {
            write!(f, "P(INVALID)")
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a transaction. Ids are allocated monotonically by the
/// transaction manager and are never reused within the life of a database.
/// The default is [`TxnId::NONE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Sentinel meaning "no transaction" (system-internal page writes).
    pub const NONE: TxnId = TxnId(0);

    /// Whether this id refers to a real transaction.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a catalog object (table, index, or system table).
///
/// Object ids both name rows in the system catalog and tag every data page
/// with its owner, which is what lets the lock manager key row locks by
/// `(object, key)` and lets integrity checks catch stray pages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Sentinel meaning "no object" (free pages, allocation maps).
    pub const NONE: ObjectId = ObjectId(0);
    /// The `sys_tables` system table.
    pub const SYS_TABLES: ObjectId = ObjectId(1);
    /// The `sys_columns` system table.
    pub const SYS_COLUMNS: ObjectId = ObjectId(2);
    /// The `sys_indexes` system table.
    pub const SYS_INDEXES: ObjectId = ObjectId(3);
    /// First id handed out to user objects.
    pub const FIRST_USER: ObjectId = ObjectId(100);

    /// Whether this is a system-catalog object.
    #[inline]
    pub fn is_system(self) -> bool {
        self.0 != 0 && self.0 < Self::FIRST_USER.0
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obj{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Index of a row slot within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u16);

impl SlotId {
    /// Slot index as a usize, for indexing into slot directories.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_sentinels() {
        assert!(Lsn::NULL < Lsn::FIRST);
        assert!(Lsn::FIRST < Lsn::MAX);
        assert!(Lsn::NULL.is_null());
        assert!(!Lsn::NULL.is_valid());
        assert!(Lsn(42).is_valid());
    }

    #[test]
    fn lsn_byte_distance() {
        assert_eq!(Lsn(100).bytes_since(Lsn(40)), 60);
        assert_eq!(Lsn(40).bytes_since(Lsn(100)), 0);
        assert_eq!(Lsn(40).bytes_since(Lsn::NULL), 40);
    }

    #[test]
    fn lsn_scan_end_saturates_at_max() {
        assert_eq!(Lsn(100).scan_end(), Lsn(101));
        // The "no bound" sentinel must stay a no-bound sentinel: +1 on
        // u64::MAX would wrap to 0 (= Lsn::NULL) and scan nothing.
        assert_eq!(Lsn::MAX.scan_end(), Lsn::MAX);
        assert_eq!(Lsn(u64::MAX - 1).scan_end(), Lsn::MAX);
    }

    #[test]
    fn page_id_sentinels() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId::BOOT.is_valid());
        assert_eq!(format!("{}", PageId(7)), "P7");
    }

    #[test]
    fn txn_id_sentinels() {
        assert!(!TxnId::NONE.is_valid());
        assert!(TxnId(1).is_valid());
    }

    #[test]
    fn object_id_classes() {
        assert!(ObjectId::SYS_TABLES.is_system());
        assert!(ObjectId::SYS_INDEXES.is_system());
        assert!(!ObjectId::FIRST_USER.is_system());
        assert!(!ObjectId::NONE.is_system());
    }
}
