//! Offline shim for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: `Strategy` with
//! `prop_map`, `any::<T>()`, `Just`, ranges and `&str` character-class
//! patterns as strategies, `proptest::collection::vec`, the `prop_oneof!`
//! (optionally weighted), `proptest!`, `prop_assert!` and `prop_assert_eq!`
//! macros, `ProptestConfig` and `TestCaseError`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' debug representation (cases are generated from a
//! fixed per-test seed, so failures reproduce deterministically).

use rand::{Rng, RngCore, SeedableRng, SmallRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Derive a per-test generator from the test's name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

/// Error type property-test bodies may return to fail a case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias used by real proptest for non-shrinkable failures.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`cases` is the number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
    /// Accepted for API compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T: fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
}

/// `&str` character-class patterns like `"[a-z\\x00]{0,12}"` act as string
/// strategies (the subset of proptest's regex support the tests use: a
/// single class with ranges/escapes and a `{lo,hi}` repetition count).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let c = if c == '\\' {
            match it.next()? {
                'x' => {
                    let h1 = it.next()?;
                    let h2 = it.next()?;
                    let v = u8::from_str_radix(&format!("{h1}{h2}"), 16).ok()?;
                    v as char
                }
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        if it.peek() == Some(&'-') {
            it.next();
            let end = it.next()?;
            for v in c as u32..=end as u32 {
                chars.push(char::from_u32(v)?);
            }
        } else {
            chars.push(c);
        }
    }
    let (lo, hi) = if rest.is_empty() {
        (1, 1)
    } else {
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Build a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{fmt, Strategy, TestRng};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The proptest prelude: everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Build a strategy choosing among arms, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r, file!(), line!()
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let dbg = format!(concat!($(stringify!($arg), " = {:?} ",)+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}\ninputs: {dbg}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-z\\x00]{0,12}").unwrap();
        assert_eq!(chars.len(), 27);
        assert!(chars.contains(&'\0') && chars.contains(&'m'));
        assert_eq!((lo, hi), (0, 12));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn vec_sizes_respect_bounds(v in proptest::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_honours_weights(x in prop_oneof![9 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn strings_match_class(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4, "got {:?}", s);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn tuples_and_maps_compose(p in (any::<u16>(), 0..10u8).prop_map(|(a, b)| (a, b + 1))) {
            prop_assert!(p.1 >= 1 && p.1 <= 10);
        }
    }
}
