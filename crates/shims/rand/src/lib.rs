//! Offline shim for the `rand` crate.
//!
//! Implements the subset the workspace uses — `SmallRng`, `SeedableRng`,
//! and the `Rng` extension methods `gen`, `gen_bool`, `gen_range` — on top
//! of the xoshiro256++ generator. Deterministic for a given seed, which is
//! all the workload drivers and tests require; no claim of statistical
//! quality beyond that.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::SmallRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type a generator can produce uniformly ("standard" distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy {
    /// Sample in `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that can be sampled uniformly, producing `T`. The output is a
/// trait type parameter with blanket impls over `Range<T>` (as in real
/// rand), so the expected result type flows backward into untyped range
/// literals like `0..10`.
pub trait SampleRange<T> {
    /// Sample one value in the range; panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Sample uniformly from `range`; panics if empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(1..=10i64);
            assert!((1..=10).contains(&v));
            let f = r.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&f));
            let n = r.gen_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        let mut r = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_produces_each_width() {
        let mut r = SmallRng::seed_from_u64(1);
        let _: u32 = r.gen();
        let _: u64 = r.gen();
        let _: bool = r.gen();
    }
}
