//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! provides the small API subset the engine uses — `Mutex`, `RwLock` and
//! `Condvar` with parking_lot's poison-free signatures — implemented over
//! `std::sync`. Poisoned locks are recovered transparently (`into_inner`),
//! matching parking_lot's behaviour of not propagating panics as poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion lock with parking_lot's poison-free API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().unwrap()
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` API.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard holds lock");
        let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let dur = deadline.saturating_duration_since(Instant::now());
        let g = guard.0.take().expect("guard holds lock");
        let (g, res) = match self.0.wait_timeout(g, dur) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
