//! Offline shim for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a simple warmup + timed-batch loop printing ns/iter —
//! enough for relative comparisons in CI logs, without statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall time per benchmark measurement.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Target wall time for warmup.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: estimate cost and let caches settle.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((MEASURE_TARGET.as_nanos() as f64 / est.max(1.0)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
        self.iters = batch;
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench: {:<48} {:>14.1} ns/iter ({} iters)",
        label, b.ns_per_iter, b.iters
    );
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Register and run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim takes a fixed sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
