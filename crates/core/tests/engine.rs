//! End-to-end engine tests: DDL, DML, transactions, rollback, crash
//! recovery, as-of snapshots, dropped-table recovery, retention.

use rewind_core::{
    restore_table_from_snapshot, Column, DataType, Database, DbConfig, Error, Schema, Timestamp,
    Value,
};
use std::time::Duration;

fn small_config() -> DbConfig {
    DbConfig {
        buffer_pages: 256,
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    }
}

fn items_schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("name", DataType::Str),
            Column::new("qty", DataType::I64),
        ],
        &["id"],
    )
    .unwrap()
}

fn item(id: u64, name: &str, qty: i64) -> Vec<Value> {
    vec![Value::U64(id), Value::str(name), Value::I64(qty)]
}

fn setup_items(db: &Database, n: u64) {
    db.with_txn(|txn| {
        db.create_table(txn, "items", items_schema())?;
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        for i in 0..n {
            db.insert(txn, "items", &item(i, &format!("item-{i}"), i as i64 * 10))?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn basic_crud_roundtrip() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 100);

    db.with_txn(|txn| {
        let row = db.get(txn, "items", &[Value::U64(42)])?.unwrap();
        assert_eq!(row, item(42, "item-42", 420));
        db.update(txn, "items", &item(42, "renamed", -1))?;
        db.delete(txn, "items", &[Value::U64(43)])?;
        Ok(())
    })
    .unwrap();

    db.with_txn(|txn| {
        assert_eq!(
            db.get(txn, "items", &[Value::U64(42)])?.unwrap(),
            item(42, "renamed", -1)
        );
        assert_eq!(db.get(txn, "items", &[Value::U64(43)])?, None);
        let rows = db.scan_between(txn, "items", &[Value::U64(40)], &[Value::U64(45)])?;
        assert_eq!(rows.len(), 5); // 40,41,42,44,45
        Ok(())
    })
    .unwrap();
    assert_eq!(db.count_approx("items").unwrap(), 99);
}

#[test]
fn duplicate_and_missing_are_reported() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 5);
    let txn = db.begin();
    assert!(matches!(
        db.insert(&txn, "items", &item(3, "dup", 0)),
        Err(Error::DuplicateKey)
    ));
    db.rollback(txn).unwrap();
    let txn = db.begin();
    assert!(matches!(
        db.delete(&txn, "items", &[Value::U64(99)]),
        Err(Error::KeyNotFound)
    ));
    assert!(matches!(
        db.get(&txn, "missing", &[Value::U64(1)]),
        Err(Error::TableNotFound(_))
    ));
    db.rollback(txn).unwrap();
}

#[test]
fn secondary_index_scans() {
    let db = Database::create(small_config()).unwrap();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "orders",
            Schema::new(
                vec![
                    Column::new("o_id", DataType::U64),
                    Column::new("c_id", DataType::U64),
                    Column::new("amount", DataType::I64),
                ],
                &["o_id"],
            )
            .unwrap(),
        )?;
        for i in 0..200u64 {
            db.insert(
                txn,
                "orders",
                &[Value::U64(i), Value::U64(i % 10), Value::I64(i as i64)],
            )?;
        }
        db.create_index(txn, "orders", "by_customer", &["c_id"])?;
        Ok(())
    })
    .unwrap();

    db.with_txn(|txn| {
        let rows = db.scan_index_prefix(txn, "orders", "by_customer", &[Value::U64(7)], 1000)?;
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r[1] == Value::U64(7)));
        // most recent (largest o_id) order of customer 7
        let last = db.last_by_index_prefix(txn, "orders", "by_customer", &[Value::U64(7)])?;
        assert_eq!(last.unwrap()[0], Value::U64(197));
        // index maintenance on update
        db.update(
            txn,
            "orders",
            &[Value::U64(197), Value::U64(3), Value::I64(0)],
        )?;
        let last = db.last_by_index_prefix(txn, "orders", "by_customer", &[Value::U64(7)])?;
        assert_eq!(last.unwrap()[0], Value::U64(187));
        Ok(())
    })
    .unwrap();
}

#[test]
fn rollback_restores_everything() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 50);
    let before = db.with_txn(|txn| db.scan_all(txn, "items")).unwrap();

    let txn = db.begin();
    for i in 0..50u64 {
        db.update(&txn, "items", &item(i, "SCRIBBLE", 0)).unwrap();
    }
    for i in 50..500u64 {
        db.insert(&txn, "items", &item(i, &format!("new-{i}"), 1))
            .unwrap(); // forces splits
    }
    for i in (0..50u64).step_by(3) {
        db.delete(&txn, "items", &[Value::U64(i)]).unwrap();
    }
    db.rollback(txn).unwrap();

    let after = db.with_txn(|txn| db.scan_all(txn, "items")).unwrap();
    assert_eq!(before, after, "rollback must restore the exact pre-image");
}

#[test]
fn rollback_of_ddl_undoes_catalog_and_allocation() {
    let db = Database::create(small_config()).unwrap();
    let pages_before = db.stats().unwrap().allocated_pages;

    let txn = db.begin();
    db.create_table(&txn, "temp", items_schema()).unwrap();
    db.insert(&txn, "temp", &item(1, "x", 1)).unwrap();
    db.rollback(txn).unwrap();

    assert!(matches!(db.table("temp"), Err(Error::TableNotFound(_))));
    assert_eq!(
        db.stats().unwrap().allocated_pages,
        pages_before,
        "root page freed"
    );
    // name reusable afterwards
    db.with_txn(|txn| {
        db.create_table(txn, "temp", items_schema())?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn crash_recovery_preserves_committed_and_discards_uncommitted() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 200);
    db.checkpoint().unwrap();

    // committed after the checkpoint
    db.with_txn(|txn| {
        db.update(txn, "items", &item(7, "committed", 777))?;
        Ok(())
    })
    .unwrap();

    // in flight at crash time
    let loser = db.begin();
    db.update(&loser, "items", &item(8, "uncommitted", 888))
        .unwrap();
    for i in 1000..1400u64 {
        db.insert(&loser, "items", &item(i, "phantom", 0)).unwrap();
    }
    std::mem::forget(loser); // vanish without commit/rollback: crash owns it

    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();

    db.with_txn(|txn| {
        assert_eq!(
            db.get(txn, "items", &[Value::U64(7)])?.unwrap(),
            item(7, "committed", 777)
        );
        assert_eq!(
            db.get(txn, "items", &[Value::U64(8)])?.unwrap(),
            item(8, "item-8", 80)
        );
        assert_eq!(db.get(txn, "items", &[Value::U64(1100)])?, None);
        Ok(())
    })
    .unwrap();
    assert_eq!(db.count_approx("items").unwrap(), 200);

    // the recovered database keeps working
    db.with_txn(|txn| {
        db.insert(txn, "items", &item(9999, "post-recovery", 1))?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn repeated_crashes_converge() {
    let mut db = Database::create(small_config()).unwrap();
    setup_items(&db, 50);
    for round in 0..3 {
        let txn = db.begin();
        for i in 0..50u64 {
            db.update(
                &txn,
                "items",
                &item(i, &format!("round-{round}"), round as i64),
            )
            .unwrap();
        }
        std::mem::forget(txn);
        let artifacts = db.simulate_crash();
        db = Database::recover(artifacts).unwrap();
        db.with_txn(|txn| {
            assert_eq!(
                db.get(txn, "items", &[Value::U64(0)])?.unwrap(),
                item(0, "item-0", 0)
            );
            Ok(())
        })
        .unwrap();
    }
    assert_eq!(db.count_approx("items").unwrap(), 50);
}

#[test]
fn asof_snapshot_sees_the_past() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 100);
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();

    // t1: original state
    let t1 = db.clock().now();
    db.clock().advance_secs(10);

    db.with_txn(|txn| {
        for i in 0..100u64 {
            db.update(txn, "items", &item(i, "overwritten", -(i as i64)))?;
        }
        for i in 100..150u64 {
            db.insert(txn, "items", &item(i, "late", 0))?;
        }
        db.delete(txn, "items", &[Value::U64(5)])?;
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(10);

    let snap = db.create_snapshot_asof("past", t1).unwrap();
    snap.wait_undo_complete();
    let info = snap.table("items").unwrap();
    assert_eq!(
        snap.count(&info).unwrap(),
        100,
        "as-of sees pre-insert row count"
    );
    let row = snap.get(&info, &[Value::U64(42)]).unwrap().unwrap();
    assert_eq!(row, item(42, "item-42", 420), "as-of sees the old values");
    assert!(snap.get(&info, &[Value::U64(120)]).unwrap().is_none());
    assert!(
        snap.get(&info, &[Value::U64(5)]).unwrap().is_some(),
        "deleted row visible as-of"
    );

    // live database unaffected
    db.with_txn(|txn| {
        assert_eq!(
            db.get(txn, "items", &[Value::U64(42)])?.unwrap(),
            item(42, "overwritten", -42)
        );
        Ok(())
    })
    .unwrap();

    // lazy preparation: only touched pages entered the side file
    assert!(snap.side_pages() > 0);
    let stats = snap.stats();
    assert!(stats.pages_prepared > 0);
    db.drop_snapshot("past").unwrap();
}

#[test]
fn snapshot_gates_on_inflight_transaction() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 20);
    db.clock().advance_secs(5);

    // leave a transaction in flight across the split point
    let inflight = db.begin();
    db.update(&inflight, "items", &item(3, "dirty", -3))
        .unwrap();
    db.clock().advance_secs(5);
    // a committed marker after the in-flight update, so the split lands
    // between them
    db.with_txn(|txn| {
        db.insert(txn, "items", &item(900, "marker", 1))?;
        Ok(())
    })
    .unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(5);

    let snap = db.create_snapshot_asof("gated", t).unwrap();
    // the snapshot must NOT show the uncommitted update, even though it was
    // logged before the split
    let info = snap.table("items").unwrap();
    let row = snap.get(&info, &[Value::U64(3)]).unwrap().unwrap();
    assert_eq!(
        row,
        item(3, "item-3", 30),
        "uncommitted change invisible as-of"
    );
    assert_eq!(
        snap.get(&info, &[Value::U64(900)]).unwrap().unwrap(),
        item(900, "marker", 1)
    );
    snap.wait_undo_complete();

    db.rollback(inflight).unwrap();
    db.drop_snapshot("gated").unwrap();
}

#[test]
fn dropped_table_recovered_from_snapshot() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 300);
    db.with_txn(|txn| {
        db.create_index(txn, "items", "by_name", &["name"])?;
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(30);
    db.checkpoint().unwrap();
    let before_drop = db.clock().now();
    db.clock().advance_secs(30);

    // the user error: DROP TABLE
    db.with_txn(|txn| {
        db.drop_table(txn, "items")?;
        Ok(())
    })
    .unwrap();
    assert!(matches!(db.table("items"), Err(Error::TableNotFound(_))));

    // generate unrelated churn afterwards, re-allocating freed pages so the
    // preformat chain (§4.2-1) is actually exercised
    db.with_txn(|txn| {
        db.create_table(txn, "noise", items_schema())?;
        for i in 0..400u64 {
            db.insert(txn, "noise", &item(i, &format!("noise-{i}"), 0))?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(30);

    // §1 workflow: snapshot as of a time when the table existed, inspect
    // metadata, reconcile.
    let snap = db.create_snapshot_asof("before_drop", before_drop).unwrap();
    let listed = snap.list_tables().unwrap();
    assert!(
        listed.iter().any(|t| t.name == "items"),
        "metadata visible as-of"
    );
    let n = restore_table_from_snapshot(&db, &snap, "items", "items_recovered").unwrap();
    assert_eq!(n, 300);

    db.with_txn(|txn| {
        let row = db.get(txn, "items_recovered", &[Value::U64(123)])?.unwrap();
        assert_eq!(row, item(123, "item-123", 1230));
        let by_name = db.scan_index_prefix(
            txn,
            "items_recovered",
            "by_name",
            &[Value::str("item-7")],
            10,
        )?;
        assert_eq!(by_name.len(), 1);
        Ok(())
    })
    .unwrap();
    db.drop_snapshot("before_drop").unwrap();
}

#[test]
fn regular_snapshot_is_stable_under_writes() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 50);
    let snap = db.create_snapshot("stable").unwrap();
    snap.wait_undo_complete();

    db.with_txn(|txn| {
        for i in 0..50u64 {
            db.update(txn, "items", &item(i, "mutated", 0))?;
        }
        Ok(())
    })
    .unwrap();

    let info = snap.table("items").unwrap();
    let row = snap.get(&info, &[Value::U64(10)]).unwrap().unwrap();
    assert_eq!(
        row,
        item(10, "item-10", 100),
        "COW snapshot unaffected by later writes"
    );
    // COW pushed pre-images, so reads need no log undo
    let stats = snap.stats();
    assert_eq!(
        stats.records_undone, 0,
        "COW snapshot should not need log undo"
    );
    db.drop_snapshot("stable").unwrap();
}

#[test]
fn retention_is_enforced() {
    let db = Database::create(DbConfig {
        checkpoint_interval_bytes: 0,
        ..small_config()
    })
    .unwrap();
    db.set_undo_interval(Duration::from_secs(60)).unwrap();
    setup_items(&db, 10);

    // hours of churn, checkpointing as we go
    for hour in 0..40u64 {
        db.with_txn(|txn| {
            for i in 0..10u64 {
                db.update(txn, "items", &item(i, &format!("h{hour}"), hour as i64))?;
            }
            // pad the log so segments can be dropped (segment = 1 MiB)
            db.create_table(txn, &format!("pad_{hour}"), items_schema())?;
            for i in 0..400u64 {
                db.insert(txn, &format!("pad_{hour}"), &item(i, &"x".repeat(200), 0))?;
            }
            Ok(())
        })
        .unwrap();
        db.clock().advance_secs(120);
        db.checkpoint().unwrap();
        db.enforce_retention();
    }
    let stats = db.stats().unwrap();
    assert!(
        stats.log_retained_bytes < stats.log_bytes,
        "old log must have been truncated: retained {} of {}",
        stats.log_retained_bytes,
        stats.log_bytes
    );

    // a time way out of retention errors cleanly
    match db.create_snapshot_asof("too_old", Timestamp::from_secs(60)) {
        Err(Error::RetentionExceeded { .. }) => {}
        other => panic!("expected RetentionExceeded, got {:?}", other.map(|_| ())),
    }
    // a recent time still works
    let recent = db.clock().now().minus_micros(30_000_000);
    let snap = db.create_snapshot_asof("recent", recent).unwrap();
    snap.wait_undo_complete();
    db.drop_snapshot("recent").unwrap();
}

#[test]
fn concurrent_transfers_conserve_total() {
    let db = std::sync::Arc::new(Database::create(small_config()).unwrap());
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "accounts",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("balance", DataType::I64),
                ],
                &["id"],
            )
            .unwrap(),
        )?;
        for i in 0..16u64 {
            db.insert(txn, "accounts", &[Value::U64(i), Value::I64(1000)])?;
        }
        Ok(())
    })
    .unwrap();

    std::thread::scope(|s| {
        for t in 0..8u64 {
            let db = db.clone();
            s.spawn(move || {
                let mut state = t + 1;
                let mut rng = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 33
                };
                let mut done = 0;
                while done < 50 {
                    let a = rng() % 16;
                    let b = rng() % 16;
                    if a == b {
                        continue;
                    }
                    let txn = db.begin();
                    let res = (|| {
                        let ra = db
                            .get_for_update(&txn, "accounts", &[Value::U64(a)])?
                            .unwrap();
                        let rb = db
                            .get_for_update(&txn, "accounts", &[Value::U64(b)])?
                            .unwrap();
                        let amt = (rng() % 100) as i64;
                        db.update(
                            &txn,
                            "accounts",
                            &[Value::U64(a), Value::I64(ra[1].as_i64()? - amt)],
                        )?;
                        db.update(
                            &txn,
                            "accounts",
                            &[Value::U64(b), Value::I64(rb[1].as_i64()? + amt)],
                        )?;
                        Ok(())
                    })();
                    match res {
                        Ok(()) => {
                            db.commit(txn).unwrap();
                            done += 1;
                        }
                        Err(Error::Deadlock(_)) | Err(Error::LockTimeout(_)) => {
                            db.rollback(txn).unwrap();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    let rows = db.with_txn(|txn| db.scan_all(txn, "accounts")).unwrap();
    let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 16_000, "money is conserved under concurrency");
}

#[test]
fn fpi_interval_changes_nothing_semantically() {
    for fpi in [0u32, 4] {
        let db = Database::create(DbConfig {
            fpi_interval: fpi,
            ..small_config()
        })
        .unwrap();
        setup_items(&db, 150);
        db.clock().advance_secs(5);
        db.checkpoint().unwrap();
        let t = db.clock().now();
        db.clock().advance_secs(5);
        db.with_txn(|txn| {
            for round in 0..10 {
                for i in 0..150u64 {
                    db.update(txn, "items", &item(i, &format!("r{round}"), round))?;
                }
            }
            Ok(())
        })
        .unwrap();

        let snap = db.create_snapshot_asof("t", t).unwrap();
        snap.wait_undo_complete();
        let info = snap.table("items").unwrap();
        let row = snap.get(&info, &[Value::U64(77)]).unwrap().unwrap();
        assert_eq!(row, item(77, "item-77", 770), "fpi={fpi}");
        if fpi > 0 {
            assert!(
                snap.stats().fpi_restores > 0,
                "skip optimization must engage"
            );
        }
        db.drop_snapshot("t").unwrap();
    }
}

#[test]
fn drop_index_and_recover_it_asof() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 80);
    db.with_txn(|txn| {
        db.create_index(txn, "items", "by_name", &["name"])?;
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(5);

    db.with_txn(|txn| db.drop_index(txn, "items", "by_name"))
        .unwrap();
    let info = db.table("items").unwrap();
    assert!(info.indexes.is_empty());
    // index-backed queries now fail on the live db
    let txn = db.begin();
    assert!(db
        .scan_index_prefix(&txn, "items", "by_name", &[Value::str("item-5")], 10)
        .is_err());
    db.rollback(txn).unwrap();
    // writes still maintain the (now index-less) table
    db.with_txn(|txn| db.insert(txn, "items", &item(500, "late", 1)))
        .unwrap();

    // as-of the earlier time, the index exists and answers queries
    let snap = db.create_snapshot_asof("with_index", t).unwrap();
    let sinfo = snap.table("items").unwrap();
    assert_eq!(sinfo.indexes.len(), 1);
    let rows = snap
        .scan_index_prefix(&sinfo, "by_name", &[Value::str("item-42")], 10)
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0], item(42, "item-42", 420));
    snap.wait_undo_complete();
    db.drop_snapshot("with_index").unwrap();
}

#[test]
fn truncate_table_and_recover_it_asof() {
    let db = Database::create(small_config()).unwrap();
    setup_items(&db, 120);
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(5);

    db.with_txn(|txn| {
        db.truncate_table(txn, "items")?;
        Ok(())
    })
    .unwrap();
    assert_eq!(db.count_approx("items").unwrap(), 0);

    let snap = db.create_snapshot_asof("pre_truncate", t).unwrap();
    snap.wait_undo_complete();
    let info = snap.table("items").unwrap();
    assert_eq!(
        snap.count(&info).unwrap(),
        120,
        "truncated data visible as-of"
    );
    db.drop_snapshot("pre_truncate").unwrap();
}
