//! Durability of configuration and catalog state across crashes, and
//! snapshot lifecycle management.

use rewind_core::{Column, DataType, Database, DbConfig, Error, Schema, Value};
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

#[test]
fn undo_interval_survives_crash() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.set_undo_interval(Duration::from_secs(7200)).unwrap();
    assert_eq!(db.undo_interval(), Duration::from_secs(7200));
    db.checkpoint().unwrap();

    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();
    assert_eq!(
        db.undo_interval(),
        Duration::from_secs(7200),
        "SET UNDO_INTERVAL is logged on the boot page and must survive restart"
    );
}

#[test]
fn catalog_cache_invalidation_across_ddl() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let before = db.table("t").unwrap();
    assert!(before.indexes.is_empty());
    db.with_txn(|txn| {
        db.create_index(txn, "t", "by_v", &["v"])?;
        Ok(())
    })
    .unwrap();
    let after = db.table("t").unwrap();
    assert_eq!(after.indexes.len(), 1, "cache must see the new index");

    // drop + recreate with a different schema: cache must not serve stale info
    db.with_txn(|txn| db.drop_table(txn, "t")).unwrap();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("a", DataType::I64),
                    Column::new("b", DataType::I64),
                ],
                &["id"],
            )?,
        )?;
        Ok(())
    })
    .unwrap();
    let fresh = db.table("t").unwrap();
    assert_eq!(fresh.schema.columns.len(), 3);
    assert!(fresh.indexes.is_empty());
}

#[test]
fn snapshot_lifecycle_management() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        db.insert(txn, "t", &[Value::U64(1), Value::str("x")])
    })
    .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();
    let t = db.clock().now();

    let s1 = db.create_snapshot_asof("snap", t).unwrap();
    // duplicate name refused
    assert!(matches!(
        db.create_snapshot_asof("snap", t),
        Err(Error::InvalidArg(_))
    ));
    // retrievable by name; both handles see the same state
    let s2 = db.snapshot("snap").unwrap();
    let info = s2.table("t").unwrap();
    assert_eq!(s2.count(&info).unwrap(), 1);
    assert_eq!(s1.split_lsn(), s2.split_lsn());

    s1.wait_undo_complete();
    db.drop_snapshot("snap").unwrap();
    assert!(matches!(
        db.snapshot("snap"),
        Err(Error::SnapshotNotFound(_))
    ));
    assert!(matches!(
        db.drop_snapshot("snap"),
        Err(Error::SnapshotNotFound(_))
    ));
    // the name is reusable
    let s3 = db.create_snapshot_asof("snap", t).unwrap();
    s3.wait_undo_complete();
    db.drop_snapshot("snap").unwrap();
}

#[test]
fn two_snapshots_at_different_times_coexist() {
    let db = Database::create(DbConfig::default()).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        db.insert(txn, "t", &[Value::U64(1), Value::str("v1")])
    })
    .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();
    let t1 = db.clock().now();
    db.clock().advance_secs(1);

    db.with_txn(|txn| db.update(txn, "t", &[Value::U64(1), Value::str("v2")]))
        .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();
    let t2 = db.clock().now();
    db.clock().advance_secs(1);

    db.with_txn(|txn| db.update(txn, "t", &[Value::U64(1), Value::str("v3")]))
        .unwrap();

    let s1 = db.create_snapshot_asof("at1", t1).unwrap();
    let s2 = db.create_snapshot_asof("at2", t2).unwrap();
    let i1 = s1.table("t").unwrap();
    let i2 = s2.table("t").unwrap();
    assert_eq!(
        s1.get(&i1, &[Value::U64(1)]).unwrap().unwrap()[1],
        Value::str("v1")
    );
    assert_eq!(
        s2.get(&i2, &[Value::U64(1)]).unwrap().unwrap()[1],
        Value::str("v2")
    );
    db.with_txn(|txn| {
        assert_eq!(
            db.get(txn, "t", &[Value::U64(1)])?.unwrap()[1],
            Value::str("v3")
        );
        Ok(())
    })
    .unwrap();
    s1.wait_undo_complete();
    s2.wait_undo_complete();
    db.drop_snapshot("at1").unwrap();
    db.drop_snapshot("at2").unwrap();
}

#[test]
fn open_snapshot_pins_the_log_against_retention() {
    let db = Database::create(DbConfig {
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.set_undo_interval(Duration::from_secs(10)).unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        for i in 0..200u64 {
            db.insert(txn, "t", &[Value::U64(i), Value::str("keep")])?;
        }
        Ok(())
    })
    .unwrap();
    db.clock().advance_secs(1);
    db.checkpoint().unwrap();
    let t = db.clock().now();
    let snap = db.create_snapshot_asof("pin", t).unwrap();

    // hours of churn + retention enforcement, far past the undo interval.
    // The volume matters: truncation works at whole-segment (1 MiB)
    // granularity, so the churn must span many segments.
    for round in 0..25u64 {
        db.with_txn(|txn| {
            for i in 0..200u64 {
                db.update(
                    txn,
                    "t",
                    &[
                        Value::U64(i),
                        Value::Str(format!("{round}-{}", "x".repeat(900))),
                    ],
                )?;
            }
            Ok(())
        })
        .unwrap();
        db.clock().advance_secs(60);
        db.checkpoint().unwrap();
        db.enforce_retention();
    }

    // churn must have outrun retention while the snapshot stayed usable
    let st = db.stats().unwrap();
    assert!(
        st.log_retained_bytes == st.log_bytes,
        "pin must block truncation entirely"
    );

    // the snapshot must still be fully usable: its log region was pinned
    let info = snap.table("t").unwrap();
    assert_eq!(snap.count(&info).unwrap(), 200);
    assert_eq!(
        snap.get(&info, &[Value::U64(3)]).unwrap().unwrap()[1],
        Value::str("keep")
    );
    snap.wait_undo_complete();
    db.drop_snapshot("pin").unwrap();

    // once dropped, retention may reclaim: a new snapshot at `t` now fails
    db.clock().advance_secs(60);
    db.checkpoint().unwrap();
    db.enforce_retention();
    match db.create_snapshot_asof("gone", t) {
        Err(Error::RetentionExceeded { .. }) => {}
        other => panic!(
            "expected RetentionExceeded, got {:?}",
            other.map(|s| s.name().to_string())
        ),
    }
}
