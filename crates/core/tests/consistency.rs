//! The consistency checker itself, exercised across the engine's lifecycle:
//! fresh databases, post-DML, post-DDL, post-rollback, post-crash, and —
//! crucially — *as of the past* through snapshots.

use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("grp", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn build() -> Database {
    let db = Database::create(DbConfig {
        buffer_pages: 512,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        db.create_index(txn, "t", "by_grp", &["grp"])?;
        db.create_heap_table(
            txn,
            "h",
            Schema::new(vec![Column::new("k", DataType::U64)], &["k"])?,
        )?;
        for i in 0..400u64 {
            db.insert(
                txn,
                "t",
                &[Value::U64(i), Value::U64(i % 7), Value::str("x")],
            )?;
            if i % 3 == 0 {
                db.insert(txn, "h", &[Value::U64(i)])?;
            }
        }
        Ok(())
    })
    .unwrap();
    db
}

#[test]
fn clean_database_checks_out() {
    let db = build();
    let report = db.check_consistency().unwrap();
    assert_eq!(report.tables, 2);
    assert_eq!(report.indexes, 1);
    assert_eq!(report.rows, 400 + 134);
    assert!(report.reachable_pages > 10);
}

#[test]
fn survives_churn_rollback_and_ddl() {
    let db = build();
    // churn with splits
    db.with_txn(|txn| {
        for i in 400..1500u64 {
            db.insert(
                txn,
                "t",
                &[
                    Value::U64(i),
                    Value::U64(i % 7),
                    Value::Str("y".repeat(100)),
                ],
            )?;
        }
        for i in (0..400u64).step_by(2) {
            db.delete(txn, "t", &[Value::U64(i)])?;
        }
        Ok(())
    })
    .unwrap();
    db.check_consistency().unwrap();

    // a big rollback
    let txn = db.begin();
    for i in 2000..2600u64 {
        db.insert(
            &txn,
            "t",
            &[Value::U64(i), Value::U64(0), Value::str("doomed")],
        )
        .unwrap();
    }
    db.rollback(txn).unwrap();
    db.check_consistency().unwrap();

    // DDL: drop the index, truncate, drop a table
    db.with_txn(|txn| db.drop_index(txn, "t", "by_grp"))
        .unwrap();
    db.check_consistency().unwrap();
    db.with_txn(|txn| db.truncate_table(txn, "t")).unwrap();
    db.check_consistency().unwrap();
    db.with_txn(|txn| db.drop_table(txn, "h")).unwrap();
    let report = db.check_consistency().unwrap();
    assert_eq!(report.tables, 1);
    assert_eq!(report.rows, 0);
}

#[test]
fn holds_across_crash_recovery() {
    let db = build();
    let loser = db.begin();
    for i in 5000..5400u64 {
        db.insert(
            &loser,
            "t",
            &[Value::U64(i), Value::U64(1), Value::str("gone")],
        )
        .unwrap();
    }
    std::mem::forget(loser);
    let db = Database::recover(db.simulate_crash()).unwrap();
    let report = db.check_consistency().unwrap();
    assert_eq!(report.rows, 400 + 134);
}

#[test]
fn holds_as_of_the_past() {
    let db = build();
    db.clock().advance_secs(5);
    db.checkpoint().unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(5);
    // future churn incl. structure changes and a drop
    db.with_txn(|txn| {
        for i in 400..1200u64 {
            db.insert(
                txn,
                "t",
                &[
                    Value::U64(i),
                    Value::U64(i % 7),
                    Value::Str("z".repeat(200)),
                ],
            )?;
        }
        db.drop_table(txn, "h")?;
        Ok(())
    })
    .unwrap();
    db.check_consistency().unwrap();

    // the rewound database must be a well-formed database, including the
    // dropped heap and the index state as of `t`
    let snap = db.create_snapshot_asof("past", t).unwrap();
    snap.wait_undo_complete();
    let report = snap.check_consistency().unwrap();
    assert_eq!(report.tables, 2, "dropped table visible as-of");
    assert_eq!(report.rows, 400 + 134);
    assert_eq!(report.indexes, 1);
    db.drop_snapshot("past").unwrap();
}
