//! The boot page (page 0): database-wide anchors.
//!
//! The boot page stores what everything else hangs off: the roots of the
//! three system-catalog B-Trees, the object-id allocator, and durable
//! configuration (FPI interval, retention period — the paper's
//! `UNDO_INTERVAL`, §4.3). All updates are logged `BootWrite` records, so
//! the boot page is unwound by the same physical undo as everything else —
//! an as-of snapshot sees the catalog roots *as of that time*.

use rewind_access::store::{ModKind, Store};
use rewind_common::{Error, Lsn, PageId, Result};
use rewind_pagestore::PageType;
use rewind_wal::LogPayload;

/// Magic bytes identifying a rewind database.
pub const MAGIC: &[u8; 8] = b"REWINDDB";
/// On-disk format version.
pub const VERSION: u32 = 1;

// Body offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_SYS_TABLES: usize = 12;
const OFF_SYS_COLUMNS: usize = 20;
const OFF_SYS_INDEXES: usize = 28;
const OFF_NEXT_OBJECT: usize = 36;
const OFF_FPI_INTERVAL: usize = 44;
const OFF_RETENTION: usize = 48;

/// Decoded boot-page contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BootInfo {
    /// Root of `sys_tables`.
    pub sys_tables_root: PageId,
    /// Root of `sys_columns`.
    pub sys_columns_root: PageId,
    /// Root of `sys_indexes`.
    pub sys_indexes_root: PageId,
    /// Next object id to allocate.
    pub next_object_id: u64,
    /// Full-page-image interval N (§6.1), 0 = disabled.
    pub fpi_interval: u32,
    /// Retention period in microseconds (§4.3), 0 = retain everything.
    pub retention_micros: u64,
}

/// Read and validate the boot page through any [`Store`] (live database or
/// snapshot — an as-of snapshot reads the boot page *as of its SplitLSN*).
pub fn read_boot<S: Store>(s: &S) -> Result<BootInfo> {
    s.with_page(PageId::BOOT, |p| {
        if p.page_type() != PageType::Boot {
            return Err(Error::corruption("page 0 is not a boot page"));
        }
        let b = p.body();
        if &b[OFF_MAGIC..OFF_MAGIC + 8] != MAGIC {
            return Err(Error::corruption("bad boot magic"));
        }
        let version = rewind_common::codec::read_u32_at(b, OFF_VERSION);
        if version != VERSION {
            return Err(Error::corruption(format!(
                "unsupported format version {version}"
            )));
        }
        Ok(BootInfo {
            sys_tables_root: PageId(rewind_common::codec::read_u64_at(b, OFF_SYS_TABLES)),
            sys_columns_root: PageId(rewind_common::codec::read_u64_at(b, OFF_SYS_COLUMNS)),
            sys_indexes_root: PageId(rewind_common::codec::read_u64_at(b, OFF_SYS_INDEXES)),
            next_object_id: rewind_common::codec::read_u64_at(b, OFF_NEXT_OBJECT),
            fpi_interval: rewind_common::codec::read_u32_at(b, OFF_FPI_INTERVAL),
            retention_micros: rewind_common::codec::read_u64_at(b, OFF_RETENTION),
        })
    })
}

fn boot_write<S: Store>(s: &S, offset: usize, new: Vec<u8>) -> Result<Lsn> {
    let old = s.with_page(PageId::BOOT, |p| {
        Ok(p.body()[offset..offset + new.len()].to_vec())
    })?;
    s.modify(
        PageId::BOOT,
        LogPayload::BootWrite {
            offset: offset as u16,
            old,
            new,
        },
        ModKind::User,
    )
}

/// Format page 0 as the boot page and write the initial anchors. Called once
/// at database creation, after the three system trees exist.
pub fn initialize_boot<S: Store>(s: &S, info: &BootInfo) -> Result<()> {
    s.modify(
        PageId::BOOT,
        LogPayload::Format {
            object: rewind_common::ObjectId::NONE,
            ty: PageType::Boot,
            level: 0,
            next: PageId::INVALID,
            prev: PageId::INVALID,
        },
        ModKind::User,
    )?;
    boot_write(s, OFF_MAGIC, MAGIC.to_vec())?;
    boot_write(s, OFF_VERSION, VERSION.to_le_bytes().to_vec())?;
    boot_write(
        s,
        OFF_SYS_TABLES,
        info.sys_tables_root.0.to_le_bytes().to_vec(),
    )?;
    boot_write(
        s,
        OFF_SYS_COLUMNS,
        info.sys_columns_root.0.to_le_bytes().to_vec(),
    )?;
    boot_write(
        s,
        OFF_SYS_INDEXES,
        info.sys_indexes_root.0.to_le_bytes().to_vec(),
    )?;
    boot_write(
        s,
        OFF_NEXT_OBJECT,
        info.next_object_id.to_le_bytes().to_vec(),
    )?;
    boot_write(
        s,
        OFF_FPI_INTERVAL,
        info.fpi_interval.to_le_bytes().to_vec(),
    )?;
    boot_write(
        s,
        OFF_RETENTION,
        info.retention_micros.to_le_bytes().to_vec(),
    )?;
    Ok(())
}

/// Allocate the next object id (logged, transactional).
pub fn allocate_object_id<S: Store>(s: &S) -> Result<u64> {
    let cur = read_boot(s)?.next_object_id;
    boot_write(s, OFF_NEXT_OBJECT, (cur + 1).to_le_bytes().to_vec())?;
    Ok(cur)
}

/// Durably set the retention period (the paper's
/// `ALTER DATABASE ... SET UNDO_INTERVAL`, §4.3).
pub fn set_retention<S: Store>(s: &S, micros: u64) -> Result<()> {
    boot_write(s, OFF_RETENTION, micros.to_le_bytes().to_vec())?;
    Ok(())
}

/// Durably set the FPI interval (§6.1).
pub fn set_fpi_interval<S: Store>(s: &S, n: u32) -> Result<()> {
    boot_write(s, OFF_FPI_INTERVAL, n.to_le_bytes().to_vec())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_access::store::MemStore;

    #[test]
    fn initialize_read_roundtrip() {
        let s = MemStore::new(4);
        let info = BootInfo {
            sys_tables_root: PageId(2),
            sys_columns_root: PageId(3),
            sys_indexes_root: PageId(4),
            next_object_id: 100,
            fpi_interval: 16,
            retention_micros: 3_600_000_000,
        };
        initialize_boot(&s, &info).unwrap();
        assert_eq!(read_boot(&s).unwrap(), info);

        assert_eq!(allocate_object_id(&s).unwrap(), 100);
        assert_eq!(allocate_object_id(&s).unwrap(), 101);
        assert_eq!(read_boot(&s).unwrap().next_object_id, 102);

        set_retention(&s, 42).unwrap();
        set_fpi_interval(&s, 8).unwrap();
        let after = read_boot(&s).unwrap();
        assert_eq!(after.retention_micros, 42);
        assert_eq!(after.fpi_interval, 8);
    }

    #[test]
    fn unformatted_boot_rejected() {
        let s = MemStore::new(2);
        assert!(read_boot(&s).is_err());
    }
}
