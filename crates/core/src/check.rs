//! Whole-database consistency checking (the `DBCC CHECKDB` analogue).
//!
//! Verifies, against any [`Store`] — so it runs identically on the live
//! database and on as-of snapshots:
//!
//! * boot-page sanity and catalog readability;
//! * every table and index B-Tree: key order, separator bounds, sibling
//!   links, level consistency (via `BTree::verify`), heap chains;
//! * **allocation agreement**: every page reachable from the catalog is
//!   allocated, no page is owned by two objects, and the allocation-map
//!   count matches the reachable count (no leaks, no double use);
//! * **index agreement**: every base row has exactly its index entries and
//!   every index entry resolves to a base row.
//!
//! Because this runs on snapshots too, it double-checks the paper's central
//! claim: the *rewound* database is a well-formed database.

use crate::boot::read_boot;
use crate::catalog::{self, SysTrees, TableInfo, TableKind};
use crate::database::Database;
use crate::snapdb::SnapshotDb;
use rewind_access::store::Store;
use rewind_access::value::decode_row;
use rewind_common::{Error, PageId, Result};
use std::collections::HashMap;
use std::ops::Bound;

/// Summary of a successful consistency check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// User tables checked.
    pub tables: usize,
    /// Secondary indexes checked.
    pub indexes: usize,
    /// Total rows across all tables.
    pub rows: usize,
    /// Pages reachable from the catalog (incl. system trees).
    pub reachable_pages: usize,
    /// Pages the allocation maps say are allocated (incl. boot + maps).
    pub allocated_pages: usize,
}

/// Run the full consistency check through `store`.
pub fn check_consistency<S: Store>(store: &S) -> Result<CheckReport> {
    let boot = read_boot(store)?;
    let sys = SysTrees::from_boot(&boot);
    let mut report = CheckReport::default();
    let mut owner_of: HashMap<PageId, rewind_common::ObjectId> = HashMap::new();

    // System catalog trees are ordinary trees: verify + claim their pages.
    for tree in [sys.tables, sys.columns, sys.indexes] {
        tree.verify(store)?;
        claim_pages(
            store,
            &mut owner_of,
            tree.object,
            tree.collect_pages(store)?,
        )?;
    }

    let tables = catalog::list_tables(store, &sys)?;
    for info in &tables {
        report.tables += 1;
        report.rows += check_table(store, info, &mut owner_of)?;
        report.indexes += info.indexes.len();
    }

    // Allocation agreement.
    report.reachable_pages = owner_of.len() + 2; // + boot page and first map page
    report.allocated_pages = rewind_access::allocator::allocated_count(store)?;
    // Each region's map page is allocated but not "reachable" from the
    // catalog; region 0's is accounted above. Allow for extra regions.
    if report.allocated_pages < report.reachable_pages {
        return Err(Error::corruption(format!(
            "allocation map says {} pages allocated but {} are reachable",
            report.allocated_pages, report.reachable_pages
        )));
    }
    let leaked = report.allocated_pages - report.reachable_pages;
    // every non-region-0 map page accounts for at most one extra
    let max_extra_maps = 8;
    if leaked > max_extra_maps {
        return Err(Error::corruption(format!(
            "{leaked} allocated pages are unreachable from the catalog (leak)"
        )));
    }
    Ok(report)
}

fn claim_pages<S: Store>(
    store: &S,
    owner_of: &mut HashMap<PageId, rewind_common::ObjectId>,
    object: rewind_common::ObjectId,
    pages: Vec<PageId>,
) -> Result<()> {
    for pid in pages {
        if let Some(prev) = owner_of.insert(pid, object) {
            return Err(Error::corruption(format!(
                "page {pid:?} owned by both {prev:?} and {object:?}"
            )));
        }
        if !rewind_access::allocator::is_allocated(store, pid)? {
            return Err(Error::corruption(format!(
                "page {pid:?} of {object:?} is reachable but not allocated"
            )));
        }
    }
    Ok(())
}

fn check_table<S: Store>(
    store: &S,
    info: &TableInfo,
    owner_of: &mut HashMap<PageId, rewind_common::ObjectId>,
) -> Result<usize> {
    let rows = match info.kind {
        TableKind::Tree => {
            let tree = info.tree()?;
            let n = tree.verify(store)?;
            claim_pages(store, owner_of, info.id, tree.collect_pages(store)?)?;

            // Index agreement: base -> index and index -> base.
            for idx in &info.indexes {
                let itree = idx.tree();
                itree.verify(store)?;
                claim_pages(store, owner_of, idx.id, itree.collect_pages(store)?)?;

                let mut expected: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
                tree.scan(store, Bound::Unbounded, Bound::Unbounded, |k, v| {
                    let row = decode_row(v)?;
                    expected.insert(info.index_key_bytes(idx, &row)?, k.to_vec());
                    Ok(true)
                })?;
                let mut seen = 0usize;
                let mut err: Option<String> = None;
                itree.scan(store, Bound::Unbounded, Bound::Unbounded, |ik, pk| {
                    seen += 1;
                    match expected.get(ik) {
                        Some(expect_pk) if expect_pk == pk => {}
                        Some(_) => {
                            err = Some(format!(
                                "index '{}' entry points at the wrong base row",
                                idx.name
                            ));
                            return Ok(false);
                        }
                        None => {
                            err = Some(format!("index '{}' has an orphan entry", idx.name));
                            return Ok(false);
                        }
                    }
                    Ok(true)
                })?;
                if let Some(msg) = err {
                    return Err(Error::corruption(msg));
                }
                if seen != expected.len() {
                    return Err(Error::corruption(format!(
                        "index '{}' has {seen} entries for {} base rows",
                        idx.name,
                        expected.len()
                    )));
                }
            }
            n
        }
        TableKind::Heap => {
            let heap = info.heap()?;
            let n = heap.count(store)?;
            claim_pages(store, owner_of, info.id, heap.collect_pages(store)?)?;
            // every live row decodes
            heap.scan(store, |_, bytes| {
                decode_row(bytes)?;
                Ok(true)
            })?;
            n
        }
    };
    Ok(rows)
}

impl Database {
    /// Run the full consistency check on the live database.
    pub fn check_consistency(&self) -> Result<CheckReport> {
        let txn = self.begin();
        let store = self.store(&txn);
        let r = check_consistency(&store);
        self.txns.finish(txn.id());
        r
    }
}

impl SnapshotDb {
    /// Run the full consistency check *as of the snapshot time*: the
    /// rewound database must be structurally sound too.
    pub fn check_consistency(&self) -> Result<CheckReport> {
        check_consistency(&self.raw().store())
    }
}
