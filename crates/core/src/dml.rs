//! DML and queries on the live database, with strict 2PL row locking.
//!
//! The locking protocol follows paper §2.1: intent locks at table
//! granularity, shared/exclusive row locks held to commit. Scans collect
//! candidates under the structure latch without locks, then lock and
//! re-validate each row — latches are never held while waiting for locks.

use crate::catalog::{TableInfo, TableKind};
use crate::database::{Database, Txn};
use rewind_access::heap::Rid;
use rewind_access::keys::{encode_key, prefix_upper_bound};
use rewind_access::value::{decode_row, encode_row};
use rewind_access::{Row, Value};
use rewind_common::{Error, Result};
use rewind_txn::{LockKey, LockMode};
use std::ops::Bound;
use std::sync::Arc;

impl Database {
    fn key_bytes_of(info: &TableInfo, key: &[Value]) -> Result<Vec<u8>> {
        if key.len() != info.schema.key.len() {
            return Err(Error::InvalidArg(format!(
                "table '{}' has a {}-column key, got {} values",
                info.name,
                info.schema.key.len(),
                key.len()
            )));
        }
        let refs: Vec<&Value> = key.iter().collect();
        encode_key(&refs)
    }

    fn rid_lock_bytes(rid: Rid) -> Vec<u8> {
        let mut b = rid.page.0.to_be_bytes().to_vec();
        b.extend_from_slice(&rid.slot.to_be_bytes());
        b
    }

    /// Insert a full row into `table`.
    pub fn insert(&self, txn: &Txn, table: &str, row: &[Value]) -> Result<()> {
        let info = self.table(table)?;
        info.schema.check_row(row)?;
        let store = self.store(txn);
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IX)?;
        match info.kind {
            TableKind::Tree => self.insert_tree_row(txn, &store, &info, row)?,
            TableKind::Heap => {
                let rid = info.heap()?.insert(&store, &encode_row(row))?;
                self.locks.acquire(
                    txn.id(),
                    &LockKey::row(info.id, &Self::rid_lock_bytes(rid)),
                    LockMode::X,
                )?;
            }
        }
        Ok(())
    }

    /// The shared per-row body of tree inserts: X-lock the key, insert the
    /// base row, maintain every secondary index. Table intent lock and
    /// schema check are the caller's job.
    fn insert_tree_row(
        &self,
        txn: &Txn,
        store: &rewind_recovery::EngineStore<'_>,
        info: &TableInfo,
        row: &[Value],
    ) -> Result<()> {
        let key = info.key_bytes(row)?;
        self.locks
            .acquire(txn.id(), &LockKey::row(info.id, &key), LockMode::X)?;
        info.tree()?.insert(store, &key, &encode_row(row))?;
        for idx in &info.indexes {
            let ikey = info.index_key_bytes(idx, row)?;
            idx.tree().insert(store, &ikey, &key)?;
        }
        Ok(())
    }

    /// Insert many rows in one call.
    ///
    /// Heap tables take the group-commit fast path: every run of rows
    /// landing on the same tail page is framed into the WAL as ONE batched
    /// append (`Heap::insert_many` → `Store::modify_batch`), so an N-row
    /// load pays one log writer-mutex acquisition per page, not per row.
    /// Tree tables insert row-by-row (slot positions depend on each prior
    /// insert) but still save the per-call table-lock and catalog overhead.
    pub fn insert_rows(&self, txn: &Txn, table: &str, rows: &[Vec<Value>]) -> Result<()> {
        let info = self.table(table)?;
        for row in rows {
            info.schema.check_row(row)?;
        }
        let store = self.store(txn);
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IX)?;
        match info.kind {
            TableKind::Tree => {
                for row in rows {
                    self.insert_tree_row(txn, &store, &info, row)?;
                }
            }
            TableKind::Heap => {
                let encoded: Vec<Vec<u8>> = rows.iter().map(|r| encode_row(r)).collect();
                let refs: Vec<&[u8]> = encoded.iter().map(|e| e.as_slice()).collect();
                let rids = info.heap()?.insert_many(&store, &refs)?;
                for rid in rids {
                    self.locks.acquire(
                        txn.id(),
                        &LockKey::row(info.id, &Self::rid_lock_bytes(rid)),
                        LockMode::X,
                    )?;
                }
            }
        }
        Ok(())
    }

    fn get_locked(
        &self,
        txn: &Txn,
        info: &TableInfo,
        key: &[Value],
        mode: LockMode,
        table_mode: LockMode,
    ) -> Result<Option<Row>> {
        let key_bytes = Self::key_bytes_of(info, key)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), table_mode)?;
        self.locks
            .acquire(txn.id(), &LockKey::row(info.id, &key_bytes), mode)?;
        let store = self.store(txn);
        match info.tree()?.get(&store, &key_bytes)? {
            Some(v) => Ok(Some(decode_row(&v)?)),
            None => Ok(None),
        }
    }

    /// Point lookup with a shared lock.
    pub fn get(&self, txn: &Txn, table: &str, key: &[Value]) -> Result<Option<Row>> {
        let info = self.table(table)?;
        self.get_locked(txn, &info, key, LockMode::S, LockMode::IS)
    }

    /// Point lookup with an exclusive lock (read-modify-write).
    pub fn get_for_update(&self, txn: &Txn, table: &str, key: &[Value]) -> Result<Option<Row>> {
        let info = self.table(table)?;
        self.get_locked(txn, &info, key, LockMode::X, LockMode::IX)
    }

    /// Replace the row whose primary key matches `row`'s key columns.
    pub fn update(&self, txn: &Txn, table: &str, row: &[Value]) -> Result<()> {
        let info = self.table(table)?;
        info.schema.check_row(row)?;
        let key = info.key_bytes(row)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IX)?;
        self.locks
            .acquire(txn.id(), &LockKey::row(info.id, &key), LockMode::X)?;
        let store = self.store(txn);
        let tree = info.tree()?;
        let old = tree.get(&store, &key)?.ok_or(Error::KeyNotFound)?;
        tree.update(&store, &key, &encode_row(row))?;
        if !info.indexes.is_empty() {
            let old_row = decode_row(&old)?;
            for idx in &info.indexes {
                let old_ikey = info.index_key_bytes(idx, &old_row)?;
                let new_ikey = info.index_key_bytes(idx, row)?;
                if old_ikey != new_ikey {
                    idx.tree().delete(&store, &old_ikey)?;
                    idx.tree().insert(&store, &new_ikey, &key)?;
                }
            }
        }
        Ok(())
    }

    /// Delete the row with primary key `key`.
    pub fn delete(&self, txn: &Txn, table: &str, key: &[Value]) -> Result<()> {
        let info = self.table(table)?;
        let key_bytes = Self::key_bytes_of(&info, key)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IX)?;
        self.locks
            .acquire(txn.id(), &LockKey::row(info.id, &key_bytes), LockMode::X)?;
        let store = self.store(txn);
        let tree = info.tree()?;
        let old = tree.get(&store, &key_bytes)?.ok_or(Error::KeyNotFound)?;
        tree.delete(&store, &key_bytes)?;
        if !info.indexes.is_empty() {
            let old_row = decode_row(&old)?;
            for idx in &info.indexes {
                let ikey = info.index_key_bytes(idx, &old_row)?;
                idx.tree().delete(&store, &ikey)?;
            }
        }
        Ok(())
    }

    /// Collect `(key, row)` pairs in a key range without locks, then lock
    /// and re-validate each.
    fn scan_tree_locked(
        &self,
        txn: &Txn,
        info: &TableInfo,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        limit: usize,
    ) -> Result<Vec<Row>> {
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IS)?;
        let store = self.store(txn);
        let tree = info.tree()?;
        let mut candidates: Vec<Vec<u8>> = Vec::new();
        tree.scan(&store, lo, hi, |k, _| {
            candidates.push(k.to_vec());
            Ok(candidates.len() < limit)
        })?;
        let mut out = Vec::with_capacity(candidates.len());
        for key in candidates {
            self.locks
                .acquire(txn.id(), &LockKey::row(info.id, &key), LockMode::S)?;
            // Re-read after locking: the row may have changed or vanished
            // between collection and lock grant.
            if let Some(v) = tree.get(&store, &key)? {
                out.push(decode_row(&v)?);
            }
        }
        Ok(out)
    }

    /// All rows whose key starts with `prefix` (a prefix of the key
    /// columns), ascending.
    pub fn scan_prefix(&self, txn: &Txn, table: &str, prefix: &[Value]) -> Result<Vec<Row>> {
        let info = self.table(table)?;
        match info.kind {
            TableKind::Tree => {
                let refs: Vec<&Value> = prefix.iter().collect();
                if refs.is_empty() {
                    return self.scan_all(txn, table);
                }
                let lo = encode_key(&refs)?;
                let hi = prefix_upper_bound(&lo);
                self.scan_tree_locked(
                    txn,
                    &info,
                    Bound::Included(&lo),
                    Bound::Excluded(&hi),
                    usize::MAX,
                )
            }
            TableKind::Heap => Err(Error::InvalidArg("heap tables have no key order".into())),
        }
    }

    /// All rows with `lo <= key <= hi` (values for a prefix of the key).
    pub fn scan_between(
        &self,
        txn: &Txn,
        table: &str,
        lo: &[Value],
        hi: &[Value],
    ) -> Result<Vec<Row>> {
        let info = self.table(table)?;
        let lo_refs: Vec<&Value> = lo.iter().collect();
        let hi_refs: Vec<&Value> = hi.iter().collect();
        let lo_b = encode_key(&lo_refs)?;
        let hi_b = prefix_upper_bound(&encode_key(&hi_refs)?);
        self.scan_tree_locked(
            txn,
            &info,
            Bound::Included(&lo_b),
            Bound::Excluded(&hi_b),
            usize::MAX,
        )
    }

    /// Every row of the table.
    pub fn scan_all(&self, txn: &Txn, table: &str) -> Result<Vec<Row>> {
        let info = self.table(table)?;
        match info.kind {
            TableKind::Tree => {
                self.scan_tree_locked(txn, &info, Bound::Unbounded, Bound::Unbounded, usize::MAX)
            }
            TableKind::Heap => {
                // Heap scans take a shared table lock.
                self.locks
                    .acquire(txn.id(), &LockKey::table(info.id), LockMode::S)?;
                let store = self.store(txn);
                let mut out = Vec::new();
                info.heap()?.scan(&store, |_, bytes| {
                    out.push(decode_row(bytes)?);
                    Ok(true)
                })?;
                Ok(out)
            }
        }
    }

    /// Rows matched through a secondary index by prefix of the indexed
    /// columns, ascending, up to `limit`.
    pub fn scan_index_prefix(
        &self,
        txn: &Txn,
        table: &str,
        index: &str,
        prefix: &[Value],
        limit: usize,
    ) -> Result<Vec<Row>> {
        let info = self.table(table)?;
        let idx = info.index(index)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IS)?;
        let store = self.store(txn);
        let refs: Vec<&Value> = prefix.iter().collect();
        let lo = encode_key(&refs)?;
        let hi = prefix_upper_bound(&lo);
        let mut pks: Vec<Vec<u8>> = Vec::new();
        idx.tree().scan(
            &store,
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            |_, pk| {
                pks.push(pk.to_vec());
                Ok(pks.len() < limit)
            },
        )?;
        let tree = info.tree()?;
        let mut out = Vec::with_capacity(pks.len());
        for pk in pks {
            self.locks
                .acquire(txn.id(), &LockKey::row(info.id, &pk), LockMode::S)?;
            if let Some(v) = tree.get(&store, &pk)? {
                out.push(decode_row(&v)?);
            }
        }
        Ok(out)
    }

    /// The row with the *largest* index key under `prefix` (e.g. "the
    /// customer's most recent order").
    pub fn last_by_index_prefix(
        &self,
        txn: &Txn,
        table: &str,
        index: &str,
        prefix: &[Value],
    ) -> Result<Option<Row>> {
        let info = self.table(table)?;
        let idx = info.index(index)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::IS)?;
        let store = self.store(txn);
        let refs: Vec<&Value> = prefix.iter().collect();
        let lo = encode_key(&refs)?;
        let hi = prefix_upper_bound(&lo);
        let mut pk: Option<Vec<u8>> = None;
        idx.tree().scan_desc(
            &store,
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            |_, v| {
                pk = Some(v.to_vec());
                Ok(false)
            },
        )?;
        match pk {
            Some(pk) => {
                self.locks
                    .acquire(txn.id(), &LockKey::row(info.id, &pk), LockMode::S)?;
                match info.tree()?.get(&store, &pk)? {
                    Some(v) => Ok(Some(decode_row(&v)?)),
                    None => Ok(None),
                }
            }
            None => Ok(None),
        }
    }

    /// Number of rows (unlocked estimate; used by monitoring and tests).
    pub fn count_approx(&self, table: &str) -> Result<usize> {
        let info = self.table(table)?;
        let txn = self.begin();
        let store = self.store(&txn);
        let n = match info.kind {
            TableKind::Tree => {
                let mut n = 0usize;
                info.tree()?
                    .scan(&store, Bound::Unbounded, Bound::Unbounded, |_, _| {
                        n += 1;
                        Ok(true)
                    })?;
                n
            }
            TableKind::Heap => info.heap()?.count(&store)?,
        };
        self.txns.finish(txn.id());
        Ok(n)
    }

    /// Cached table info by name (public convenience re-export).
    pub fn table_info(&self, name: &str) -> Result<Arc<TableInfo>> {
        self.table(name)
    }
}
