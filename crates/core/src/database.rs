//! The [`Database`] facade: lifecycle, transactions, DDL, checkpoints,
//! retention and snapshots.

use crate::boot::{self, BootInfo};
use crate::catalog::{self, IndexInfo, SysTrees, TableInfo, TableKind};
use crate::snapdb::SnapshotDb;
use parking_lot::{Condvar, Mutex, RwLock};
use rewind_access::store::{ModKind, Store};
use rewind_access::{BTree, Heap, Schema};
use rewind_buffer::{BufferPool, PoolIoConfig};
use rewind_common::{Error, IoSnapshot, Lsn, ObjectId, PageId, Result, SimClock, Timestamp, TxnId};
use rewind_obs::{EventKind, FnSource, IoStatsSource, MetricsRegistry, MetricsSnapshot, Obs};
use rewind_pagestore::{IoBackend, MemFileManager, PageType};
use rewind_recovery::{
    pipelined_restart, rollback::undo_record, take_checkpoint, take_checkpoint_incremental,
    AccessKind, EngineParts, EngineStore, RestartOutcome,
};
use rewind_snapshot::AsOfSnapshot;
use rewind_txn::{LockKey, LockManager, LockMode, ObjectLatches, TxnManager, TxnShared, TxnState};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Buffer pool size in 8 KiB frames.
    pub buffer_pages: usize,
    /// Buffer pool page-table shards (0 = the pool's default). Sharding
    /// changes only contention, never accounting: serial hit/IO/eviction
    /// classification is identical at every shard count.
    pub buffer_shards: usize,
    /// Frame budget for the scan partition that bulk as-of streams (table
    /// scans, `prefetch_table`, `prepare_pages`) run in; 0 picks the
    /// snapshot's default (pool/8). A bulk as-of stream larger than the
    /// buffer pool disturbs at most this many of the pool's frames — the
    /// live working set survives snapshot table scans. The effective
    /// budget is floored at **two frames per prepare worker** (ring reuse
    /// must be able to proceed past the fan-out's own transient pins) and
    /// capped at half the pool, so a small budget combined with a wide
    /// `with_prefetch_workers` fan-out is honoured as `2 × workers`, not
    /// verbatim.
    pub asof_scan_budget: usize,
    /// Full-page-image interval N (paper §6.1); 0 disables FPIs.
    pub fpi_interval: u32,
    /// Lock wait timeout.
    pub lock_timeout: Duration,
    /// Take a checkpoint after this many log bytes (0 = manual only). The
    /// paper's "target recovery interval" expressed in log volume. Commits
    /// that cross the interval kick a background daemon which takes a
    /// *fuzzy incremental* checkpoint (flushing only pages first dirtied
    /// before `tail - interval`), so restart time tracks this interval
    /// while commits never stall behind a pool flush.
    pub checkpoint_interval_bytes: u64,
    /// Redo worker threads for partitioned crash restart; 0 resolves to
    /// the machine's available parallelism at recovery time. Restart
    /// accounting (records applied, analysis tables, post-restart state)
    /// is bit-identical at every worker count.
    pub redo_workers: usize,
    /// Log manager tuning.
    pub log: LogConfig,
    /// Initial retention period in microseconds (paper §4.3); 0 retains
    /// everything until configured otherwise.
    pub retention_micros: u64,
    /// Pages per vectored read / batched write device op (1 = fully scalar
    /// I/O). Batching changes only the device-op count, never accounting:
    /// per-page hit/miss/eviction classification is bit-identical at every
    /// batch size.
    pub io_batch_pages: usize,
    /// Background writeback threads for checkpoint/flush page writes
    /// (0 = synchronous scalar flushing).
    pub writeback_workers: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 4096,
            buffer_shards: 0,
            asof_scan_budget: 0,
            fpi_interval: 0,
            lock_timeout: Duration::from_secs(5),
            checkpoint_interval_bytes: 8 << 20,
            redo_workers: 0,
            log: LogConfig::default(),
            retention_micros: 0,
            io_batch_pages: 16,
            writeback_workers: 2,
        }
    }
}

/// A transaction handle. Obtain with [`Database::begin`]; finish with
/// [`Database::commit`] or [`Database::rollback`]. Dropping an unfinished
/// handle leaks its locks until rolled back by id.
pub struct Txn {
    pub(crate) shared: Arc<TxnShared>,
}

impl Txn {
    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.shared.id
    }

    /// LSN of the transaction's most recent log record.
    pub fn last_lsn(&self) -> Lsn {
        self.shared.last_lsn()
    }
}

/// Counters describing current database state.
#[derive(Clone, Copy, Debug)]
pub struct DbStats {
    /// Pages currently allocated.
    pub allocated_pages: usize,
    /// Total log bytes ever written.
    pub log_bytes: u64,
    /// Log bytes still retained.
    pub log_retained_bytes: u64,
    /// Active transactions.
    pub active_txns: usize,
}

/// Per-phase accounting of one ARIES restart ([`Database::recover`]):
/// wall-clock time and record counts for analysis, redo and undo. The
/// paper's recovery-cost story ("bound by the amount of log scanned",
/// §6.2) is exactly these three numbers over the log window.
///
/// Durations come from the process monotonic timebase
/// ([`rewind_obs::monotonic_us`]), not the obs handle, so they are real
/// even on a disabled-obs engine. Analysis and redo overlap by design —
/// restart pipelines the two passes over one forward scan.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Analysis duration (µs): restart start until the loser/lock tables
    /// were final.
    pub analysis_us: u64,
    /// Log records visited by the analysis scan.
    pub records_scanned: u64,
    /// In-flight transactions found at the crash point.
    pub losers: u64,
    /// Ids of those transactions, ascending.
    pub loser_txns: Vec<TxnId>,
    /// Redo duration (µs): restart start until the last redo worker
    /// drained.
    pub redo_us: u64,
    /// Page operations re-applied by redo.
    pub records_redone: u64,
    /// Redo worker threads used by the partitioned dispatcher.
    pub redo_workers: u64,
    /// Records applied by each redo worker (shows partition skew; sums to
    /// `records_redone`).
    pub redone_per_worker: Vec<u64>,
    /// Undo sweep duration (µs).
    pub undo_us: u64,
    /// Loser records compensated (CLRs written).
    pub records_undone: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery: analysis {:.3}ms ({} records, {} losers) | redo {:.3}ms ({} applied, {} workers) | undo {:.3}ms ({} compensated)",
            self.analysis_us as f64 / 1000.0,
            self.records_scanned,
            self.losers,
            self.redo_us as f64 / 1000.0,
            self.records_redone,
            self.redo_workers,
            self.undo_us as f64 / 1000.0,
            self.records_undone,
        )
    }
}

/// What survives a crash: the database file, the durable log, and the clock.
pub struct CrashArtifacts {
    /// The database file.
    pub fm: Arc<dyn IoBackend>,
    /// In-memory backend handle, when applicable (backup support).
    pub fm_mem: Option<Arc<MemFileManager>>,
    /// The write-ahead log (its unflushed tail is discarded by recovery).
    pub log: Arc<LogManager>,
    /// The simulated wall clock.
    pub clock: SimClock,
    /// Configuration to reopen with.
    pub config: DbConfig,
}

/// An embedded database instance.
pub struct Database {
    pub(crate) parts: Arc<EngineParts>,
    fm_mem: Option<Arc<MemFileManager>>,
    pub(crate) txns: Arc<TxnManager>,
    pub(crate) locks: Arc<LockManager>,
    pub(crate) clock: SimClock,
    config: DbConfig,
    pub(crate) sys: SysTrees,
    table_cache: RwLock<HashMap<u64, Arc<TableInfo>>>,
    name_cache: RwLock<HashMap<String, u64>>,
    /// Shared with the checkpoint daemon's retention enforcement.
    retention_micros: Arc<AtomicU64>,
    /// Errors from background maintenance (the checkpoint daemon) that
    /// must not fail the foreground operation; drained by
    /// [`Database::take_background_errors`]. Shared with the daemon thread.
    background_errors: Arc<Mutex<Vec<(String, Error)>>>,
    /// Shared with the metrics registry's snapshot gauge source.
    snapshots: Arc<Mutex<HashMap<String, Arc<AsOfSnapshot>>>>,
    metrics: Arc<MetricsRegistry>,
    /// Phase report from the restart that produced this instance, if any.
    last_recovery: Mutex<Option<RecoveryReport>>,
    /// Background checkpoint daemon; `None` when
    /// `checkpoint_interval_bytes` is 0 (manual checkpoints only).
    checkpointer: Option<Checkpointer>,
}

impl Database {
    /// Create a fresh in-memory database.
    pub fn create(config: DbConfig) -> Result<Database> {
        Self::create_with_clock(config, SimClock::new())
    }

    /// Create a fresh in-memory database sharing an external clock.
    pub fn create_with_clock(config: DbConfig, clock: SimClock) -> Result<Database> {
        let fm_mem = Arc::new(MemFileManager::new());
        let fm: Arc<dyn IoBackend> = fm_mem.clone();
        let log = Arc::new(LogManager::new(config.log.clone()));
        let db = Self::assemble(fm, Some(fm_mem), log, clock, config, true)?;
        Ok(db)
    }

    /// Create a fresh database over an arbitrary [`IoBackend`] backend
    /// (fault-injection harnesses, alternative storage). Backends that are
    /// not [`MemFileManager`] have no backup support.
    pub fn create_on(
        fm: Arc<dyn IoBackend>,
        config: DbConfig,
        clock: SimClock,
    ) -> Result<Database> {
        let log = Arc::new(LogManager::new(config.log.clone()));
        Self::assemble(fm, None, log, clock, config, true)
    }

    /// Open a database over an already-consistent file and log (no
    /// recovery). Used by backup/restore, which rebuilds the file itself.
    pub fn open_existing(
        fm_mem: Arc<MemFileManager>,
        log: Arc<LogManager>,
        clock: SimClock,
        config: DbConfig,
    ) -> Result<Database> {
        let fm: Arc<dyn IoBackend> = fm_mem.clone();
        Self::assemble(fm, Some(fm_mem), log, clock, config, false)
    }

    fn make_parts(
        fm: Arc<dyn IoBackend>,
        log: Arc<LogManager>,
        config: &DbConfig,
    ) -> Arc<EngineParts> {
        let io = PoolIoConfig::batched(config.io_batch_pages, config.writeback_workers);
        let pool = Arc::new(BufferPool::with_io(
            fm,
            log.clone(),
            config.buffer_pages,
            config.buffer_shards,
            io,
        ));
        Arc::new(EngineParts {
            pool,
            log,
            latches: Arc::new(ObjectLatches::new()),
            alloc_lock: Mutex::new(()),
            mod_gate: RwLock::new(()),
            cow_sinks: RwLock::new(Vec::new()),
            cow_token: AtomicU64::new(1),
            fpi_interval: config.fpi_interval,
        })
    }

    fn assemble(
        fm: Arc<dyn IoBackend>,
        fm_mem: Option<Arc<MemFileManager>>,
        log: Arc<LogManager>,
        clock: SimClock,
        config: DbConfig,
        bootstrap: bool,
    ) -> Result<Database> {
        let parts = Self::make_parts(fm, log, &config);
        Self::assemble_from_parts(parts, fm_mem, clock, config, bootstrap)
    }

    fn assemble_from_parts(
        parts: Arc<EngineParts>,
        fm_mem: Option<Arc<MemFileManager>>,
        clock: SimClock,
        config: DbConfig,
        bootstrap: bool,
    ) -> Result<Database> {
        let txns = Arc::new(TxnManager::new());
        let locks = Arc::new(LockManager::new(config.lock_timeout));
        let retention = Arc::new(AtomicU64::new(config.retention_micros));

        let sys = if bootstrap {
            // Bootstrap: system trees + boot page, all logged in one txn.
            let txn = txns.begin();
            let store = EngineStore::new(&parts, &txn);
            let tables = BTree::create(&store, ObjectId::SYS_TABLES)?;
            let columns = BTree::create(&store, ObjectId::SYS_COLUMNS)?;
            let indexes = BTree::create(&store, ObjectId::SYS_INDEXES)?;
            boot::initialize_boot(
                &store,
                &BootInfo {
                    sys_tables_root: tables.root,
                    sys_columns_root: columns.root,
                    sys_indexes_root: indexes.root,
                    next_object_id: ObjectId::FIRST_USER.0,
                    fpi_interval: config.fpi_interval,
                    retention_micros: config.retention_micros,
                },
            )?;
            let mut commit = LogRecord {
                lsn: Lsn::NULL,
                txn: txn.id,
                prev_lsn: txn.last_lsn(),
                page: PageId::INVALID,
                prev_page_lsn: Lsn::NULL,
                object: ObjectId::NONE,
                undo_next: Lsn::NULL,
                flags: 0,
                payload: LogPayload::Commit {
                    at: Timestamp::ZERO,
                },
            };
            let commit_range = parts.log.append_stamped(&mut commit, &|| clock.now());
            parts.log.flush_up_to(commit_range.end);
            txns.finish(txn.id);
            SysTrees {
                tables,
                columns,
                indexes,
            }
        } else {
            let txn = txns.begin();
            let store = EngineStore::new(&parts, &txn);
            let boot = boot::read_boot(&store)?;
            // durable settings win over construction defaults
            retention.store(boot.retention_micros, Ordering::Release);
            let sys = SysTrees::from_boot(&boot);
            txns.finish(txn.id);
            sys
        };

        let snapshots: Arc<Mutex<HashMap<String, Arc<AsOfSnapshot>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let metrics = Self::build_metrics(&parts, &txns, &snapshots);
        let background_errors: Arc<Mutex<Vec<(String, Error)>>> = Arc::new(Mutex::new(Vec::new()));
        let checkpointer = (config.checkpoint_interval_bytes > 0).then(|| {
            Checkpointer::start(MaintenanceCtx {
                parts: parts.clone(),
                txns: txns.clone(),
                clock: clock.clone(),
                interval: config.checkpoint_interval_bytes,
                retention_micros: retention.clone(),
                snapshots: snapshots.clone(),
                errors: background_errors.clone(),
            })
        });
        let db = Database {
            parts,
            fm_mem,
            txns,
            locks,
            clock,
            config,
            sys,
            table_cache: RwLock::new(HashMap::new()),
            name_cache: RwLock::new(HashMap::new()),
            retention_micros: retention,
            background_errors,
            snapshots,
            metrics,
            last_recovery: Mutex::new(None),
            checkpointer,
        };
        if bootstrap {
            db.checkpoint()?;
        }
        Ok(db)
    }

    /// Compose the engine-wide metrics registry: every layer's counters
    /// under stable names, plus the obs event/histogram source. Sources
    /// only read (atomics and one snapshot-map lock), so a registry
    /// snapshot never blocks the write path.
    fn build_metrics(
        parts: &Arc<EngineParts>,
        txns: &Arc<TxnManager>,
        snapshots: &Arc<Mutex<HashMap<String, Arc<AsOfSnapshot>>>>,
    ) -> Arc<MetricsRegistry> {
        let reg = MetricsRegistry::new();
        reg.register(Box::new(IoStatsSource {
            prefix: "io_data",
            stats: parts.pool.file_manager().io_stats().clone(),
        }));
        reg.register(Box::new(IoStatsSource {
            prefix: "io_log",
            stats: parts.log.io_stats().clone(),
        }));
        let pool = parts.pool.clone();
        reg.register(Box::new(FnSource(move |out: &mut MetricsSnapshot| {
            let s = pool.stats();
            out.counter("pool_hits", s.hits);
            out.counter("pool_misses", s.misses);
            out.counter("pool_evictions", s.evictions);
            out.counter("pool_map_contended", s.map_contended);
            out.counter("pool_pinned", pool.pinned_frames() as u64);
        })));
        let log = parts.log.clone();
        reg.register(Box::new(FnSource(move |out: &mut MetricsSnapshot| {
            out.counter("log_total_bytes", log.total_bytes());
            out.counter("log_retained_bytes", log.retained_bytes());
        })));
        let t = txns.clone();
        reg.register(Box::new(FnSource(move |out: &mut MetricsSnapshot| {
            out.counter("txn_active", t.active_count() as u64);
        })));
        let snaps = snapshots.clone();
        reg.register(Box::new(FnSource(move |out: &mut MetricsSnapshot| {
            let snaps = snaps.lock();
            let mut side_pages = 0u64;
            let mut view = rewind_snapshot::stats::SnapshotStatsView::default();
            for s in snaps.values() {
                side_pages += s.side_pages() as u64;
                let v = s.stats();
                view.side_hits += v.side_hits;
                view.pages_prepared += v.pages_prepared;
                view.records_undone += v.records_undone;
                view.fpi_restores += v.fpi_restores;
                view.undo_records += v.undo_records;
            }
            out.counter("asof_open", snaps.len() as u64);
            out.counter("asof_side_pages", side_pages);
            out.counter("asof_side_hits", view.side_hits);
            out.counter("asof_pages_prepared", view.pages_prepared);
            out.counter("asof_records_undone", view.records_undone);
            out.counter("asof_fpi_restores", view.fpi_restores);
            out.counter("asof_bg_undo_records", view.undo_records);
        })));
        reg.register(Box::new(parts.log.obs().clone()));
        Arc::new(reg)
    }

    // ---- accessors -----------------------------------------------------------

    /// The simulated wall clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Shared engine internals (used by snapshots, backup and benches).
    pub fn parts(&self) -> &Arc<EngineParts> {
        &self.parts
    }

    /// The write-ahead log.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.parts.log
    }

    /// The in-memory file backend, when applicable (backup support).
    pub fn mem_file(&self) -> Option<&Arc<MemFileManager>> {
        self.fm_mem.as_ref()
    }

    /// Data-file I/O counters.
    pub fn data_io(&self) -> IoSnapshot {
        self.parts.pool.file_manager().io_stats().snapshot()
    }

    /// Buffer pool access counters (hits, misses, evictions, shard-lock
    /// contention).
    pub fn pool_stats(&self) -> rewind_buffer::PoolStatsView {
        self.parts.pool.stats()
    }

    /// Log I/O counters.
    pub fn log_io(&self) -> IoSnapshot {
        self.parts.log.io_stats().snapshot()
    }

    /// The engine's observability handle (event ring + latency
    /// histograms). Owned by the log manager; see `LogConfig::obs`.
    pub fn obs(&self) -> &Arc<Obs> {
        self.parts.log.obs()
    }

    /// The unified metrics registry (register extra sources here).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// One coherent point-in-time snapshot of every registered metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Phase timings of the restart that produced this instance; `None`
    /// for instances not created by [`Database::recover`].
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery.lock().clone()
    }

    /// Current engine statistics.
    pub fn stats(&self) -> Result<DbStats> {
        let txn = self.txns.begin();
        let store = EngineStore::new(&self.parts, &txn);
        let allocated = rewind_access::allocator::allocated_count(&store)?;
        self.txns.finish(txn.id);
        Ok(DbStats {
            allocated_pages: allocated,
            log_bytes: self.parts.log.total_bytes(),
            log_retained_bytes: self.parts.log.retained_bytes(),
            active_txns: self.txns.active_count(),
        })
    }

    // ---- transactions ---------------------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        Txn {
            shared: self.txns.begin(),
        }
    }

    /// The live-engine store bound to `txn`.
    pub fn store<'a>(&'a self, txn: &'a Txn) -> EngineStore<'a> {
        EngineStore::new(&self.parts, &txn.shared)
    }

    /// Commit: append the commit record stamped with the wall clock (the
    /// stamp SplitLSN search keys on, §5.1), force the log, release locks.
    ///
    /// The commit path is the group-commit fast path: stamp+append happen
    /// under ONE writer-mutex acquisition (`append_stamped` folds the clock
    /// read into the append, keeping stamps monotone in LSN order without a
    /// separate stamp lock), and the flush coalesces with concurrent
    /// committers — N commits pay one physical flush, each charged exactly
    /// its own framed bytes.
    ///
    /// Once the flush succeeds the commit is infallible: background
    /// maintenance (the post-commit checkpoint) can no longer fail it.
    /// Maintenance errors are deferred to
    /// [`Database::take_background_errors`] instead of being reported as a
    /// failure of a transaction that is, in fact, durable.
    pub fn commit(&self, txn: Txn) -> Result<()> {
        let shared = txn.shared;
        if shared.state() != TxnState::Active {
            return Err(Error::TxnFinished(shared.id));
        }
        if shared.last_lsn().is_valid() {
            let obs = self.parts.log.obs();
            let commit_started = obs.now_us();
            obs.record(EventKind::CommitBegin, shared.last_lsn().0, shared.id.0, 0);
            let mut rec = LogRecord {
                lsn: Lsn::NULL,
                txn: shared.id,
                prev_lsn: shared.last_lsn(),
                page: PageId::INVALID,
                prev_page_lsn: Lsn::NULL,
                object: ObjectId::NONE,
                undo_next: Lsn::NULL,
                flags: 0,
                payload: LogPayload::Commit {
                    at: Timestamp::ZERO,
                },
            };
            // The returned range's end is the commit record's exact frame
            // end: flushing through it needs no second writer-mutex trip.
            let range = self
                .parts
                .log
                .append_stamped(&mut rec, &|| self.clock.now());
            shared.record_logged(range.start);
            self.parts.log.flush_up_to(range.end);
            // The flush returned: this commit is durable. One histogram
            // sample per durable commit — the count-exactness invariant
            // the obs tests and the CI smoke gate assert.
            let dur = obs.now_us().saturating_sub(commit_started);
            obs.commit_latency_us(dur);
            obs.record(EventKind::CommitDurable, range.start.0, shared.id.0, dur);
        }
        shared.set_state(TxnState::Committed);
        self.locks.release_all(shared.id);
        self.txns.finish(shared.id);
        // Checkpoint cadence runs off the commit path: when this commit
        // crossed the interval, kick the daemon and return immediately.
        if self.checkpoint_due() {
            if let Some(c) = &self.checkpointer {
                c.kick();
            }
        }
        Ok(())
    }

    /// Drain errors from deferred background maintenance (e.g. a checkpoint
    /// that failed after a commit was already durable). Empty in healthy
    /// operation; monitoring should poll this. Tests wanting deterministic
    /// observation should [`Database::quiesce_checkpoints`] first.
    pub fn take_background_errors(&self) -> Vec<(String, Error)> {
        std::mem::take(&mut *self.background_errors.lock())
    }

    /// Wait until the background checkpoint daemon has processed every kick
    /// issued so far. After this returns, maintenance triggered by earlier
    /// commits has completed (successfully or into
    /// [`Database::take_background_errors`]). No-op when the daemon is
    /// disabled (`checkpoint_interval_bytes == 0`).
    pub fn quiesce_checkpoints(&self) {
        if let Some(c) = &self.checkpointer {
            c.quiesce();
        }
    }

    /// Roll the transaction back: walk its chain writing CLRs (§4.2-2),
    /// then release locks.
    pub fn rollback(&self, txn: Txn) -> Result<()> {
        let shared = txn.shared;
        if shared.state() != TxnState::Active {
            return Err(Error::TxnFinished(shared.id));
        }
        if shared.last_lsn().is_valid() {
            self.append_marker(&shared, LogPayload::Abort);
            let store = EngineStore::new(&self.parts, &shared);
            let resolver = |obj: ObjectId| self.resolve_access_uncached(obj);
            rewind_recovery::rollback_chain(&store, &self.parts.log, shared.last_lsn(), &resolver)?;
            let end = self.append_marker(&shared, LogPayload::End);
            // Record-precise: force exactly through our End marker, not
            // whatever other transactions have appended since.
            self.parts.log.flush_to(end);
        }
        shared.set_state(TxnState::Aborted);
        self.locks.release_all(shared.id);
        self.txns.finish(shared.id);
        // DDL may have been undone; drop caches wholesale.
        self.invalidate_catalog();
        Ok(())
    }

    fn append_marker(&self, shared: &TxnShared, payload: LogPayload) -> Lsn {
        let rec = LogRecord {
            lsn: Lsn::NULL,
            txn: shared.id,
            prev_lsn: shared.last_lsn(),
            page: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            object: ObjectId::NONE,
            undo_next: Lsn::NULL,
            flags: 0,
            payload,
        };
        let lsn = self.parts.log.append(&rec);
        shared.record_logged(lsn);
        lsn
    }

    /// Run `f` inside a fresh transaction, committing on success and rolling
    /// back on error.
    pub fn with_txn<R>(&self, f: impl FnOnce(&Txn) -> Result<R>) -> Result<R> {
        let txn = self.begin();
        match f(&txn) {
            Ok(r) => {
                self.commit(txn)?;
                Ok(r)
            }
            Err(e) => {
                let _ = self.rollback(txn);
                Err(e)
            }
        }
    }

    // ---- catalog / DDL ---------------------------------------------------------

    /// Look up a table by name (cached).
    pub fn table(&self, name: &str) -> Result<Arc<TableInfo>> {
        if let Some(&id) = self.name_cache.read().get(name) {
            if let Some(info) = self.table_cache.read().get(&id) {
                return Ok(info.clone());
            }
        }
        let txn = self.begin();
        let store = self.store(&txn);
        let found = catalog::read_table_by_name(&store, &self.sys, name)?;
        self.txns.finish(txn.shared.id);
        match found {
            Some(info) => {
                let info = Arc::new(info);
                self.name_cache.write().insert(name.to_string(), info.id.0);
                self.table_cache.write().insert(info.id.0, info.clone());
                Ok(info)
            }
            None => Err(Error::TableNotFound(name.to_string())),
        }
    }

    /// List all user tables.
    pub fn list_tables(&self) -> Result<Vec<TableInfo>> {
        let txn = self.begin();
        let store = self.store(&txn);
        let out = catalog::list_tables(&store, &self.sys)?;
        self.txns.finish(txn.shared.id);
        Ok(out)
    }

    pub(crate) fn invalidate_catalog(&self) {
        self.table_cache.write().clear();
        self.name_cache.write().clear();
    }

    /// Create a B-Tree table.
    pub fn create_table(&self, txn: &Txn, name: &str, schema: Schema) -> Result<ObjectId> {
        self.create_table_kind(txn, name, schema, TableKind::Tree)
    }

    /// Create a heap table.
    pub fn create_heap_table(&self, txn: &Txn, name: &str, schema: Schema) -> Result<ObjectId> {
        self.create_table_kind(txn, name, schema, TableKind::Heap)
    }

    fn create_table_kind(
        &self,
        txn: &Txn,
        name: &str,
        schema: Schema,
        kind: TableKind,
    ) -> Result<ObjectId> {
        let store = self.store(txn);
        // DDL serializes on the catalog.
        self.locks
            .acquire(txn.id(), &LockKey::table(ObjectId::SYS_TABLES), LockMode::X)?;
        if catalog::read_table_by_name(&store, &self.sys, name)?.is_some() {
            return Err(Error::InvalidArg(format!("table '{name}' already exists")));
        }
        let id = ObjectId(boot::allocate_object_id(&store)?);
        let root = match kind {
            TableKind::Tree => BTree::create(&store, id)?.root,
            TableKind::Heap => Heap::create(&store, id)?.first,
        };
        let info = TableInfo {
            id,
            name: name.to_string(),
            kind,
            root,
            schema: schema.clone(),
            indexes: Vec::new(),
        };
        self.sys
            .tables
            .insert(&store, &catalog::table_key(id), &catalog::table_row(&info))?;
        for (ord, col) in schema.columns.iter().enumerate() {
            let key_pos = schema.key.iter().position(|&k| k == ord);
            self.sys.columns.insert(
                &store,
                &catalog::column_key(id, ord),
                &catalog::column_row(id, ord, col, key_pos),
            )?;
        }
        self.invalidate_catalog();
        Ok(id)
    }

    /// Create a secondary index over named columns of a B-Tree table.
    pub fn create_index(
        &self,
        txn: &Txn,
        table_name: &str,
        index_name: &str,
        cols: &[&str],
    ) -> Result<ObjectId> {
        let store = self.store(txn);
        self.locks
            .acquire(txn.id(), &LockKey::table(ObjectId::SYS_TABLES), LockMode::X)?;
        let info = catalog::read_table_by_name(&store, &self.sys, table_name)?
            .ok_or_else(|| Error::TableNotFound(table_name.to_string()))?;
        if info.indexes.iter().any(|i| i.name == index_name) {
            return Err(Error::InvalidArg(format!(
                "index '{index_name}' already exists"
            )));
        }
        // Block concurrent writers while building.
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::X)?;
        let col_ords: Vec<usize> = cols
            .iter()
            .map(|c| info.schema.column_index(c))
            .collect::<Result<_>>()?;
        let id = ObjectId(boot::allocate_object_id(&store)?);
        let tree = BTree::create(&store, id)?;
        let idx = IndexInfo {
            id,
            name: index_name.to_string(),
            root: tree.root,
            cols: col_ords,
        };
        // Backfill from existing rows: index entries map
        // (indexed cols + pk) -> pk bytes so base rows can be fetched.
        let base = info.tree()?;
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        base.scan(
            &store,
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
            |k, v| {
                let row = rewind_access::value::decode_row(v)?;
                entries.push((info.index_key_bytes(&idx, &row)?, k.to_vec()));
                Ok(true)
            },
        )?;
        for (ikey, pk) in entries {
            tree.insert(&store, &ikey, &pk)?;
        }
        self.sys.indexes.insert(
            &store,
            &catalog::index_key(id),
            &catalog::index_row(info.id, &idx),
        )?;
        self.invalidate_catalog();
        Ok(id)
    }

    /// Drop a secondary index: delete its catalog row and deallocate its
    /// pages (content left in place, so it too is recoverable as-of).
    pub fn drop_index(&self, txn: &Txn, table_name: &str, index_name: &str) -> Result<()> {
        let store = self.store(txn);
        self.locks
            .acquire(txn.id(), &LockKey::table(ObjectId::SYS_TABLES), LockMode::X)?;
        let info = catalog::read_table_by_name(&store, &self.sys, table_name)?
            .ok_or_else(|| Error::TableNotFound(table_name.to_string()))?;
        let idx = info.index(index_name)?.clone();
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::X)?;
        let pages = idx.tree().collect_pages(&store)?;
        self.sys
            .indexes
            .delete(&store, &catalog::index_key(idx.id))?;
        for pid in pages {
            store.free_page(pid, ModKind::User)?;
        }
        self.invalidate_catalog();
        Ok(())
    }

    /// Drop a table: delete its catalog rows and deallocate its pages. Page
    /// *content* is left untouched (§4.2-1), which is exactly what makes the
    /// dropped table recoverable through an as-of snapshot.
    pub fn drop_table(&self, txn: &Txn, name: &str) -> Result<()> {
        let store = self.store(txn);
        self.locks
            .acquire(txn.id(), &LockKey::table(ObjectId::SYS_TABLES), LockMode::X)?;
        let info = catalog::read_table_by_name(&store, &self.sys, name)?
            .ok_or_else(|| Error::TableNotFound(name.to_string()))?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::X)?;

        // Collect every page first (catalog rows must still be readable).
        let mut pages: Vec<PageId> = Vec::new();
        match info.kind {
            TableKind::Tree => pages.extend(info.tree()?.collect_pages(&store)?),
            TableKind::Heap => pages.extend(info.heap()?.collect_pages(&store)?),
        }
        for idx in &info.indexes {
            pages.extend(idx.tree().collect_pages(&store)?);
            self.sys
                .indexes
                .delete(&store, &catalog::index_key(idx.id))?;
        }
        self.sys
            .tables
            .delete(&store, &catalog::table_key(info.id))?;
        for ord in 0..info.schema.columns.len() {
            self.sys
                .columns
                .delete(&store, &catalog::column_key(info.id, ord))?;
        }
        for pid in pages {
            store.free_page(pid, ModKind::User)?;
        }
        self.invalidate_catalog();
        Ok(())
    }

    /// Truncate a B-Tree table: deallocate everything but the root and
    /// reformat the root as an empty leaf (old image logged as undo info).
    pub fn truncate_table(&self, txn: &Txn, name: &str) -> Result<()> {
        let store = self.store(txn);
        let info = self.table(name)?;
        self.locks
            .acquire(txn.id(), &LockKey::table(info.id), LockMode::X)?;
        let tree = info.tree()?;
        let pages = tree.collect_pages(&store)?;
        let root_image = store.with_page(tree.root, |p| Ok(Box::new(*p.image())))?;
        store.modify(
            tree.root,
            LogPayload::Reformat {
                object: info.id,
                ty: PageType::BTreeLeaf,
                level: 0,
                prev_image: root_image,
            },
            ModKind::User,
        )?;
        for pid in pages {
            if pid != tree.root {
                store.free_page(pid, ModKind::User)?;
            }
        }
        Ok(())
    }

    // ---- object resolution (rollback, recovery) --------------------------------

    /// Resolve an object id to its access method, reading the catalog fresh
    /// (rollback may be restoring the catalog rows it needs, so caches are
    /// not trusted).
    pub fn resolve_access_uncached(&self, obj: ObjectId) -> Result<AccessKind> {
        if obj == ObjectId::SYS_TABLES {
            return Ok(AccessKind::Tree(self.sys.tables));
        }
        if obj == ObjectId::SYS_COLUMNS {
            return Ok(AccessKind::Tree(self.sys.columns));
        }
        if obj == ObjectId::SYS_INDEXES {
            return Ok(AccessKind::Tree(self.sys.indexes));
        }
        let txn = self.txns.begin();
        let store = EngineStore::new(&self.parts, &txn);
        let result = (|| {
            if let Some(t) = catalog::read_table_by_id(&store, &self.sys, obj)? {
                return Ok(match t.kind {
                    TableKind::Tree => AccessKind::Tree(t.tree()?),
                    TableKind::Heap => AccessKind::Heap(t.heap()?),
                });
            }
            if let Some((_, idx)) = catalog::read_index_by_id(&store, &self.sys, obj)? {
                return Ok(AccessKind::Tree(idx.tree()));
            }
            Err(Error::ObjectNotFound(obj))
        })();
        self.txns.finish(txn.id);
        result
    }

    // ---- checkpoints & retention ------------------------------------------------

    /// Take a fuzzy checkpoint now. Marker stamps are issued under the log's
    /// writer mutex — the same sequencer as commit stamps — so they can
    /// never be older than the last indexed commit.
    pub fn checkpoint(&self) -> Result<Lsn> {
        take_checkpoint(&self.parts.log, &self.txns, &self.parts.pool, &self.clock)
    }

    /// Whether enough log has accumulated since the last checkpoint to
    /// warrant another (always false when the interval is 0).
    fn checkpoint_due(&self) -> bool {
        let interval = self.config.checkpoint_interval_bytes;
        if interval == 0 {
            return false;
        }
        let last = self
            .parts
            .log
            .checkpoint_before(Lsn::MAX)
            .map(|c| c.end_lsn)
            .unwrap_or(Lsn::FIRST);
        self.parts.log.tail_lsn().bytes_since(last) >= interval
    }

    /// Synchronously take a checkpoint if enough log accumulated since the
    /// last one; also enforces the retention policy. Manual-maintenance
    /// entry point — commits instead kick the background daemon, which
    /// takes *incremental* checkpoints off the commit path.
    pub fn maybe_checkpoint(&self) -> Result<()> {
        if self.checkpoint_due() {
            self.checkpoint()?;
            self.enforce_retention();
        }
        Ok(())
    }

    /// `ALTER DATABASE SET UNDO_INTERVAL` (paper §4.3): retain enough log to
    /// rewind `interval` into the past. Durable (logged on the boot page).
    pub fn set_undo_interval(&self, interval: Duration) -> Result<()> {
        let micros = interval.as_micros() as u64;
        self.with_txn(|txn| {
            let store = self.store(txn);
            boot::set_retention(&store, micros)
        })?;
        self.retention_micros.store(micros, Ordering::Release);
        Ok(())
    }

    /// The configured retention period.
    pub fn undo_interval(&self) -> Duration {
        Duration::from_micros(self.retention_micros.load(Ordering::Acquire))
    }

    /// Truncate log that is older than the retention period and not needed
    /// by crash recovery, active transactions or open snapshots.
    pub fn enforce_retention(&self) {
        enforce_retention_on(
            &self.parts,
            &self.txns,
            &self.clock,
            self.retention_micros.load(Ordering::Acquire),
            &self.snapshots,
        );
    }

    // ---- snapshots ----------------------------------------------------------------

    /// `CREATE DATABASE <name> AS SNAPSHOT OF <db> AS OF '<t>'` (paper §5.1):
    /// build an as-of snapshot and start its background undo. The snapshot
    /// is queryable immediately.
    pub fn create_snapshot_asof(&self, name: &str, t: Timestamp) -> Result<SnapshotDb> {
        let snap = AsOfSnapshot::create(name, &self.parts, t)?;
        self.finish_snapshot_setup(name, snap)
    }

    /// An as-of snapshot split at an exact LSN (the repair engine's
    /// witness: "just before transaction T's first record" is an LSN, not a
    /// wall-clock time). `label` stamps the snapshot for reporting; the
    /// split alone determines its contents.
    pub fn create_snapshot_at_lsn(
        &self,
        name: &str,
        label: Timestamp,
        split: Lsn,
    ) -> Result<SnapshotDb> {
        let snap = AsOfSnapshot::create_at_lsn(name, &self.parts, label, split)?;
        self.finish_snapshot_setup(name, snap)
    }

    /// A regular (copy-on-write) snapshot of the current state (§2.2).
    pub fn create_snapshot(&self, name: &str) -> Result<SnapshotDb> {
        let snap = AsOfSnapshot::create_regular(name, &self.parts, self.clock.now())?;
        self.finish_snapshot_setup(name, snap)
    }

    fn finish_snapshot_setup(&self, name: &str, snap: Arc<AsOfSnapshot>) -> Result<SnapshotDb> {
        {
            let mut snaps = self.snapshots.lock();
            if snaps.contains_key(name) {
                snap.detach(&self.parts);
                return Err(Error::InvalidArg(format!(
                    "snapshot '{name}' already exists"
                )));
            }
            snaps.insert(name.to_string(), snap.clone());
        }
        // Background logical undo (§5.2): resolve objects through the
        // *snapshot's own* catalog (as of the SplitLSN).
        let undo_snap = snap.clone();
        snap.spawn_undo(Box::new(move |obj| SnapshotDb::resolve_on(&undo_snap, obj)));
        Ok(SnapshotDb::open(snap)?.with_scan_budget(self.config.asof_scan_budget))
    }

    /// Retrieve an open snapshot by name.
    pub fn snapshot(&self, name: &str) -> Result<SnapshotDb> {
        let snap = self
            .snapshots
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::SnapshotNotFound(name.to_string()))?;
        // Re-fetched handles honour the configured scan budget just like
        // freshly created ones.
        Ok(SnapshotDb::open(snap)?.with_scan_budget(self.config.asof_scan_budget))
    }

    /// Drop a snapshot: detach its COW sink and release its log pin.
    pub fn drop_snapshot(&self, name: &str) -> Result<()> {
        let snap = self
            .snapshots
            .lock()
            .remove(name)
            .ok_or_else(|| Error::SnapshotNotFound(name.to_string()))?;
        snap.detach(&self.parts);
        Ok(())
    }

    // ---- crash simulation & restart recovery ---------------------------------------

    /// Tear the instance down as a crash would: volatile state (buffer pool,
    /// lock tables, unflushed log tail) is lost; the file, the durable log
    /// and the clock survive.
    pub fn simulate_crash(self) -> CrashArtifacts {
        // Stop maintenance first: a daemon checkpoint racing the teardown
        // would append log records after the "crash" point.
        if let Some(c) = &self.checkpointer {
            c.stop();
        }
        // Settle background writeback before declaring the crash point:
        // every queued batch either lands now or never — no page write can
        // race the artifacts after this returns.
        self.parts.pool.quiesce_writeback();
        self.parts.pool.drop_cache();
        self.parts.log.discard_unflushed();
        CrashArtifacts {
            fm: self.parts.pool.file_manager().clone(),
            fm_mem: self.fm_mem.clone(),
            log: self.parts.log.clone(),
            clock: self.clock.clone(),
            config: self.config.clone(),
        }
    }

    /// ARIES restart: analysis, redo, undo (with CLRs), then reopen.
    pub fn recover(artifacts: CrashArtifacts) -> Result<Database> {
        let CrashArtifacts {
            fm,
            fm_mem,
            log,
            clock,
            config,
        } = artifacts;
        log.discard_unflushed();
        // Media hardening: a CRC-bad frame in the surviving log is treated
        // as end-of-log at the damage point — the same semantics a real
        // restart applies to a half-written tail. Everything before the
        // first bad frame recovers normally; nothing after it can be
        // trusted (frame lengths chain, so one bad frame unmoors the rest).
        log.discard_corrupt_tail();
        // Repeat history before touching any structure (the boot page itself
        // may only exist in the log). Analysis and redo run as ONE pipelined
        // forward scan, with redo hash-partitioned by page across workers —
        // accounting is bit-identical at every worker count.
        let parts = Self::make_parts(fm, log, &config);
        let obs = parts.log.obs().clone();
        let workers = match config.redo_workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let RestartOutcome {
            analysis,
            redo,
            analysis_us,
            redo_us,
        } = pipelined_restart(&parts.log, &parts.pool, Lsn::MAX, workers)?;
        obs.record(
            EventKind::RecoveryAnalysis,
            analysis.redo_start.0,
            analysis.records_scanned,
            analysis_us,
        );
        obs.record(
            EventKind::RecoveryRedo,
            analysis.redo_start.0,
            redo.applied,
            redo_us,
        );

        let db = Self::assemble_from_parts(parts, fm_mem, clock, config, false)?;
        db.txns.bump_next_id(analysis.max_txn_id);

        // Undo losers in a single merged descending-LSN sweep (CLRs logged
        // per transaction).
        let mut shared: HashMap<u64, Arc<TxnShared>> = HashMap::new();
        let mut heap: BinaryHeap<(Lsn, TxnId)> = BinaryHeap::new();
        for loser in &analysis.losers {
            shared.insert(loser.id.0, db.txns.adopt(loser.id, loser.last_lsn));
            heap.push((loser.last_lsn, loser.id));
        }
        let resolver = |obj: ObjectId| db.resolve_access_uncached(obj);
        let mut finished: Vec<Arc<TxnShared>> = Vec::new();
        // Monotonic timebase, not `obs.now_us()`: the report must carry
        // real durations even on a disabled-obs engine.
        let undo_started = rewind_obs::monotonic_us();
        let mut records_undone = 0u64;
        while let Some((lsn, txn)) = heap.pop() {
            let rec = db.parts.log.get_record(lsn)?;
            let sh = shared[&txn.0].clone();
            let next = if rec.is_clr() {
                rec.undo_next
            } else {
                let store = EngineStore::new(&db.parts, &sh);
                // Position the store's chain at this record so CLRs chain
                // correctly even across restarts.
                sh.set_last_lsn(lsn);
                undo_record(&store, &rec, &resolver)?;
                records_undone += 1;
                rec.prev_lsn
            };
            if next.is_valid() {
                heap.push((next, txn));
            } else {
                finished.push(sh);
            }
        }
        // Close every fully-undone loser with ONE batched append: all the
        // End markers are framed under a single writer-mutex acquisition.
        let mut ends: Vec<LogRecord> = finished
            .iter()
            .map(|sh| LogRecord {
                lsn: Lsn::NULL,
                txn: sh.id,
                prev_lsn: sh.last_lsn(),
                page: PageId::INVALID,
                prev_page_lsn: Lsn::NULL,
                object: ObjectId::NONE,
                undo_next: Lsn::NULL,
                flags: 0,
                payload: LogPayload::End,
            })
            .collect();
        db.parts.log.append_batch(&mut ends);
        for (sh, rec) in finished.iter().zip(&ends) {
            sh.record_logged(rec.lsn);
            db.txns.finish(sh.id);
        }
        db.parts.log.flush_to(db.parts.log.tail_lsn());
        let undo_us = rewind_obs::monotonic_us().saturating_sub(undo_started);
        obs.record(EventKind::RecoveryUndo, 0, records_undone, undo_us);
        let report = RecoveryReport {
            analysis_us,
            records_scanned: analysis.records_scanned,
            losers: analysis.losers.len() as u64,
            loser_txns: analysis.losers.iter().map(|l| l.id).collect(),
            redo_us,
            records_redone: redo.applied,
            redo_workers: redo.per_worker.len() as u64,
            redone_per_worker: redo.per_worker,
            undo_us,
            records_undone,
        };
        *db.last_recovery.lock() = Some(report);
        db.checkpoint()?;
        Ok(db)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        // Join the daemon so a checkpoint can't run against parts whose
        // other owners are being torn down. Idempotent with the explicit
        // stop in `simulate_crash`.
        if let Some(c) = &self.checkpointer {
            c.stop();
        }
        // Then settle writeback: with the daemon joined no new batches can
        // be submitted, so after the drain the queue is empty and the
        // pool's worker threads park until the pool itself drops.
        self.parts.pool.quiesce_writeback();
    }
}

// ---- background checkpoint daemon --------------------------------------------

/// Record a background-maintenance failure without failing the foreground
/// operation. Bounded: with nothing draining the channel, a persistently
/// failing device must not grow memory per checkpoint — only the most
/// recent errors are retained, oldest dropped first.
fn defer_error(errors: &Mutex<Vec<(String, Error)>>, what: &str, e: Error) {
    const MAX_DEFERRED: usize = 64;
    let mut errs = errors.lock();
    if errs.len() >= MAX_DEFERRED {
        errs.remove(0);
    }
    errs.push((what.to_string(), e));
}

/// Truncate log older than `retention_micros` and not needed by crash
/// recovery, active transactions or open snapshots. Free-standing so the
/// checkpoint daemon can run it without a `Database` handle.
fn enforce_retention_on(
    parts: &EngineParts,
    txns: &TxnManager,
    clock: &SimClock,
    retention_micros: u64,
    snapshots: &Mutex<HashMap<String, Arc<AsOfSnapshot>>>,
) {
    if retention_micros == 0 {
        return;
    }
    let floor_t = clock.now().minus_micros(retention_micros);
    let Some(ck) = parts.log.checkpoint_before_time(floor_t) else {
        return;
    };
    let mut cut = ck.begin_lsn;
    if let Some(l) = txns.oldest_active_first_lsn() {
        cut = cut.min(l);
    }
    for e in parts.pool.dirty_page_table() {
        cut = cut.min(e.rec_lsn);
    }
    for snap in snapshots.lock().values() {
        cut = cut.min(snap.min_needed_lsn());
    }
    parts.log.truncate_before(cut);
}

/// Everything the checkpoint daemon needs, cloned out of the database so
/// the thread borrows nothing.
struct MaintenanceCtx {
    parts: Arc<EngineParts>,
    txns: Arc<TxnManager>,
    clock: SimClock,
    interval: u64,
    retention_micros: Arc<AtomicU64>,
    snapshots: Arc<Mutex<HashMap<String, Arc<AsOfSnapshot>>>>,
    errors: Arc<Mutex<Vec<(String, Error)>>>,
}

#[derive(Default)]
struct CkptState {
    /// Checkpoint generation requested by commits.
    kicks: u64,
    /// Generation the daemon has fully processed.
    done: u64,
    shutdown: bool,
}

struct CheckpointerShared {
    state: Mutex<CkptState>,
    cv: Condvar,
}

/// The background checkpoint daemon. Commits *kick* it when a commit
/// crosses [`DbConfig::checkpoint_interval_bytes`]; it responds with a
/// fuzzy *incremental* checkpoint (flushing only pages first dirtied
/// before `tail - interval`) plus retention enforcement, keeping the
/// crash-redo window proportional to the interval while commits never
/// stall behind a pool flush. Kicks issued while a checkpoint runs
/// coalesce: the daemon jumps `done` to the latest requested generation,
/// so a burst of commits costs at most one catch-up checkpoint.
struct Checkpointer {
    shared: Arc<CheckpointerShared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Checkpointer {
    fn start(ctx: MaintenanceCtx) -> Checkpointer {
        let shared = Arc::new(CheckpointerShared {
            state: Mutex::new(CkptState::default()),
            cv: Condvar::new(),
        });
        let sh = shared.clone();
        let handle = std::thread::spawn(move || loop {
            let target = {
                let mut st = sh.state.lock();
                while st.kicks == st.done && !st.shutdown {
                    sh.cv.wait(&mut st);
                }
                if st.kicks == st.done {
                    return; // shutdown with nothing pending
                }
                st.kicks
            };
            let cutoff = Lsn(ctx.parts.log.tail_lsn().0.saturating_sub(ctx.interval));
            match take_checkpoint_incremental(
                &ctx.parts.log,
                &ctx.txns,
                &ctx.parts.pool,
                &ctx.clock,
                cutoff,
            ) {
                Ok(_) => enforce_retention_on(
                    &ctx.parts,
                    &ctx.txns,
                    &ctx.clock,
                    ctx.retention_micros.load(Ordering::Acquire),
                    &ctx.snapshots,
                ),
                // Same label the synchronous path historically used, so
                // monitoring that matches on it keeps working.
                Err(e) => defer_error(&ctx.errors, "post-commit checkpoint", e),
            }
            let mut st = sh.state.lock();
            st.done = target;
            sh.cv.notify_all();
        });
        Checkpointer {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Request a checkpoint. Never blocks on the work itself.
    fn kick(&self) {
        let mut st = self.shared.state.lock();
        if !st.shutdown {
            st.kicks += 1;
            self.shared.cv.notify_all();
        }
    }

    /// Wait until every kick issued so far has been processed.
    fn quiesce(&self) {
        let mut st = self.shared.state.lock();
        while st.done != st.kicks && !st.shutdown {
            self.shared.cv.wait(&mut st);
        }
    }

    /// Stop and join the daemon (idempotent).
    fn stop(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}
