//! `rewind-core`: the database facade.
//!
//! [`Database`] ties the substrates together into the system the paper
//! describes: an ARIES storage engine (buffer pool, WAL, 2PL transactions,
//! logged B-Trees/heaps, a relational system catalog stored in B-Trees) that
//! can be **queried as of any time in the past** within a configured
//! retention period (paper §4.3/§5) and recovers user errors by snapshotting
//! the past and reconciling (§1):
//!
//! ```text
//! let db = Database::create(DbConfig::default())?;
//! // ... workload ...
//! db.set_undo_interval(Duration from hours(24));          // §4.3
//! let snap = db.create_snapshot_asof("before_oops", t)?;  // §5.1
//! let rows = snap.scan_all(&snap.table("orders")?)?;      // §5.3
//! restore_table_from_snapshot(&db, &snap, "orders", "orders_recovered")?;
//! ```
//!
//! Metadata is ordinary data: `sys_tables` / `sys_columns` / `sys_indexes`
//! are B-Trees like any other, so dropped tables are recoverable through the
//! same page-oriented undo (§3, §7.2).

pub mod boot;
pub mod catalog;
pub mod check;
pub mod database;
pub mod dml;
pub mod snapdb;

pub use catalog::{IndexInfo, TableInfo, TableKind};
pub use check::{check_consistency, CheckReport};
pub use database::{CrashArtifacts, Database, DbConfig, DbStats, Txn};
pub use snapdb::{restore_table_from_snapshot, SnapshotDb};

// Re-export the vocabulary types users need.
pub use rewind_access::{Column, DataType, Row, Schema, Value};
pub use rewind_common::{
    Error, IoSnapshot, Lsn, MediaModel, ObjectId, PageId, Result, SimClock, Timestamp, TxnId,
};
