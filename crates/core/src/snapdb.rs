//! Querying an as-of snapshot — and recovering data from it.
//!
//! [`SnapshotDb`] gives an as-of snapshot the same query surface as the live
//! database (paper §5: "presented to the user as a transactionally
//! consistent read-only database that supports arbitrary queries"). All
//! reads run through the snapshot's page-access protocol, so prior versions
//! are produced only for the data actually touched. Primary-page reads go
//! through the (sharded) buffer manager with a shared latch, so concurrent
//! as-of queries scale with live traffic instead of serializing behind a
//! global page-table lock.
//!
//! Reads gate on the locks reacquired for transactions in flight at the
//! SplitLSN (§5.2): a read that would observe such a row blocks until the
//! background undo releases the lock, then retries.
//!
//! [`restore_table_from_snapshot`] implements the paper's §1 recovery
//! workflow: read the dropped/damaged table's schema from the snapshot
//! catalog, recreate it in the live database, and `INSERT … SELECT` the
//! rows across.

use crate::catalog::{self, SysTrees, TableInfo, TableKind};
use crate::database::Database;
use parking_lot::RwLock;
use rewind_access::keys::{encode_key, prefix_upper_bound};
use rewind_access::value::decode_row;
use rewind_access::{Row, Value};
use rewind_buffer::ScanPartition;
use rewind_common::{Error, Lsn, ObjectId, PageId, Result, Timestamp};
use rewind_recovery::AccessKind;
use rewind_snapshot::{AsOfSnapshot, SnapshotStats};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// A queryable handle over an as-of (or regular) snapshot.
#[derive(Clone)]
pub struct SnapshotDb {
    snap: Arc<AsOfSnapshot>,
    sys: SysTrees,
    cache: Arc<RwLock<HashMap<String, Arc<TableInfo>>>>,
    /// Worker threads used to prepare a table's leaf pages ahead of range
    /// scans (1 = serial, the default).
    prefetch_workers: usize,
    /// Frame budget for the scan partition bulk preparations run in
    /// (0 = the snapshot's default). Bulk as-of streams larger than the
    /// primary's buffer pool disturb at most this many of its frames.
    scan_budget: usize,
}

impl SnapshotDb {
    /// Wrap an [`AsOfSnapshot`], resolving its (as-of) catalog roots.
    pub fn open(snap: Arc<AsOfSnapshot>) -> Result<SnapshotDb> {
        let sys = SysTrees::load(&snap.store())?;
        Ok(SnapshotDb {
            snap,
            sys,
            cache: Arc::new(RwLock::new(HashMap::new())),
            prefetch_workers: 1,
            scan_budget: 0,
        })
    }

    /// Return a handle whose range scans fan out page preparation across
    /// `workers` threads (ROADMAP perf item (c)). With `workers <= 1` the
    /// scan path is exactly the serial protocol.
    pub fn with_prefetch_workers(mut self, workers: usize) -> SnapshotDb {
        self.prefetch_workers = workers.max(1);
        self
    }

    /// Return a handle whose bulk preparations run inside a scan partition
    /// of `budget` pool frames (ROADMAP perf item (h); 0 restores the
    /// default of [`AsOfSnapshot::default_scan_budget`]; the effective
    /// budget is floored at two frames per prepare worker and capped at
    /// half the pool).
    pub fn with_scan_budget(mut self, budget: usize) -> SnapshotDb {
        self.scan_budget = budget;
        self
    }

    /// One scan partition for one bulk operation: the configured budget
    /// (or the snapshot default), floored at two frames per worker so ring
    /// reuse never stalls on the fan-out's own transient pins. Everything a
    /// bulk operation reads — leaf discovery, prefetch fan-out, straggler
    /// scan reads — must share ONE partition, or each piece would claim
    /// its own budget from the pool and the configured bound would be a
    /// multiple of itself.
    fn scan_partition_for(&self, workers: usize) -> ScanPartition {
        let budget = if self.scan_budget > 0 {
            self.scan_budget
        } else {
            self.snap.default_scan_budget(workers)
        };
        self.snap.scan_partition(budget.max(2 * workers.max(1)))
    }

    /// Concurrently prepare every leaf page of `table` into the side file,
    /// returning the number of pages newly prepared. Internal pages are
    /// prepared serially by the structural walk that discovers the leaves;
    /// the leaves themselves — the bulk of any real table — prepare in
    /// parallel. All of it runs through one pin-limited scan partition, so
    /// a table larger than the buffer pool cannot evict the live working
    /// set. Subsequent reads of those pages are zero-copy side-file hits.
    ///
    /// With `workers <= 1` this is a no-op *unless* a scan budget was
    /// explicitly configured ([`SnapshotDb::with_scan_budget`] /
    /// `DbConfig::asof_scan_budget`): a configured budget is a promise
    /// that bulk as-of streams stay inside it, so serial full-table scans
    /// must take the partitioned path too, not just parallel prefetches.
    pub fn prefetch_table(&self, table: &TableInfo, workers: usize) -> Result<u64> {
        if table.kind != TableKind::Tree || (workers <= 1 && self.scan_budget == 0) {
            return Ok(0);
        }
        self.prefetch_table_in(table, workers, &self.scan_partition_for(workers))
    }

    fn prefetch_table_in(
        &self,
        table: &TableInfo,
        workers: usize,
        part: &ScanPartition,
    ) -> Result<u64> {
        // Discovery reads internal pages — part of the cold stream, so it
        // runs inside the partition too.
        let store = self.snap.store_partitioned(part);
        let leaves = table.tree()?.unread_leaf_pages(&store)?;
        if leaves.len() < 2 {
            return Ok(0);
        }
        Ok(self
            .snap
            .prepare_pages_in(&leaves, workers, part)?
            .prepared())
    }

    /// Concurrently prepare only the leaf pages that hold `keys`
    /// (already-encoded key bytes) — the point-read counterpart of
    /// [`SnapshotDb::prefetch_table`]. Each key's leaf is located by
    /// reading internal pages only, so preparation work stays proportional
    /// to the keys actually touched, never to table size.
    pub fn prefetch_leaves_for_keys(
        &self,
        table: &TableInfo,
        keys: &[&[u8]],
        workers: usize,
    ) -> Result<u64> {
        // Point-read prefetches are the snapshot's working set, not a cold
        // stream: a configured budget does not force them through the
        // partition, so the serial path stays a no-op here.
        if table.kind != TableKind::Tree || workers <= 1 {
            return Ok(0);
        }
        let store = self.snap.store();
        let tree = table.tree()?;
        let mut leaves: Vec<PageId> = Vec::new();
        for key in keys {
            if let Some(pid) = tree.leaf_for_key_unread(&store, key)? {
                if !leaves.contains(&pid) {
                    leaves.push(pid);
                }
            }
        }
        if leaves.len() < 2 {
            return Ok(0);
        }
        let part = self.scan_partition_for(workers);
        Ok(self
            .snap
            .prepare_pages_in(&leaves, workers, &part)?
            .prepared())
    }

    /// Resolve an object id against a snapshot's own catalog (used by the
    /// background undo's resolver — no gating, since undo *is* the party
    /// the gates wait for).
    pub(crate) fn resolve_on(snap: &Arc<AsOfSnapshot>, obj: ObjectId) -> Result<AccessKind> {
        let store = snap.store();
        let sys = SysTrees::load(&store)?;
        if obj == ObjectId::SYS_TABLES {
            return Ok(AccessKind::Tree(sys.tables));
        }
        if obj == ObjectId::SYS_COLUMNS {
            return Ok(AccessKind::Tree(sys.columns));
        }
        if obj == ObjectId::SYS_INDEXES {
            return Ok(AccessKind::Tree(sys.indexes));
        }
        if let Some(t) = catalog::read_table_by_id(&store, &sys, obj)? {
            return Ok(match t.kind {
                TableKind::Tree => AccessKind::Tree(t.tree()?),
                TableKind::Heap => AccessKind::Heap(t.heap()?),
            });
        }
        if let Some((_, idx)) = catalog::read_index_by_id(&store, &sys, obj)? {
            return Ok(AccessKind::Tree(idx.tree()));
        }
        Err(Error::ObjectNotFound(obj))
    }

    /// The underlying snapshot.
    pub fn raw(&self) -> &Arc<AsOfSnapshot> {
        &self.snap
    }

    /// Snapshot name.
    pub fn name(&self) -> &str {
        &self.snap.name
    }

    /// The wall-clock time this snapshot represents.
    pub fn as_of(&self) -> Timestamp {
        self.snap.as_of
    }

    /// The SplitLSN.
    pub fn split_lsn(&self) -> Lsn {
        self.snap.split_lsn
    }

    /// Instrumentation counters (pages prepared, records undone, …).
    pub fn stats(&self) -> rewind_snapshot::stats::SnapshotStatsView {
        self.snap.stats()
    }

    /// Suppress unused-import warning helper (stats type is re-exported).
    fn _stats_ty(_: &SnapshotStats) {}

    /// Pages currently cached in the side file.
    pub fn side_pages(&self) -> usize {
        self.snap.side_pages()
    }

    /// Per-page prepare-gate entries currently live (bounded by in-flight
    /// preparations; 0 when quiescent — the gate-leak regression guard).
    pub fn prepare_gate_entries(&self) -> usize {
        self.snap.prepare_gate_entries()
    }

    /// Whether background undo has completed.
    pub fn undo_complete(&self) -> bool {
        self.snap.undo_complete()
    }

    /// Block until background undo completes.
    pub fn wait_undo_complete(&self) {
        self.snap.wait_undo_complete()
    }

    // ---- metadata (the §1 workflow starts here) ------------------------------

    /// Look up a table *as of the snapshot time*. This is how a user
    /// confirms a dropped table existed at the chosen time (§1).
    pub fn table(&self, name: &str) -> Result<Arc<TableInfo>> {
        if let Some(info) = self.cache.read().get(name) {
            return Ok(info.clone());
        }
        let store = self.snap.store();
        loop {
            match catalog::read_table_by_name(&store, &self.sys, name)? {
                Some(info) => {
                    // Gate on the catalog row: an in-flight DDL transaction
                    // at the split may still own it.
                    if self
                        .snap
                        .gate_row(ObjectId::SYS_TABLES, &catalog::table_key(info.id))?
                    {
                        continue; // waited: re-read
                    }
                    let info = Arc::new(info);
                    self.cache.write().insert(name.to_string(), info.clone());
                    return Ok(info);
                }
                None => {
                    // Absence is only trustworthy once no in-flight DDL locks
                    // remain on the catalog.
                    if !self.snap.undo_complete() {
                        self.snap
                            .locks
                            .wait_until_object_free(ObjectId::SYS_TABLES)?;
                        if catalog::read_table_by_name(&store, &self.sys, name)?.is_some() {
                            continue;
                        }
                    }
                    return Err(Error::TableNotFound(name.to_string()));
                }
            }
        }
    }

    /// All tables as of the snapshot time.
    pub fn list_tables(&self) -> Result<Vec<TableInfo>> {
        let store = self.snap.store();
        loop {
            let tables = catalog::list_tables(&store, &self.sys)?;
            let mut waited = false;
            for t in &tables {
                waited |= self
                    .snap
                    .gate_row(ObjectId::SYS_TABLES, &catalog::table_key(t.id))?;
            }
            if !waited {
                return Ok(tables);
            }
        }
    }

    // ---- queries ----------------------------------------------------------------

    /// Point lookup as of the snapshot time.
    pub fn get(&self, table: &TableInfo, key: &[Value]) -> Result<Option<Row>> {
        let refs: Vec<&Value> = key.iter().collect();
        let key_bytes = encode_key(&refs)?;
        let store = self.snap.store();
        loop {
            let found = table.tree()?.get(&store, &key_bytes)?;
            if self.snap.gate_row(table.id, &key_bytes)? {
                continue; // waited for in-flight txn: re-read
            }
            return match found {
                Some(v) => Ok(Some(decode_row(&v)?)),
                None => Ok(None),
            };
        }
    }

    /// Point lookup by already-encoded key bytes, returning the stored row
    /// bytes. The repair engine diffs witness against live at the byte
    /// level, so decoding is skipped (and unnecessary key decoding — the
    /// log only yields encoded keys — is avoided entirely).
    pub fn get_value_bytes(&self, table: &TableInfo, key_bytes: &[u8]) -> Result<Option<Vec<u8>>> {
        let store = self.snap.store();
        loop {
            let found = table.tree()?.get(&store, key_bytes)?;
            if self.snap.gate_row(table.id, key_bytes)? {
                continue; // waited for in-flight txn: re-read
            }
            return Ok(found);
        }
    }

    fn scan_gated(
        &self,
        table: &TableInfo,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        limit: usize,
    ) -> Result<Vec<Row>> {
        // Fan preparation out only when the scan will visit the whole
        // table anyway; a bounded scan's working set is its range, and
        // preparing beyond it would break the touched-pages-only economy.
        // A configured budget bounds *every* bulk tree stream, bounded
        // ranges included — and the prefetch, the leaf discovery and the
        // scan's own straggler reads all share ONE partition, so the total
        // pool damage stays within a single budget.
        let full_scan =
            matches!((lo, hi), (Bound::Unbounded, Bound::Unbounded)) && limit == usize::MAX;
        let part = (self.scan_budget > 0 || (full_scan && self.prefetch_workers > 1))
            .then(|| self.scan_partition_for(self.prefetch_workers));
        if full_scan && table.kind == TableKind::Tree {
            if let Some(p) = &part {
                self.prefetch_table_in(table, self.prefetch_workers, p)?;
            }
        }
        let store = match &part {
            Some(p) => self.snap.store_partitioned(p),
            None => self.snap.store(),
        };
        loop {
            let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            table.tree()?.scan(&store, lo, hi, |k, v| {
                rows.push((k.to_vec(), v.to_vec()));
                Ok(rows.len() < limit)
            })?;
            if !self.snap.undo_complete() {
                let mut waited = false;
                for (k, _) in &rows {
                    waited |= self.snap.gate_row(table.id, k)?;
                }
                if waited {
                    continue;
                }
            }
            return rows.into_iter().map(|(_, v)| decode_row(&v)).collect();
        }
    }

    /// Rows whose key starts with `prefix`, as of the snapshot time.
    pub fn scan_prefix(&self, table: &TableInfo, prefix: &[Value]) -> Result<Vec<Row>> {
        let refs: Vec<&Value> = prefix.iter().collect();
        if refs.is_empty() {
            return self.scan_all(table);
        }
        let lo = encode_key(&refs)?;
        let hi = prefix_upper_bound(&lo);
        self.scan_gated(
            table,
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            usize::MAX,
        )
    }

    /// Rows with `lo <= key <= hi` (values for a prefix of the key).
    pub fn scan_between(&self, table: &TableInfo, lo: &[Value], hi: &[Value]) -> Result<Vec<Row>> {
        let lo_refs: Vec<&Value> = lo.iter().collect();
        let hi_refs: Vec<&Value> = hi.iter().collect();
        let lo_b = encode_key(&lo_refs)?;
        let hi_b = prefix_upper_bound(&encode_key(&hi_refs)?);
        self.scan_gated(
            table,
            Bound::Included(&lo_b),
            Bound::Excluded(&hi_b),
            usize::MAX,
        )
    }

    /// Every row of the table as of the snapshot time.
    pub fn scan_all(&self, table: &TableInfo) -> Result<Vec<Row>> {
        match table.kind {
            TableKind::Tree => {
                self.scan_gated(table, Bound::Unbounded, Bound::Unbounded, usize::MAX)
            }
            TableKind::Heap => {
                // Heap chains discover each page from the previous one, so
                // there is nothing to prefetch — a configured scan budget
                // instead routes the cold stream itself through a
                // partition, keeping a heap larger than the pool from
                // evicting the live working set.
                let part = (self.scan_budget > 0).then(|| self.scan_partition_for(1));
                let store = match &part {
                    Some(p) => self.snap.store_partitioned(p),
                    None => self.snap.store(),
                };
                loop {
                    let mut rows = Vec::new();
                    table.heap()?.scan(&store, |_, bytes| {
                        rows.push(decode_row(bytes)?);
                        Ok(true)
                    })?;
                    if self.snap.gate_table(table.id)? {
                        continue;
                    }
                    return Ok(rows);
                }
            }
        }
    }

    /// Row count as of the snapshot time.
    pub fn count(&self, table: &TableInfo) -> Result<usize> {
        Ok(self.scan_all(table)?.len())
    }

    /// Rows matched through a secondary index (as of the snapshot time) by
    /// prefix of the indexed columns — exercises rewinding of index pages.
    pub fn scan_index_prefix(
        &self,
        table: &TableInfo,
        index: &str,
        prefix: &[Value],
        limit: usize,
    ) -> Result<Vec<Row>> {
        let idx = table.index(index)?;
        let refs: Vec<&Value> = prefix.iter().collect();
        let lo = encode_key(&refs)?;
        let hi = prefix_upper_bound(&lo);
        // Index lookups resolve to point reads of the base table — the
        // snapshot's working set, not a cold stream — so they deliberately
        // stay off the scan partition.
        let store = self.snap.store();
        loop {
            let mut pks: Vec<Vec<u8>> = Vec::new();
            idx.tree().scan(
                &store,
                Bound::Included(&lo),
                Bound::Excluded(&hi),
                |_, pk| {
                    pks.push(pk.to_vec());
                    Ok(pks.len() < limit)
                },
            )?;
            let mut rows = Vec::with_capacity(pks.len());
            let mut waited = false;
            for pk in &pks {
                waited |= self.snap.gate_row(table.id, pk)?;
                if let Some(v) = table.tree()?.get(&store, pk)? {
                    rows.push(decode_row(&v)?);
                }
            }
            if waited {
                continue;
            }
            return Ok(rows);
        }
    }
}

/// Check that a live table's schema still matches the snapshot's before
/// rows are copied across. A drifted schema (columns added/dropped, a type
/// changed, the key re-shaped) would let `INSERT … SELECT` write mis-shaped
/// rows; refuse with a typed error instead.
fn check_restore_schema(snap_info: &TableInfo, live: &TableInfo) -> Result<()> {
    let drift = |detail: String| Error::SchemaDrift {
        table: live.name.clone(),
        snapshot_columns: snap_info.schema.columns.len(),
        live_columns: live.schema.columns.len(),
        detail,
    };
    if live.kind != snap_info.kind {
        return Err(drift(format!(
            "table kind changed ({:?} -> {:?})",
            snap_info.kind, live.kind
        )));
    }
    if live.schema.columns.len() != snap_info.schema.columns.len() {
        return Err(drift("column count changed".into()));
    }
    for (a, b) in snap_info.schema.columns.iter().zip(&live.schema.columns) {
        if a.ty != b.ty {
            return Err(drift(format!(
                "column '{}' changed type ({:?} -> {:?})",
                a.name, a.ty, b.ty
            )));
        }
        if a.name != b.name {
            return Err(drift(format!(
                "column '{}' renamed to '{}'",
                a.name, b.name
            )));
        }
    }
    if live.schema.key != snap_info.schema.key {
        return Err(drift("primary key shape changed".into()));
    }
    // Anything the specific checks above miss: full structural equality is
    // the actual requirement (it is also what the repair planner demands).
    if live.schema != snap_info.schema {
        return Err(drift("schema drifted".into()));
    }
    Ok(())
}

/// The paper's §1 recovery flow: extract `src_table` from the snapshot and
/// materialize it in the live database as `dest_name` (schema, rows, and
/// secondary indexes). Returns the number of rows copied.
///
/// When `dest_name` already exists (restoring *into a live table*), the live
/// schema must still match the snapshot's — a drifted schema fails with
/// [`Error::SchemaDrift`] before any row is written. Matching-schema
/// restores reconcile row-by-row: missing keys are inserted, diverged rows
/// are updated, identical rows are left alone.
pub fn restore_table_from_snapshot(
    db: &Database,
    snap: &SnapshotDb,
    src_table: &str,
    dest_name: &str,
) -> Result<usize> {
    let info = snap.table(src_table)?;
    let rows = snap.scan_all(&info)?;
    let live = match db.table(dest_name) {
        Ok(live) => Some(live),
        Err(Error::TableNotFound(_)) => None,
        Err(e) => return Err(e),
    };
    db.with_txn(|txn| match live {
        Some(live) => {
            check_restore_schema(&info, &live)?;
            if live.kind != TableKind::Tree {
                return Err(Error::InvalidArg(
                    "restoring into a live heap table is not supported; \
                     restore into a fresh name instead"
                        .into(),
                ));
            }
            let mut copied = 0usize;
            for row in &rows {
                let key: Vec<Value> = info.schema.key_values(row)?.into_iter().cloned().collect();
                match db.get_for_update(txn, dest_name, &key)? {
                    Some(existing) if &existing == row => {}
                    Some(_) => {
                        db.update(txn, dest_name, row)?;
                        copied += 1;
                    }
                    None => {
                        db.insert(txn, dest_name, row)?;
                        copied += 1;
                    }
                }
            }
            Ok(copied)
        }
        None => {
            match info.kind {
                TableKind::Tree => db.create_table(txn, dest_name, info.schema.clone())?,
                TableKind::Heap => db.create_heap_table(txn, dest_name, info.schema.clone())?,
            };
            for row in &rows {
                db.insert(txn, dest_name, row)?;
            }
            for idx in &info.indexes {
                let col_names: Vec<&str> = idx
                    .cols
                    .iter()
                    .map(|&c| info.schema.columns[c].name.as_str())
                    .collect();
                db.create_index(txn, dest_name, &idx.name, &col_names)?;
            }
            Ok(rows.len())
        }
    })
}
