//! The system catalog: tables about tables.
//!
//! "Logical metadata (such as object catalog) itself is stored in relational
//! format and updates to it are logged similar to updates to data" (paper
//! §3). `sys_tables`, `sys_columns` and `sys_indexes` are ordinary B-Trees,
//! which is why an as-of snapshot can answer metadata questions about the
//! past — including showing a table that has since been dropped — with no
//! dedicated versioning machinery.
//!
//! All read functions are generic over [`Store`], so they serve the live
//! database and snapshots identically.

use crate::boot::{read_boot, BootInfo};
use rewind_access::keys::encode_key_owned;
use rewind_access::store::Store;
use rewind_access::value::{decode_row, encode_row};
use rewind_access::{BTree, Column, DataType, Heap, Schema, Value};
use rewind_common::codec::{ByteReader, ByteWriter};
use rewind_common::{Error, ObjectId, PageId, Result};
use std::ops::Bound;

/// How a table stores its rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Clustered B-Tree keyed by the primary key.
    Tree,
    /// Heap addressed by RID (insert-mostly data, e.g. TPC-C HISTORY).
    Heap,
}

impl TableKind {
    fn to_u64(self) -> u64 {
        match self {
            TableKind::Tree => 0,
            TableKind::Heap => 1,
        }
    }

    fn from_u64(v: u64) -> Result<TableKind> {
        match v {
            0 => Ok(TableKind::Tree),
            1 => Ok(TableKind::Heap),
            other => Err(Error::corruption(format!("unknown table kind {other}"))),
        }
    }
}

/// A secondary index over a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexInfo {
    /// The index's own object id.
    pub id: ObjectId,
    /// Index name.
    pub name: String,
    /// Root page of the index B-Tree.
    pub root: PageId,
    /// Indices (into the table schema) of the indexed columns, in order.
    pub cols: Vec<usize>,
}

impl IndexInfo {
    /// The index B-Tree handle.
    pub fn tree(&self) -> BTree {
        BTree {
            object: self.id,
            root: self.root,
        }
    }
}

/// Everything known about one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableInfo {
    /// The table's object id.
    pub id: ObjectId,
    /// Table name.
    pub name: String,
    /// Storage kind.
    pub kind: TableKind,
    /// Root (B-Tree) or first page (heap).
    pub root: PageId,
    /// The schema.
    pub schema: Schema,
    /// Secondary indexes.
    pub indexes: Vec<IndexInfo>,
}

impl TableInfo {
    /// The clustered-tree handle; errors for heaps.
    pub fn tree(&self) -> Result<BTree> {
        match self.kind {
            TableKind::Tree => Ok(BTree {
                object: self.id,
                root: self.root,
            }),
            TableKind::Heap => Err(Error::InvalidArg(format!(
                "table '{}' is a heap",
                self.name
            ))),
        }
    }

    /// The heap handle; errors for trees.
    pub fn heap(&self) -> Result<Heap> {
        match self.kind {
            TableKind::Heap => Ok(Heap {
                object: self.id,
                first: self.root,
            }),
            TableKind::Tree => Err(Error::InvalidArg(format!(
                "table '{}' is a B-Tree",
                self.name
            ))),
        }
    }

    /// Encode the primary key of `row` as B-Tree key bytes.
    pub fn key_bytes(&self, row: &[Value]) -> Result<Vec<u8>> {
        let keys = self.schema.key_values(row)?;
        rewind_access::keys::encode_key(&keys)
    }

    /// Find a secondary index by name.
    pub fn index(&self, name: &str) -> Result<&IndexInfo> {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| Error::InvalidArg(format!("no index '{name}' on '{}'", self.name)))
    }

    /// The key bytes a row contributes to `index`: indexed columns followed
    /// by the primary key (making index entries unique).
    pub fn index_key_bytes(&self, index: &IndexInfo, row: &[Value]) -> Result<Vec<u8>> {
        let mut vals: Vec<&Value> = index.cols.iter().map(|&i| &row[i]).collect();
        let keys = self.schema.key_values(row)?;
        vals.extend(keys);
        rewind_access::keys::encode_key(&vals)
    }
}

// ---- schema blob codec ------------------------------------------------------

/// Serialize a schema into the catalog blob format.
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u16(schema.columns.len() as u16);
    for c in &schema.columns {
        w.put_str(&c.name);
        w.put_u8(c.ty as u8);
    }
    w.put_u16(schema.key.len() as u16);
    for &k in &schema.key {
        w.put_u16(k as u16);
    }
    w.into_bytes()
}

/// Decode a schema blob.
pub fn decode_schema(bytes: &[u8]) -> Result<Schema> {
    let mut r = ByteReader::new(bytes);
    let ncols = r.get_u16()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.get_str()?.to_string();
        let ty = DataType::from_u8(r.get_u8()?)?;
        columns.push(Column { name, ty });
    }
    let nkey = r.get_u16()? as usize;
    let mut key = Vec::with_capacity(nkey);
    for _ in 0..nkey {
        key.push(r.get_u16()? as usize);
    }
    Ok(Schema { columns, key })
}

// ---- system-tree handles -----------------------------------------------------

/// Handles to the three system trees, resolved from the boot page.
#[derive(Clone, Copy, Debug)]
pub struct SysTrees {
    /// `sys_tables`: object id → table row.
    pub tables: BTree,
    /// `sys_columns`: (table id, ordinal) → column row.
    pub columns: BTree,
    /// `sys_indexes`: index id → index row.
    pub indexes: BTree,
}

impl SysTrees {
    /// Resolve from boot info.
    pub fn from_boot(boot: &BootInfo) -> SysTrees {
        SysTrees {
            tables: BTree {
                object: ObjectId::SYS_TABLES,
                root: boot.sys_tables_root,
            },
            columns: BTree {
                object: ObjectId::SYS_COLUMNS,
                root: boot.sys_columns_root,
            },
            indexes: BTree {
                object: ObjectId::SYS_INDEXES,
                root: boot.sys_indexes_root,
            },
        }
    }

    /// Read the boot page and resolve, through any store.
    pub fn load<S: Store>(s: &S) -> Result<SysTrees> {
        Ok(Self::from_boot(&read_boot(s)?))
    }
}

/// Key bytes for a `sys_tables` row.
pub fn table_key(id: ObjectId) -> Vec<u8> {
    // tidy: allow(no-panic) -- a literal single-U64 key always encodes
    encode_key_owned(&[Value::U64(id.0)]).expect("non-empty")
}

/// The `sys_tables` row for a table.
pub fn table_row(info: &TableInfo) -> Vec<u8> {
    encode_row(&[
        Value::U64(info.id.0),
        Value::Str(info.name.clone()),
        Value::U64(info.kind.to_u64()),
        Value::U64(info.root.0),
        Value::Bytes(encode_schema(&info.schema)),
    ])
}

fn parse_table_row(bytes: &[u8]) -> Result<TableInfo> {
    let row = decode_row(bytes)?;
    if row.len() != 5 {
        return Err(Error::corruption("malformed sys_tables row"));
    }
    Ok(TableInfo {
        id: ObjectId(row[0].as_u64()?),
        name: row[1].as_str()?.to_string(),
        kind: TableKind::from_u64(row[2].as_u64()?)?,
        root: PageId(row[3].as_u64()?),
        schema: match &row[4] {
            Value::Bytes(b) => decode_schema(b)?,
            other => return Err(Error::corruption(format!("schema blob is {other:?}"))),
        },
        indexes: Vec::new(),
    })
}

/// Key bytes for a `sys_indexes` row.
pub fn index_key(id: ObjectId) -> Vec<u8> {
    // tidy: allow(no-panic) -- a literal single-U64 key always encodes
    encode_key_owned(&[Value::U64(id.0)]).expect("non-empty")
}

/// The `sys_indexes` row for an index on `table`.
pub fn index_row(table: ObjectId, info: &IndexInfo) -> Vec<u8> {
    let mut blob = ByteWriter::new();
    blob.put_u16(info.cols.len() as u16);
    for &c in &info.cols {
        blob.put_u16(c as u16);
    }
    encode_row(&[
        Value::U64(info.id.0),
        Value::U64(table.0),
        Value::Str(info.name.clone()),
        Value::U64(info.root.0),
        Value::Bytes(blob.into_bytes()),
    ])
}

fn parse_index_row(bytes: &[u8]) -> Result<(ObjectId, IndexInfo)> {
    let row = decode_row(bytes)?;
    if row.len() != 5 {
        return Err(Error::corruption("malformed sys_indexes row"));
    }
    let cols = match &row[4] {
        Value::Bytes(b) => {
            let mut r = ByteReader::new(b);
            let n = r.get_u16()? as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(r.get_u16()? as usize);
            }
            cols
        }
        other => return Err(Error::corruption(format!("index cols blob is {other:?}"))),
    };
    Ok((
        ObjectId(row[1].as_u64()?),
        IndexInfo {
            id: ObjectId(row[0].as_u64()?),
            name: row[2].as_str()?.to_string(),
            root: PageId(row[3].as_u64()?),
            cols,
        },
    ))
}

/// Key bytes for a `sys_columns` row.
pub fn column_key(table: ObjectId, ord: usize) -> Vec<u8> {
    // tidy: allow(no-panic) -- a literal two-U64 key always encodes
    encode_key_owned(&[Value::U64(table.0), Value::U64(ord as u64)]).expect("non-empty")
}

/// The `sys_columns` row for one column.
pub fn column_row(table: ObjectId, ord: usize, col: &Column, key_pos: Option<usize>) -> Vec<u8> {
    encode_row(&[
        Value::U64(table.0),
        Value::U64(ord as u64),
        Value::Str(col.name.clone()),
        Value::U64(col.ty as u8 as u64),
        Value::I64(key_pos.map(|k| k as i64).unwrap_or(-1)),
    ])
}

// ---- catalog reads (generic over Store) --------------------------------------

/// Load a table (with its indexes) by object id.
pub fn read_table_by_id<S: Store>(
    s: &S,
    sys: &SysTrees,
    id: ObjectId,
) -> Result<Option<TableInfo>> {
    let bytes = match sys.tables.get(s, &table_key(id))? {
        Some(b) => b,
        None => return Ok(None),
    };
    let mut info = parse_table_row(&bytes)?;
    info.indexes = read_indexes_of(s, sys, id)?;
    Ok(Some(info))
}

/// Load a table (with its indexes) by name.
pub fn read_table_by_name<S: Store>(
    s: &S,
    sys: &SysTrees,
    name: &str,
) -> Result<Option<TableInfo>> {
    let mut found = None;
    sys.tables
        .scan(s, Bound::Unbounded, Bound::Unbounded, |_, v| {
            let info = parse_table_row(v)?;
            if info.name == name {
                found = Some(info);
                return Ok(false);
            }
            Ok(true)
        })?;
    match found {
        Some(mut info) => {
            info.indexes = read_indexes_of(s, sys, info.id)?;
            Ok(Some(info))
        }
        None => Ok(None),
    }
}

/// All indexes declared on `table`.
pub fn read_indexes_of<S: Store>(s: &S, sys: &SysTrees, table: ObjectId) -> Result<Vec<IndexInfo>> {
    let mut out = Vec::new();
    sys.indexes
        .scan(s, Bound::Unbounded, Bound::Unbounded, |_, v| {
            let (tid, idx) = parse_index_row(v)?;
            if tid == table {
                out.push(idx);
            }
            Ok(true)
        })?;
    Ok(out)
}

/// Find one index (and its table id) by the index's object id.
pub fn read_index_by_id<S: Store>(
    s: &S,
    sys: &SysTrees,
    id: ObjectId,
) -> Result<Option<(ObjectId, IndexInfo)>> {
    let bytes = match sys.indexes.get(s, &index_key(id))? {
        Some(b) => b,
        None => return Ok(None),
    };
    Ok(Some(parse_index_row(&bytes)?))
}

/// List every user table (with indexes), sorted by object id.
pub fn list_tables<S: Store>(s: &S, sys: &SysTrees) -> Result<Vec<TableInfo>> {
    let mut out = Vec::new();
    sys.tables
        .scan(s, Bound::Unbounded, Bound::Unbounded, |_, v| {
            out.push(parse_table_row(v)?);
            Ok(true)
        })?;
    for info in &mut out {
        info.indexes = read_indexes_of(s, sys, info.id)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("w_id", DataType::U64),
                Column::new("name", DataType::Str),
                Column::new("ytd", DataType::F64),
            ],
            &["w_id"],
        )
        .unwrap()
    }

    #[test]
    fn schema_blob_roundtrip() {
        let s = schema();
        let blob = encode_schema(&s);
        assert_eq!(decode_schema(&blob).unwrap(), s);
        assert!(decode_schema(&blob[..3]).is_err());
    }

    #[test]
    fn table_row_roundtrip() {
        let info = TableInfo {
            id: ObjectId(120),
            name: "warehouse".into(),
            kind: TableKind::Tree,
            root: PageId(9),
            schema: schema(),
            indexes: vec![],
        };
        let parsed = parse_table_row(&table_row(&info)).unwrap();
        assert_eq!(parsed, info);
    }

    #[test]
    fn index_row_roundtrip() {
        let idx = IndexInfo {
            id: ObjectId(130),
            name: "by_name".into(),
            root: PageId(12),
            cols: vec![1, 0],
        };
        let (tid, parsed) = parse_index_row(&index_row(ObjectId(120), &idx)).unwrap();
        assert_eq!(tid, ObjectId(120));
        assert_eq!(parsed, idx);
    }

    #[test]
    fn key_and_index_bytes_are_ordered_and_unique() {
        let info = TableInfo {
            id: ObjectId(120),
            name: "t".into(),
            kind: TableKind::Tree,
            root: PageId(9),
            schema: schema(),
            indexes: vec![IndexInfo {
                id: ObjectId(121),
                name: "by_name".into(),
                root: PageId(10),
                cols: vec![1],
            }],
        };
        let r1 = vec![Value::U64(1), Value::str("aaa"), Value::F64(0.0)];
        let r2 = vec![Value::U64(2), Value::str("aaa"), Value::F64(0.0)];
        let k1 = info.key_bytes(&r1).unwrap();
        let k2 = info.key_bytes(&r2).unwrap();
        assert!(k1 < k2);
        let idx = &info.indexes[0];
        let i1 = info.index_key_bytes(idx, &r1).unwrap();
        let i2 = info.index_key_bytes(idx, &r2).unwrap();
        assert_ne!(
            i1, i2,
            "same indexed value, different pk: entries stay unique"
        );
        assert!(i1 < i2);
    }

    #[test]
    fn heap_tree_handle_guards() {
        let mut info = TableInfo {
            id: ObjectId(5),
            name: "h".into(),
            kind: TableKind::Heap,
            root: PageId(3),
            schema: schema(),
            indexes: vec![],
        };
        assert!(info.heap().is_ok());
        assert!(info.tree().is_err());
        info.kind = TableKind::Tree;
        assert!(info.tree().is_ok());
        assert!(info.heap().is_err());
    }
}
