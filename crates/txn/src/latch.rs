//! Object-level structure latches.
//!
//! The index manager serializes structure changes per object (table/index):
//! readers of a tree take the latch shared, writers exclusive, for the span
//! of one access-method operation. This protects multi-page invariants
//! (splits, sibling links) that per-page latches alone cannot.

use parking_lot::{Mutex, RwLock};
use rewind_common::ObjectId;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of per-object read/write latches, created on demand.
#[derive(Default)]
pub struct ObjectLatches {
    map: Mutex<HashMap<u64, Arc<RwLock<()>>>>,
}

impl ObjectLatches {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn latch_for(&self, object: ObjectId) -> Arc<RwLock<()>> {
        self.map.lock().entry(object.0).or_default().clone()
    }

    /// Run `f` holding the latch of `object` in the requested mode.
    /// Not re-entrant for the same object.
    pub fn with_latch<R>(&self, object: ObjectId, exclusive: bool, f: impl FnOnce() -> R) -> R {
        let latch = self.latch_for(object);
        if exclusive {
            let _g = latch.write();
            f()
        } else {
            let _g = latch.read();
            f()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn exclusive_latch_serializes() {
        let latches = Arc::new(ObjectLatches::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let latches = latches.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        latches.with_latch(ObjectId(1), true, || {
                            // non-atomic read-modify-write protected by latch
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn different_objects_do_not_contend() {
        let latches = ObjectLatches::new();
        latches.with_latch(ObjectId(1), true, || {
            // same registry, different object: must not deadlock
            latches.with_latch(ObjectId(2), true, || {});
        });
    }
}
