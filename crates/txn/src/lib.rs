//! Transactions and locking.
//!
//! The engine uses strict two-phase locking (paper §2.1: rows are locked
//! shared/exclusive and released only after commit) with hierarchical intent
//! locks at table granularity, FIFO queuing, waits-for deadlock detection
//! and a timeout backstop.
//!
//! [`TxnManager`] tracks the active-transaction table (ATT): each
//! transaction's first and last LSN, which checkpoints persist (§2) and
//! which snapshot recovery uses to find the transactions in flight at the
//! SplitLSN (§5.2).

pub mod latch;
pub mod lock;
pub mod manager;

pub use latch::ObjectLatches;
pub use lock::{LockKey, LockManager, LockMode};
pub use manager::{TxnManager, TxnShared, TxnState};
