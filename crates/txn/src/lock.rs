//! The lock manager.
//!
//! Lock keys are `(object, row-key-bytes)`; an empty row key addresses the
//! table itself. Modes form the classic hierarchy (IS, IX, S, SIX, X) so
//! that DML can take intent locks on tables plus row locks, while DDL takes
//! the whole table exclusively.
//!
//! Blocking is implemented with a single state mutex and condition variable:
//! waiters enqueue FIFO (upgrades jump the queue), re-evaluate on every
//! release, detect deadlocks by walking the waits-for graph at wait time,
//! and give up after a configurable timeout.

use parking_lot::{Condvar, Mutex};
use rewind_common::{Error, ObjectId, Result, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

/// A lock mode in the standard hierarchical lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intent shared (reader descending to row locks).
    IS,
    /// Intent exclusive (writer descending to row locks).
    IX,
    /// Shared.
    S,
    /// Shared with intent exclusive (scan + update).
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Whether two modes held by *different* transactions are compatible.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Whether holding `self` already implies the permissions of `want`.
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        if self == want {
            return true;
        }
        match self {
            X => true,
            SIX => matches!(want, S | IX | IS),
            S => matches!(want, IS),
            IX => matches!(want, IS),
            IS => false,
        }
    }

    /// Least upper bound of two modes held by the *same* transaction.
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        match (self, other) {
            (S, IX) | (IX, S) | (S, SIX) | (SIX, S) | (IX, SIX) | (SIX, IX) => SIX,
            _ => X,
        }
    }
}

/// What a lock protects: a table (empty `row`) or a row within it.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockKey {
    /// The owning object.
    pub object: ObjectId,
    /// Row key bytes; empty for the table-level lock.
    pub row: Vec<u8>,
}

impl LockKey {
    /// The table-level lock for `object`.
    pub fn table(object: ObjectId) -> LockKey {
        LockKey {
            object,
            row: Vec::new(),
        }
    }

    /// A row-level lock.
    pub fn row(object: ObjectId, key: &[u8]) -> LockKey {
        LockKey {
            object,
            row: key.to_vec(),
        }
    }

    /// Whether this is the table-level lock.
    pub fn is_table(&self) -> bool {
        self.row.is_empty()
    }
}

#[derive(Default)]
struct LockEntry {
    granted: HashMap<TxnId, LockMode>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

#[derive(Default)]
struct LmState {
    entries: HashMap<LockKey, LockEntry>,
    held: HashMap<TxnId, HashSet<LockKey>>,
    waiting: HashMap<TxnId, (LockKey, LockMode)>,
}

impl LmState {
    /// Can `txn` be granted `mode` on `entry` right now?
    fn grantable(&self, key: &LockKey, txn: TxnId, mode: LockMode) -> bool {
        let entry = match self.entries.get(key) {
            Some(e) => e,
            None => return true,
        };
        // compatible with every other holder
        if entry
            .granted
            .iter()
            .any(|(&t, &m)| t != txn && !mode.compatible(m))
        {
            return false;
        }
        // FIFO fairness: no earlier waiter with a conflicting request, unless
        // we already hold something here (upgrade: allowed to barge so we
        // don't deadlock behind our own queue position).
        let is_upgrade = entry.granted.contains_key(&txn);
        if !is_upgrade {
            for &(t, m) in &entry.waiters {
                if t == txn {
                    break;
                }
                if !mode.compatible(m) {
                    return false;
                }
            }
        }
        true
    }

    fn grant(&mut self, key: &LockKey, txn: TxnId, mode: LockMode) {
        let entry = self.entries.entry(key.clone()).or_default();
        let new_mode = entry.granted.get(&txn).map_or(mode, |m| m.join(mode));
        entry.granted.insert(txn, new_mode);
        entry.waiters.retain(|&(t, _)| t != txn);
        self.held.entry(txn).or_default().insert(key.clone());
        self.waiting.remove(&txn);
    }

    /// Walk the waits-for graph looking for a cycle through `start`.
    fn deadlocked(&self, start: TxnId) -> bool {
        let mut stack = vec![start];
        let mut seen = HashSet::new();
        let mut first = true;
        while let Some(t) = stack.pop() {
            if !first && t == start {
                return true;
            }
            first = false;
            if !seen.insert(t) {
                continue;
            }
            if let Some((key, mode)) = self.waiting.get(&t) {
                if let Some(entry) = self.entries.get(key) {
                    for (&h, &hm) in &entry.granted {
                        if h != t && !mode.compatible(hm) {
                            if h == start {
                                return true;
                            }
                            stack.push(h);
                        }
                    }
                    for &(w, wm) in &entry.waiters {
                        if w == t {
                            break;
                        }
                        if w != t && !mode.compatible(wm) {
                            if w == start {
                                return true;
                            }
                            stack.push(w);
                        }
                    }
                }
            }
        }
        false
    }
}

/// The lock manager. Thread-safe; shared via `Arc`.
pub struct LockManager {
    state: Mutex<LmState>,
    cv: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// A lock manager whose waits give up after `timeout`.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(LmState::default()),
            cv: Condvar::new(),
            timeout,
        }
    }

    /// Acquire `mode` on `key` for `txn`, blocking as needed.
    ///
    /// Returns [`Error::Deadlock`] if the wait would close a cycle (the
    /// requester is the victim) and [`Error::LockTimeout`] if the wait
    /// exceeds the configured timeout.
    pub fn acquire(&self, txn: TxnId, key: &LockKey, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock();
        // fast paths
        if let Some(entry) = st.entries.get(key) {
            if let Some(&m) = entry.granted.get(&txn) {
                if m.covers(mode) {
                    return Ok(());
                }
            }
        }
        #[allow(clippy::disallowed_methods)]
        // tidy: allow(wall-clock) -- lock-wait deadlines are real elapsed time, not sim time
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            if st.grantable(key, txn, mode) {
                st.grant(key, txn, mode);
                return Ok(());
            }
            // enqueue (upgrades at the front so they can't starve behind
            // requests that conflict with what we already hold)
            let entry = st.entries.entry(key.clone()).or_default();
            let is_upgrade = entry.granted.contains_key(&txn);
            if !entry.waiters.iter().any(|&(t, _)| t == txn) {
                if is_upgrade {
                    entry.waiters.push_front((txn, mode));
                } else {
                    entry.waiters.push_back((txn, mode));
                }
            }
            st.waiting.insert(txn, (key.clone(), mode));
            if st.deadlocked(txn) {
                Self::remove_waiter(&mut st, txn, key);
                return Err(Error::Deadlock(txn));
            }
            let timed_out = self.cv.wait_until(&mut st, deadline).timed_out();
            if timed_out && !st.grantable(key, txn, mode) {
                Self::remove_waiter(&mut st, txn, key);
                return Err(Error::LockTimeout(txn));
            }
        }
    }

    fn remove_waiter(st: &mut LmState, txn: TxnId, key: &LockKey) {
        if let Some(entry) = st.entries.get_mut(key) {
            entry.waiters.retain(|&(t, _)| t != txn);
        }
        st.waiting.remove(&txn);
    }

    /// Grant `mode` on `key` to `txn` unconditionally, bypassing
    /// compatibility. Used by snapshot recovery's lock *re*acquisition
    /// (§5.2): the in-flight transactions held these locks at the SplitLSN
    /// by construction, and coarsened (table-level) reacquisitions may
    /// overlap. Queries observe the union via [`LockManager::would_block`].
    pub fn force_grant(&self, txn: TxnId, key: &LockKey, mode: LockMode) {
        let mut st = self.state.lock();
        st.grant(key, txn, mode);
    }

    /// Release every lock held by `txn` (commit / rollback end).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        if let Some(keys) = st.held.remove(&txn) {
            for key in keys {
                if let Some(entry) = st.entries.get_mut(&key) {
                    entry.granted.remove(&txn);
                    if entry.granted.is_empty() && entry.waiters.is_empty() {
                        st.entries.remove(&key);
                    }
                }
            }
        }
        st.waiting.remove(&txn);
        self.cv.notify_all();
    }

    /// The strongest mode `txn` holds on `key`, if any.
    pub fn held_mode(&self, txn: TxnId, key: &LockKey) -> Option<LockMode> {
        let st = self.state.lock();
        st.entries
            .get(key)
            .and_then(|e| e.granted.get(&txn).copied())
    }

    /// Whether *any* transaction holds a lock on `key` incompatible with
    /// `mode` (non-blocking probe; used by snapshot row gates).
    pub fn would_block(&self, key: &LockKey, mode: LockMode) -> bool {
        let st = self.state.lock();
        st.entries
            .get(key)
            .map(|e| e.granted.values().any(|&m| !mode.compatible(m)))
            .unwrap_or(false)
    }

    /// Block until `mode` on `key` would be immediately compatible with all
    /// holders (without acquiring anything). Used by snapshot queries racing
    /// the background undo (§5.2): readers wait for the reacquired lock of a
    /// loser transaction to be released.
    pub fn wait_until_free(&self, key: &LockKey, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock();
        #[allow(clippy::disallowed_methods)]
        // tidy: allow(wall-clock) -- lock-wait deadlines are real elapsed time, not sim time
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let blocked = st
                .entries
                .get(key)
                .map(|e| e.granted.values().any(|&m| !mode.compatible(m)))
                .unwrap_or(false);
            if !blocked {
                return Ok(());
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return Err(Error::LockTimeout(TxnId::NONE));
            }
        }
    }

    /// Block until no lock anywhere under `object` (table or row) is
    /// incompatible with a shared read. Snapshot queries use this when a
    /// *absence* must be validated against in-flight transactions (§5.2) —
    /// e.g. a table missing from the catalog while a DDL transaction's
    /// reacquired locks are still held.
    pub fn wait_until_object_free(&self, object: ObjectId) -> Result<()> {
        let mut st = self.state.lock();
        #[allow(clippy::disallowed_methods)]
        // tidy: allow(wall-clock) -- lock-wait deadlines are real elapsed time, not sim time
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let blocked = st.entries.iter().any(|(k, e)| {
                k.object == object && e.granted.values().any(|&m| !LockMode::S.compatible(m))
            });
            if !blocked {
                return Ok(());
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return Err(Error::LockTimeout(TxnId::NONE));
            }
        }
    }

    /// Number of keys `txn` holds (diagnostics).
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.state.lock().held.get(&txn).map_or(0, |s| s.len())
    }

    /// Total number of lock entries (diagnostics).
    pub fn entry_count(&self) -> usize {
        self.state.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn lm() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_secs(5)))
    }

    fn k(obj: u64, row: &[u8]) -> LockKey {
        LockKey::row(ObjectId(obj), row)
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!X.compatible(IS));
        assert!(SIX.compatible(IS));
        assert!(!SIX.compatible(IX));
        assert!(!SIX.compatible(SIX));
    }

    #[test]
    fn covers_and_join() {
        use LockMode::*;
        assert!(X.covers(S));
        assert!(SIX.covers(IX));
        assert!(S.covers(IS));
        assert!(!IS.covers(S));
        assert_eq!(S.join(IX), SIX);
        assert_eq!(IX.join(S), SIX);
        assert_eq!(S.join(X), X);
        assert_eq!(IS.join(IX), IX);
    }

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let lm = lm();
        let key = k(1, b"row");
        lm.acquire(TxnId(1), &key, LockMode::S).unwrap();
        lm.acquire(TxnId(2), &key, LockMode::S).unwrap();
        assert!(lm.would_block(&key, LockMode::X));
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        assert!(!lm.would_block(&key, LockMode::X));
        lm.acquire(TxnId(3), &key, LockMode::X).unwrap();
        assert!(lm.would_block(&key, LockMode::S));
        lm.release_all(TxnId(3));
        assert_eq!(lm.entry_count(), 0, "empty entries are garbage-collected");
    }

    #[test]
    fn reentrant_and_upgrade_when_alone() {
        let lm = lm();
        let key = k(1, b"r");
        lm.acquire(TxnId(1), &key, LockMode::S).unwrap();
        lm.acquire(TxnId(1), &key, LockMode::S).unwrap();
        lm.acquire(TxnId(1), &key, LockMode::X).unwrap(); // upgrade, no other holders
        assert_eq!(lm.held_mode(TxnId(1), &key), Some(LockMode::X));
        lm.release_all(TxnId(1));
    }

    #[test]
    fn blocking_handoff() {
        let lm = lm();
        let key = k(1, b"hot");
        lm.acquire(TxnId(1), &key, LockMode::X).unwrap();
        let lm2 = lm.clone();
        let key2 = key.clone();
        let h = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), &key2, LockMode::X).unwrap();
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let lm = lm();
        let ka = k(1, b"a");
        let kb = k(1, b"b");
        lm.acquire(TxnId(1), &ka, LockMode::X).unwrap();
        lm.acquire(TxnId(2), &kb, LockMode::X).unwrap();
        let lm2 = lm.clone();
        let (ka2, kb2) = (ka.clone(), kb.clone());
        // T1 waits for b (held by T2)
        let h = std::thread::spawn(move || {
            let r = lm2.acquire(TxnId(1), &kb2, LockMode::X);
            // T1 either blocks until T2 dies, or is itself the victim
            if r.is_err() {
                lm2.release_all(TxnId(1));
            } else {
                let _ = ka2;
                lm2.release_all(TxnId(1));
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        // T2 requests a (held by T1) -> closes the cycle -> victim
        let r = lm.acquire(TxnId(2), &ka, LockMode::X);
        match r {
            Err(Error::Deadlock(t)) => assert_eq!(t, TxnId(2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        lm.release_all(TxnId(2));
        h.join().unwrap();
    }

    #[test]
    fn timeout_fires() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(50)));
        let key = k(1, b"slow");
        lm.acquire(TxnId(1), &key, LockMode::X).unwrap();
        let r = lm.acquire(TxnId(2), &key, LockMode::S);
        assert!(matches!(r, Err(Error::LockTimeout(_))));
        lm.release_all(TxnId(1));
    }

    #[test]
    fn intent_locks_let_rows_coexist_but_block_table_x() {
        let lm = lm();
        let table = LockKey::table(ObjectId(7));
        lm.acquire(TxnId(1), &table, LockMode::IX).unwrap();
        lm.acquire(TxnId(1), &k(7, b"r1"), LockMode::X).unwrap();
        lm.acquire(TxnId(2), &table, LockMode::IX).unwrap();
        lm.acquire(TxnId(2), &k(7, b"r2"), LockMode::X).unwrap();
        // DDL wants the table exclusively: must block
        assert!(lm.would_block(&table, LockMode::X));
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        assert!(!lm.would_block(&table, LockMode::X));
    }

    #[test]
    fn wait_until_free_unblocks_on_release() {
        let lm = lm();
        let key = k(2, b"gate");
        lm.acquire(TxnId(9), &key, LockMode::X).unwrap();
        let lm2 = lm.clone();
        let key2 = key.clone();
        let h = std::thread::spawn(move || {
            lm2.wait_until_free(&key2, LockMode::S).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(9));
        h.join().unwrap();
    }

    #[test]
    fn fifo_prevents_barging() {
        let lm = lm();
        let key = k(1, b"fifo");
        lm.acquire(TxnId(1), &key, LockMode::S).unwrap();
        // T2 wants X: waits
        let lm_w = lm.clone();
        let key_w = key.clone();
        let waiter = std::thread::spawn(move || {
            lm_w.acquire(TxnId(2), &key_w, LockMode::X).unwrap();
            lm_w.release_all(TxnId(2));
        });
        std::thread::sleep(Duration::from_millis(30));
        // T3 wants S: compatible with the holder but must queue behind T2
        let lm_b = lm.clone();
        let key_b = key.clone();
        let behind = std::thread::spawn(move || {
            lm_b.acquire(TxnId(3), &key_b, LockMode::S).unwrap();
            lm_b.release_all(TxnId(3));
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            lm.held_mode(TxnId(3), &key),
            None,
            "T3 must not barge past T2"
        );
        lm.release_all(TxnId(1));
        waiter.join().unwrap();
        behind.join().unwrap();
    }
}
