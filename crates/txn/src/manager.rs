//! The transaction manager: ids, states and the active-transaction table.

use parking_lot::Mutex;
use rewind_common::{Lsn, TxnId};
use rewind_wal::TxnTableEntry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Lifecycle state of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TxnState {
    /// Running; may log records.
    Active = 0,
    /// Commit record durable; locks may be released.
    Committed = 1,
    /// Rolled back.
    Aborted = 2,
}

/// Shared per-transaction state, updated lock-free on every logged record.
pub struct TxnShared {
    /// The transaction id.
    pub id: TxnId,
    first_lsn: AtomicU64,
    last_lsn: AtomicU64,
    state: AtomicU8,
}

impl TxnShared {
    fn new(id: TxnId) -> Self {
        TxnShared {
            id,
            first_lsn: AtomicU64::new(0),
            last_lsn: AtomicU64::new(0),
            state: AtomicU8::new(TxnState::Active as u8),
        }
    }

    /// Record that this transaction logged a record at `lsn`.
    pub fn record_logged(&self, lsn: Lsn) {
        let _ = self
            .first_lsn
            .compare_exchange(0, lsn.0, Ordering::AcqRel, Ordering::Relaxed);
        self.last_lsn.store(lsn.0, Ordering::Release);
    }

    /// LSN of the first record, or null if the txn never logged.
    pub fn first_lsn(&self) -> Lsn {
        Lsn(self.first_lsn.load(Ordering::Acquire))
    }

    /// LSN of the latest record, or null.
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.last_lsn.load(Ordering::Acquire))
    }

    /// Force the last-LSN pointer (rollback walks it backwards via CLRs).
    pub fn set_last_lsn(&self, lsn: Lsn) {
        self.last_lsn.store(lsn.0, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TxnState {
        match self.state.load(Ordering::Acquire) {
            0 => TxnState::Active,
            1 => TxnState::Committed,
            _ => TxnState::Aborted,
        }
    }

    /// Transition the lifecycle state.
    pub fn set_state(&self, s: TxnState) {
        self.state.store(s as u8, Ordering::Release);
    }
}

/// Allocates transaction ids and tracks the active-transaction table.
pub struct TxnManager {
    next_id: AtomicU64,
    active: Mutex<HashMap<u64, Arc<TxnShared>>>,
}

impl TxnManager {
    /// A fresh manager; ids start at 1.
    pub fn new() -> Self {
        TxnManager {
            next_id: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
        }
    }

    /// Begin a transaction: allocate an id and register it active.
    pub fn begin(&self) -> Arc<TxnShared> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::AcqRel));
        let shared = Arc::new(TxnShared::new(id));
        self.active.lock().insert(id.0, shared.clone());
        shared
    }

    /// Remove a finished transaction from the active table.
    pub fn finish(&self, id: TxnId) {
        self.active.lock().remove(&id.0);
    }

    /// Register a transaction with a pre-existing id (crash restart rebuilds
    /// loser transactions found in the log).
    pub fn adopt(&self, id: TxnId, last_lsn: Lsn) -> Arc<TxnShared> {
        let shared = Arc::new(TxnShared::new(id));
        shared.set_last_lsn(last_lsn);
        self.active.lock().insert(id.0, shared.clone());
        self.bump_next_id(id);
        shared
    }

    /// Whether `id` is currently active.
    pub fn is_active(&self, id: TxnId) -> bool {
        self.active.lock().contains_key(&id.0)
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Snapshot the active-transaction table for a checkpoint record.
    pub fn active_table(&self) -> Vec<TxnTableEntry> {
        let mut v: Vec<TxnTableEntry> = self
            .active
            .lock()
            .values()
            .map(|t| TxnTableEntry {
                txn: t.id,
                first_lsn: t.first_lsn(),
                last_lsn: t.last_lsn(),
            })
            .collect();
        v.sort_by_key(|e| e.txn);
        v
    }

    /// The earliest first-LSN among active transactions (log truncation must
    /// not pass it).
    pub fn oldest_active_first_lsn(&self) -> Option<Lsn> {
        self.active
            .lock()
            .values()
            .map(|t| t.first_lsn())
            .filter(|l| l.is_valid())
            .min()
    }

    /// Ensure future ids exceed `floor` (called after crash recovery, which
    /// may have observed ids in the log).
    pub fn bump_next_id(&self, floor: TxnId) {
        self.next_id.fetch_max(floor.0 + 1, Ordering::AcqRel);
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_finish_lifecycle() {
        let tm = TxnManager::new();
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert_ne!(t1.id, t2.id);
        assert!(tm.is_active(t1.id));
        assert_eq!(tm.active_count(), 2);
        tm.finish(t1.id);
        assert!(!tm.is_active(t1.id));
        assert_eq!(tm.active_count(), 1);
    }

    #[test]
    fn lsn_tracking() {
        let tm = TxnManager::new();
        let t = tm.begin();
        assert_eq!(t.first_lsn(), Lsn::NULL);
        t.record_logged(Lsn(100));
        t.record_logged(Lsn(200));
        assert_eq!(t.first_lsn(), Lsn(100), "first LSN sticks");
        assert_eq!(t.last_lsn(), Lsn(200));
        t.set_last_lsn(Lsn(150));
        assert_eq!(t.last_lsn(), Lsn(150));
    }

    #[test]
    fn att_snapshot_sorted_and_complete() {
        let tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        a.record_logged(Lsn(500));
        b.record_logged(Lsn(300));
        let att = tm.active_table();
        assert_eq!(att.len(), 2);
        assert!(att[0].txn < att[1].txn);
        assert_eq!(tm.oldest_active_first_lsn(), Some(Lsn(300)));
        tm.finish(b.id);
        assert_eq!(tm.oldest_active_first_lsn(), Some(Lsn(500)));
        tm.finish(a.id);
        assert_eq!(tm.oldest_active_first_lsn(), None);
    }

    #[test]
    fn state_transitions() {
        let tm = TxnManager::new();
        let t = tm.begin();
        assert_eq!(t.state(), TxnState::Active);
        t.set_state(TxnState::Committed);
        assert_eq!(t.state(), TxnState::Committed);
        t.set_state(TxnState::Aborted);
        assert_eq!(t.state(), TxnState::Aborted);
    }

    #[test]
    fn id_floor_after_recovery() {
        let tm = TxnManager::new();
        tm.bump_next_id(TxnId(500));
        let t = tm.begin();
        assert!(t.id.0 > 500);
    }
}
