//! Allocation proofs for the obs hot path, measured the hard way: a
//! counting `#[global_allocator]` and counter deltas around the measured
//! section (the same technique as `tests/zero_copy_asof.rs` and the
//! snapbench clones-per-hit gate).
//!
//! Two claims, both ROADMAP invariants:
//!
//! * recording an event or a histogram sample on an **enabled** handle
//!   performs zero allocations once the thread is warm;
//! * a **disabled** handle is inert — constructing it, recording into it
//!   and reading its timebase allocate nothing at all.
//!
//! The allocation counters are process-global, so everything lives in ONE
//! test function — a second concurrently-running test would perturb the
//! deltas.

use rewind_common::testalloc::{allocations, CountingAllocator};
use rewind_obs::{EventKind, Obs, ObsConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocation delta of `f`, minimized over a few attempts: the counter is
/// process-global and the libtest harness thread allocates concurrently
/// (output capture), so a single measurement can read high by unrelated
/// noise. A path that truly allocates shows a nonzero delta on EVERY
/// attempt; the minimum isolates the path's own behaviour.
fn min_allocs(mut f: impl FnMut()) -> u64 {
    (0..5)
        .map(|_| {
            let a0 = allocations();
            f();
            allocations() - a0
        })
        .min()
        .unwrap()
}

#[test]
fn hot_path_allocation_proofs() {
    // ---- disabled handle: fully inert ----
    // (Snapshot reads like `commit_latency()` allocate their bucket Vec by
    // design; the inertness claim covers construction and the hot path.)
    let disabled_allocs = min_allocs(|| {
        let off = Obs::new(&ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        });
        for i in 0..1_000u64 {
            off.record(EventKind::CommitDurable, i, i, 1);
            off.commit_latency_us(i);
            off.flush_stall_us(i);
            assert_eq!(off.now_us(), 0, "disabled timebase reads as 0");
        }
        assert!(!off.is_enabled());
        assert_eq!(off.events_recorded(), 0);
    });
    assert_eq!(
        disabled_allocs, 0,
        "disabled obs allocated {disabled_allocs} times (must be 0)"
    );
    let off = Obs::new(&ObsConfig {
        enabled: false,
        ..ObsConfig::default()
    });
    assert_eq!(off.commit_latency().count, 0);

    // ---- enabled handle: allocation-free once warm ----
    // Construction allocates (the ring, the histograms) — by design, once.
    // With the `enabled` cargo feature off, every handle is the inert one
    // already proven above — there is no enabled hot path to measure.
    let obs = Obs::new(&ObsConfig::default());
    if !cfg!(feature = "enabled") {
        assert!(!obs.is_enabled(), "feature off must force-disable obs");
        return;
    }
    assert!(obs.is_enabled());
    // Warm-up: thread-stripe assignment, timebase epoch, any lazy
    // thread-local setup.
    for i in 0..64u64 {
        obs.record(EventKind::CommitBegin, i, i, 0);
        obs.commit_latency_us(i);
        let _ = obs.now_us();
    }
    let warm_allocs = min_allocs(|| {
        for i in 0..10_000u64 {
            obs.record(EventKind::CommitDurable, i, i, 1);
            obs.commit_latency_us(i);
            obs.flush_stall_us(i * 3);
            obs.asof_prepare_us(i * 7);
            let _ = obs.now_us();
        }
    });
    assert_eq!(
        warm_allocs, 0,
        "warm record path allocated {warm_allocs} times over 10k events \
         (must be 0 — the ring and histograms are fixed-capacity)"
    );
    assert_eq!(obs.events_recorded(), 64 + 5 * 10_000);
    assert_eq!(obs.commit_latency().count, 64 + 5 * 10_000);
}
