//! Log-bucketed latency histograms (HDR-style, no external deps).
//!
//! Values are bucketed by a power-of-two scheme with [`SUB_BUCKETS`]
//! sub-buckets per octave: values below `SUB_BUCKETS` get an exact bucket
//! each, and every larger value lands in one of 16 sub-buckets of its
//! power-of-two range, bounding the relative quantization error at ~6%.
//! The whole `u64` range is covered — there is no saturating "overflow"
//! bucket to lie about the tail.
//!
//! Recording is a [`rewind_common::StripedCounters`] increment: per-thread
//! striped, relaxed-atomic, lock-free, allocation-free — safe to call from
//! the commit path. Quantiles are extracted at snapshot time by walking the
//! merged bucket array; a bucket's upper bound is reported, so quantiles
//! are conservative (never understate latency).

use rewind_common::StripedCounters;

/// log2 of the sub-buckets per power-of-two octave.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16): relative error ≤ 1/16 of the value.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets: one exact bucket per value below [`SUB_BUCKETS`], then
/// 16 sub-buckets for each of the `64 - SUB_BITS` octaves `2^k..2^(k+1)`,
/// `k = SUB_BITS..=63`, covering the rest of the `u64` range.
pub const NUM_BUCKETS: usize =
    SUB_BUCKETS as usize + (64 - SUB_BITS as usize) * SUB_BUCKETS as usize;

const SUM_SLOT: usize = NUM_BUCKETS;
const COUNT_SLOT: usize = NUM_BUCKETS + 1;
const MAX_SLOT: usize = NUM_BUCKETS + 2;
const SLOTS: usize = NUM_BUCKETS + 3;

/// Bucket index for `v`. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = octave - SUB_BITS;
    let sub = (v >> shift) - SUB_BUCKETS; // 0..SUB_BUCKETS
    (SUB_BUCKETS + (octave - SUB_BITS) as u64 * SUB_BUCKETS + sub) as usize
}

/// Inclusive upper bound of bucket `idx` — the value quantiles report for
/// samples that landed in it.
pub fn bucket_bound(idx: usize) -> u64 {
    debug_assert!(idx < NUM_BUCKETS);
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let octave = SUB_BITS + ((idx - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
    let shift = octave - SUB_BITS;
    let lower = (SUB_BUCKETS + sub) << shift;
    lower + ((1u64 << shift) - 1)
}

/// A concurrent latency histogram. Construction allocates the striped
/// bucket array once; recording never allocates.
pub struct Histogram {
    counters: Box<StripedCounters<SLOTS>>,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counters: Box::new(StripedCounters::new()),
        }
    }

    /// Record one sample (typically microseconds). Lock-free and
    /// allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counters.add(bucket_index(v), 1);
        self.counters.add(SUM_SLOT, v);
        self.counters.add(COUNT_SLOT, 1);
        self.counters.max_up(MAX_SLOT, v);
    }

    /// Merge all stripes into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let sums = self.counters.sums();
        let mut buckets = vec![0u64; NUM_BUCKETS];
        buckets.copy_from_slice(&sums[..NUM_BUCKETS]);
        HistogramSnapshot {
            count: sums[COUNT_SLOT],
            sum: sums[SUM_SLOT],
            max: self.counters.max_of(MAX_SLOT),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50())
            .field("p99", &s.p99())
            .field("max", &s.max)
            .finish()
    }
}

/// An immutable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values (exact, not re-derived from buckets).
    pub sum: u64,
    /// Largest sample ever recorded. Note: a running maximum, not
    /// resettable — a `delta()` keeps the since-creation max.
    pub max: u64,
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (count 0, all buckets zero).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest sample.
    /// Conservative — never understates. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's bound can exceed the true max; clamp so
                // quantiles never exceed an actually observed value.
                return bucket_bound(idx).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples recorded since `earlier`: bucket-wise saturating
    /// subtraction. `max` stays the since-creation maximum (a running max
    /// cannot be windowed without a reservoir).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Combine two snapshots (e.g. the same latency measured by two
    /// engines) into one distribution.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_sub_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // First value of each octave starts a fresh sub-bucket run.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(17), 17);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32); // next octave, sub 0
        assert_eq!(bucket_index(33), 32); // same sub-bucket (width 2)
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= last, "v={v} idx={idx} last={last}");
            assert!(idx < NUM_BUCKETS);
            // The bucket's bound must cover the value.
            assert!(bucket_bound(idx) >= v, "v={v} bound={}", bucket_bound(idx));
            last = idx;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn saturation_u64_max_lands_in_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn bound_is_inclusive_upper_bound_of_its_bucket() {
        for idx in 0..NUM_BUCKETS {
            let b = bucket_bound(idx);
            assert_eq!(bucket_index(b), idx, "bound {b} of bucket {idx}");
            if b < u64::MAX {
                assert_eq!(bucket_index(b + 1), idx + 1);
            }
        }
    }

    #[test]
    fn quantiles_are_conservative_within_one_sixteenth() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.sum, 10_000 * 10_001 / 2);
        assert_eq!(s.max, 10_000);
        // p50 of 1..=10000 is 5000; reported bound is >= that and within
        // one sub-bucket's relative error.
        let p50 = s.p50();
        assert!((5000..=5000 + 5000 / 16 + 1).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((9900..=9900 + 9900 / 16 + 1).contains(&p99), "p99={p99}");
    }

    #[test]
    fn per_thread_stripes_merge_exactly() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per_thread);
        assert_eq!(s.max, 7 * 1_000 + 996);
    }

    #[test]
    fn delta_and_merge_roundtrip() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let a = h.snapshot();
        for v in 100..300u64 {
            h.record(v);
        }
        let b = h.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count, 200);
        assert_eq!(d.sum, (100..300u64).sum::<u64>());
        assert_eq!(a.merge(&d).count, b.count);
        assert_eq!(a.merge(&d).buckets, b.buckets);
    }
}
