//! Lock-free structured event ring.
//!
//! The ring records one typed [`Event`] per engine action of interest —
//! a commit becoming durable, a group-commit follower waking, a buffer
//! miss being filled — into a fixed pool of pre-allocated slots. The hot
//! path is a handful of relaxed atomic stores into the calling thread's
//! stripe: no locks, no allocation, no syscalls. When the ring fills, the
//! oldest events are overwritten (diagnostics favour recency); a
//! monotonically increasing per-slot sequence stamp lets the reader detect
//! and skip slots torn by a concurrent writer instead of returning garbage.
//!
//! The ring is *best effort by design*: under stripe sharing (more threads
//! than stripes) two writers can claim slots concurrently and a reader may
//! drop a torn slot. Exact accounting lives in the counters and histograms;
//! the ring answers "what just happened, in what order, how long did it
//! take" — the question a counter cannot.

use std::sync::atomic::{AtomicU64, Ordering};

use rewind_common::thread_stripe;

/// Number of ring stripes. A power of two; the per-thread stripe pick is
/// shared with [`rewind_common::StripedCounters`] (same thread → same
/// stripe index, taken modulo this count).
pub const RING_STRIPES: usize = 8;

/// The type of an engine event. Discriminants are stable (stored in ring
/// slots as raw `u64`s) — append new kinds, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction entered [`commit`](../core). `lsn` = commit LSN.
    CommitBegin = 1,
    /// A commit's log range is durable. `dur_us` = begin→durable latency.
    CommitDurable = 2,
    /// A group-commit leader performed a physical flush for the group.
    /// `lsn` = flushed-up-to byte offset, `dur_us` = leader flush time.
    GroupLeaderFlush = 3,
    /// A group-commit follower parked and was served by a leader's flush.
    /// `dur_us` = time parked.
    GroupFollowerWait = 4,
    /// One physical log flush (leader or direct). `lsn` = flushed-up-to
    /// offset, `arg` = bytes newly durable.
    LogFlush = 5,
    /// Checkpoint begin record appended. `lsn` = begin LSN.
    CheckpointBegin = 6,
    /// Checkpoint end record appended. `lsn` = end LSN, `dur_us` = span.
    CheckpointEnd = 7,
    /// Buffer pool miss: page read from media. `arg` = page id,
    /// `dur_us` = fill time.
    BufferMiss = 8,
    /// Buffer pool evicted a page frame. `arg` = page id.
    BufferEvict = 9,
    /// A torn/corrupt page was salvaged from log history. `arg` = page id.
    PageSalvage = 10,
    /// As-of snapshot began preparing a page version. `arg` = page id.
    AsOfPrepareStart = 11,
    /// As-of page version prepared. `arg` = page id, `dur_us` = prepare
    /// latency.
    AsOfPrepareDone = 12,
    /// One bulk as-of scan batch finished. `arg` = pages in batch,
    /// `dur_us` = batch time.
    ScanBatch = 13,
    /// Repair: harvest phase done. `dur_us` = phase time.
    RepairHarvest = 14,
    /// Repair: witness snapshot created. `lsn` = witness LSN.
    RepairWitness = 15,
    /// Repair: diff/plan phase done. `arg` = plan row count.
    RepairDiff = 16,
    /// Repair: apply phase done. `arg` = rows applied.
    RepairApply = 17,
    /// Recovery analysis pass done. `lsn` = redo start, `arg` = records
    /// scanned.
    RecoveryAnalysis = 18,
    /// Recovery redo pass done. `arg` = records applied.
    RecoveryRedo = 19,
    /// Recovery undo pass done. `arg` = records undone.
    RecoveryUndo = 20,
}

impl EventKind {
    fn from_u64(v: u64) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => CommitBegin,
            2 => CommitDurable,
            3 => GroupLeaderFlush,
            4 => GroupFollowerWait,
            5 => LogFlush,
            6 => CheckpointBegin,
            7 => CheckpointEnd,
            8 => BufferMiss,
            9 => BufferEvict,
            10 => PageSalvage,
            11 => AsOfPrepareStart,
            12 => AsOfPrepareDone,
            13 => ScanBatch,
            14 => RepairHarvest,
            15 => RepairWitness,
            16 => RepairDiff,
            17 => RepairApply,
            18 => RecoveryAnalysis,
            19 => RecoveryRedo,
            20 => RecoveryUndo,
            _ => return None,
        })
    }

    /// Stable lower-case name used in text renderings.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            CommitBegin => "commit_begin",
            CommitDurable => "commit_durable",
            GroupLeaderFlush => "group_leader_flush",
            GroupFollowerWait => "group_follower_wait",
            LogFlush => "log_flush",
            CheckpointBegin => "checkpoint_begin",
            CheckpointEnd => "checkpoint_end",
            BufferMiss => "buffer_miss",
            BufferEvict => "buffer_evict",
            PageSalvage => "page_salvage",
            AsOfPrepareStart => "asof_prepare_start",
            AsOfPrepareDone => "asof_prepare_done",
            ScanBatch => "scan_batch",
            RepairHarvest => "repair_harvest",
            RepairWitness => "repair_witness",
            RepairDiff => "repair_diff",
            RepairApply => "repair_apply",
            RecoveryAnalysis => "recovery_analysis",
            RecoveryRedo => "recovery_redo",
            RecoveryUndo => "recovery_undo",
        }
    }
}

/// One decoded event as read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Microseconds since the process-wide observability epoch
    /// (`Obs::now_us`) at which the event was recorded.
    pub at_us: u64,
    /// LSN payload (0 when the kind carries none).
    pub lsn: u64,
    /// Kind-specific argument (page id, record count, byte count; 0 when
    /// unused).
    pub arg: u64,
    /// Duration payload in microseconds (0 for instantaneous events).
    pub dur_us: u64,
}

/// One ring slot. The `stamp` is 0 while a writer is mid-store and
/// `1 + sequence` once the slot's fields are complete; a reader re-checks
/// the stamp after loading the fields and discards the slot if it moved.
struct Slot {
    stamp: AtomicU64,
    kind: AtomicU64,
    at_us: AtomicU64,
    lsn: AtomicU64,
    arg: AtomicU64,
    dur_us: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            at_us: AtomicU64::new(0),
            lsn: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
        }
    }
}

/// One stripe: a private head counter plus a power-of-two slot array.
/// Cache-line aligned so two stripes' heads never share a line.
#[repr(align(128))]
struct RingStripe {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// Fixed-capacity, overwrite-oldest, per-thread-striped event ring.
pub struct EventRing {
    stripes: Box<[RingStripe]>,
    /// Per-stripe capacity; power of two, so `seq & mask` picks the slot.
    mask: u64,
}

impl EventRing {
    /// A ring holding up to `capacity` events in total (rounded up so each
    /// of the [`RING_STRIPES`] stripes gets a power-of-two share, minimum 8
    /// slots per stripe).
    pub fn new(capacity: usize) -> EventRing {
        let per_stripe = (capacity / RING_STRIPES).next_power_of_two().max(8);
        let stripes = (0..RING_STRIPES)
            .map(|_| RingStripe {
                head: AtomicU64::new(0),
                slots: (0..per_stripe).map(|_| Slot::new()).collect(),
            })
            .collect();
        EventRing {
            stripes,
            mask: per_stripe as u64 - 1,
        }
    }

    /// Slots per stripe (the overwrite horizon for a single-threaded
    /// recording sequence).
    pub fn stripe_capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Total slots across stripes.
    pub fn capacity(&self) -> usize {
        self.stripe_capacity() * RING_STRIPES
    }

    /// Record one event into the calling thread's stripe. Lock-free and
    /// allocation-free: one `fetch_add` to claim a sequence number, six
    /// relaxed/release stores.
    #[inline]
    pub fn record(&self, kind: EventKind, at_us: u64, lsn: u64, arg: u64, dur_us: u64) {
        let stripe = &self.stripes[thread_stripe() & (RING_STRIPES - 1)];
        let seq = stripe.head.fetch_add(1, Ordering::Relaxed);
        let slot = &stripe.slots[(seq & self.mask) as usize];
        // Mark the slot in-progress, publish the fields, then stamp it
        // complete. A reader seeing stamp != seq+1 (or 0) skips the slot.
        slot.stamp.store(0, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.lsn.store(lsn, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Events lost to overwrite: for each stripe, everything its head has
    /// advanced past its capacity.
    pub fn dropped(&self) -> u64 {
        let cap = self.mask + 1;
        self.stripes
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed).saturating_sub(cap))
            .sum()
    }

    /// Snapshot the ring's current contents, oldest-first within each
    /// stripe, then merged across stripes by timestamp. Slots torn by a
    /// concurrent writer are skipped.
    pub fn events(&self) -> Vec<Event> {
        let cap = self.mask + 1;
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let head = stripe.head.load(Ordering::Acquire);
            let start = head.saturating_sub(cap);
            for seq in start..head {
                let slot = &stripe.slots[(seq & self.mask) as usize];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp != seq + 1 {
                    continue; // torn or already overwritten
                }
                let kind = slot.kind.load(Ordering::Relaxed);
                let at_us = slot.at_us.load(Ordering::Relaxed);
                let lsn = slot.lsn.load(Ordering::Relaxed);
                let arg = slot.arg.load(Ordering::Relaxed);
                let dur_us = slot.dur_us.load(Ordering::Relaxed);
                // Re-check: if a writer lapped us mid-read the stamp moved.
                if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                    continue;
                }
                if let Some(kind) = EventKind::from_u64(kind) {
                    out.push(Event {
                        kind,
                        at_us,
                        lsn,
                        arg,
                        dur_us,
                    });
                }
            }
        }
        out.sort_by_key(|e| e.at_us);
        out
    }

    /// Count of retained events of one kind (cheaper than `events()` when
    /// only a tally is needed; same torn-slot skipping).
    pub fn count_kind(&self, kind: EventKind) -> u64 {
        self.events().iter().filter(|e| e.kind == kind).count() as u64
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back_in_order() {
        let ring = EventRing::new(1024);
        for i in 0..10u64 {
            ring.record(EventKind::LogFlush, i, i * 100, i, 0);
        }
        let events = ring.events();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind, EventKind::LogFlush);
            assert_eq!(e.at_us, i as u64);
            assert_eq!(e.lsn, i as u64 * 100);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = EventRing::new(64); // 8 slots per stripe
        let per_stripe = ring.stripe_capacity() as u64;
        // Single thread → single stripe; write 3 full generations.
        let total = per_stripe * 3;
        for i in 0..total {
            ring.record(EventKind::CommitDurable, i, 0, i, 0);
        }
        let events = ring.events();
        assert_eq!(events.len(), per_stripe as usize);
        // Only the newest generation survives.
        for e in &events {
            assert!(e.at_us >= total - per_stripe);
        }
        assert_eq!(ring.recorded(), total);
        assert_eq!(ring.dropped(), total - per_stripe);
    }

    #[test]
    fn concurrent_writers_never_produce_garbage_kinds() {
        let ring = std::sync::Arc::new(EventRing::new(256));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.record(EventKind::BufferMiss, t * 10_000 + i, 0, i, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8 * 1000);
        // Every retained, untorn slot decodes to the kind that was written.
        for e in ring.events() {
            assert_eq!(e.kind, EventKind::BufferMiss);
            assert_eq!(e.dur_us, 1);
        }
    }
}
