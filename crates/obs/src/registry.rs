//! The unified metrics registry.
//!
//! Every layer of the engine keeps its own counters close to the hot path
//! it instruments ([`rewind_common::IoStats`], pool stripes, snapshot
//! stats, the obs histograms). The registry is the *composition* point: a
//! list of [`MetricSource`]s, each of which knows how to dump its numbers
//! into a [`MetricsSnapshot`] — one flat, stably-named view of the whole
//! engine that can be diffed (`delta`), rendered as Prometheus-style text
//! (`to_text`), or as JSON (`to_json`).
//!
//! Naming convention: `<subsystem>_<what>` with the `rewind_` prefix added
//! at exposition time only (snapshot keys stay short for programmatic
//! use). All maps are `BTreeMap`s so every rendering is deterministic —
//! a requirement for the CI gates that diff expositions across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::RwLock;
use rewind_common::IoStats;

use crate::hist::HistogramSnapshot;

/// Anything that can contribute metrics to a snapshot.
pub trait MetricSource: Send + Sync {
    /// Dump current values into `out`. Called under no engine locks; the
    /// implementation must only read (atomics, try-locks, its own state).
    fn collect(&self, out: &mut MetricsSnapshot);
}

impl<T: MetricSource + ?Sized> MetricSource for Arc<T> {
    fn collect(&self, out: &mut MetricsSnapshot) {
        (**self).collect(out)
    }
}

/// A closure-backed [`MetricSource`], for layers that would otherwise need
/// a one-off adapter struct.
pub struct FnSource<F: Fn(&mut MetricsSnapshot) + Send + Sync>(pub F);

impl<F: Fn(&mut MetricsSnapshot) + Send + Sync> MetricSource for FnSource<F> {
    fn collect(&self, out: &mut MetricsSnapshot) {
        (self.0)(out)
    }
}

/// Adapter exposing an [`IoStats`] under a prefix (`io_data_page_reads`,
/// `io_log_log_flushes`, ...). Field names come from
/// [`rewind_common::IoSnapshot::fields`], so a counter added to `IoStats`
/// shows up here without touching this crate.
pub struct IoStatsSource {
    pub prefix: &'static str,
    pub stats: Arc<IoStats>,
}

impl MetricSource for IoStatsSource {
    fn collect(&self, out: &mut MetricsSnapshot) {
        for (name, value) in self.stats.snapshot().fields() {
            out.counter(&format!("{}_{}", self.prefix, name), value);
        }
    }
}

/// A flat point-in-time view of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters and gauges, by stable name.
    pub counters: BTreeMap<String, u64>,
    /// Latency distributions, by stable name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Set counter `name` to `value` (sources call this from `collect`).
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Attach histogram `name` (sources call this from `collect`).
    pub fn histogram(&mut self, name: &str, snap: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), snap);
    }

    /// Counter value by name (0 if absent — absent and zero are
    /// indistinguishable by design: sources always emit their full set).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Per-metric difference `self − earlier` (saturating). Meaningful for
    /// monotonic counters; gauges (e.g. `pool_pinned`, `asof_open`) come
    /// out as the saturated difference of two instantaneous values —
    /// consult the absolute snapshot for those.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => v.delta(e),
                    None => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Prometheus-style text exposition. One `rewind_<name>` line per
    /// counter; histograms expose `_count`/`_sum`/`_max` plus quantile
    /// gauges `_p50`/`_p95`/`_p99` (microsecond-valued, bucket upper
    /// bounds). Deterministic order (BTreeMap iteration).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE rewind_{name} counter");
            let _ = writeln!(out, "rewind_{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE rewind_{name} summary");
            let _ = writeln!(out, "rewind_{name}_count {}", h.count);
            let _ = writeln!(out, "rewind_{name}_sum {}", h.sum);
            let _ = writeln!(out, "rewind_{name}_max {}", h.max);
            let _ = writeln!(out, "rewind_{name}_p50 {}", h.p50());
            let _ = writeln!(out, "rewind_{name}_p95 {}", h.p95());
            let _ = writeln!(out, "rewind_{name}_p99 {}", h.p99());
        }
        out
    }

    /// JSON rendering (hand-rolled — the workspace carries no serde).
    /// Histograms are summarized (count/sum/max/quantiles), not dumped
    /// bucket-by-bucket.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a [`MetricsSnapshot::to_text`] exposition back into
    /// `name → value` pairs. Shared by the obs tests and the CI smoke
    /// gate: if this returns `Err`, the exposition is malformed.
    pub fn parse_text(text: &str) -> Result<BTreeMap<String, u64>, String> {
        let mut out = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (name, value) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(v), None) => (n, v),
                _ => {
                    return Err(format!(
                        "line {}: expected `name value`: {line:?}",
                        lineno + 1
                    ))
                }
            };
            let Some(short) = name.strip_prefix("rewind_") else {
                return Err(format!(
                    "line {}: metric lacks rewind_ prefix: {name}",
                    lineno + 1
                ));
            };
            let value: u64 = value
                .parse()
                .map_err(|e| format!("line {}: bad value {value:?}: {e}", lineno + 1))?;
            if out.insert(short.to_string(), value).is_some() {
                return Err(format!("line {}: duplicate metric {name}", lineno + 1));
            }
        }
        Ok(out)
    }
}

/// An ordered list of [`MetricSource`]s, snapshotted on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: RwLock<Vec<Box<dyn MetricSource>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add a source. Registration order is irrelevant to output order —
    /// snapshots sort by metric name.
    pub fn register(&self, source: Box<dyn MetricSource>) {
        self.sources.write().push(source);
    }

    /// Collect every source into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for source in self.sources.read().iter() {
            source.collect(&mut out);
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("sources", &self.sources.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn snapshot_composes_sources_and_text_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.register(Box::new(FnSource(|out: &mut MetricsSnapshot| {
            out.counter("alpha_ops", 7);
            out.counter("beta_ops", 0);
        })));
        let h = Arc::new(Histogram::new());
        h.record(100);
        h.record(200);
        let hc = h.clone();
        reg.register(Box::new(FnSource(move |out: &mut MetricsSnapshot| {
            out.histogram("alpha_latency_us", hc.snapshot());
        })));

        let snap = reg.snapshot();
        assert_eq!(snap.get("alpha_ops"), 7);
        assert_eq!(snap.get("beta_ops"), 0);
        assert_eq!(snap.get("missing"), 0);
        assert_eq!(snap.hist("alpha_latency_us").unwrap().count, 2);

        let parsed = MetricsSnapshot::parse_text(&snap.to_text()).unwrap();
        assert_eq!(parsed["alpha_ops"], 7);
        assert_eq!(parsed["alpha_latency_us_count"], 2);
        assert_eq!(parsed["alpha_latency_us_sum"], 300);
        assert_eq!(parsed["alpha_latency_us_max"], 200);

        // Deterministic: two renderings are byte-identical.
        assert_eq!(snap.to_text(), reg.snapshot().to_text());
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut a = MetricsSnapshot::new();
        a.counter("ops", 10);
        let mut b = MetricsSnapshot::new();
        b.counter("ops", 25);
        b.counter("fresh", 3);
        let d = b.delta(&a);
        assert_eq!(d.get("ops"), 15);
        assert_eq!(d.get("fresh"), 3);
    }

    #[test]
    fn parse_rejects_malformed_expositions() {
        assert!(MetricsSnapshot::parse_text("rewind_a 1\nrewind_a 2").is_err());
        assert!(MetricsSnapshot::parse_text("naked_name 1").is_err());
        assert!(MetricsSnapshot::parse_text("rewind_a notanumber").is_err());
        assert!(MetricsSnapshot::parse_text("rewind_a").is_err());
        assert!(MetricsSnapshot::parse_text("# comment\n\nrewind_a 1").is_ok());
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let mut s = MetricsSnapshot::new();
        s.counter("x", 1);
        s.histogram("h", HistogramSnapshot::empty());
        let j = s.to_json();
        assert!(j.contains("\"x\": 1"));
        assert!(j.contains("\"h\": {\"count\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
