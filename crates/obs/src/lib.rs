//! # rewind-obs — engine-wide observability
//!
//! The paper's setting (SQL Azure fleets, §2) is one where engines are
//! operated through their counters and logs: an error-recovery feature is
//! only usable in production if the operator can see what the engine did
//! and how long it took. This crate is that substrate — three layers, all
//! dependency-free and safe to call from the hottest paths:
//!
//! 1. **[`event::EventRing`]** — a lock-free, per-thread-striped,
//!    fixed-capacity ring of typed [`event::Event`]s (commit begin/durable,
//!    group-commit leader/follower, flush, checkpoint, buffer miss/evict/
//!    salvage, as-of prepare, repair and recovery phases), each carrying an
//!    LSN and a duration. Overwrite-oldest; zero allocation per record.
//! 2. **[`hist::Histogram`]** — HDR-style log-bucketed latency histograms
//!    (16 sub-buckets per power-of-two octave) with p50/p95/p99/max
//!    extraction, built on the same striped-counter substrate the engine's
//!    I/O accounting uses.
//! 3. **[`registry::MetricsRegistry`]** — composes every layer's counters
//!    (IoStats, pool stripes, snapshot stats, the histograms above) into
//!    one [`registry::MetricsSnapshot`] with `delta()` support,
//!    Prometheus-style text exposition, and JSON.
//!
//! The front door is [`Obs`]: one handle owned by the log manager and
//! shared (via `Arc`) by every engine layer. It carries the ring, the four
//! engine histograms, and the master switch. Two off-switches exist:
//!
//! * **Runtime** — `ObsConfig { enabled: false }` builds an [`Obs`] whose
//!   recording methods test one bool and return; nothing is allocated.
//! * **Compile time** — building this crate with `--no-default-features`
//!   removes the `enabled` feature and every recording body compiles to
//!   nothing at all.
//!
//! Invariant (see ROADMAP): recording never takes a lock shared with the
//! commit path, and a disabled `Obs` is allocation-free on every path —
//! both are enforced by tests (`tests/zero_alloc.rs`).

pub mod event;
pub mod hist;
pub mod registry;

pub use event::{Event, EventKind, EventRing};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{FnSource, IoStatsSource, MetricSource, MetricsRegistry, MetricsSnapshot};

use std::sync::OnceLock;
use std::time::Instant;

/// Configuration for an [`Obs`] instance. Lives on `LogConfig` so the log
/// manager — the first engine component constructed — can own the handle.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master runtime switch. `false` builds a no-op handle.
    pub enabled: bool,
    /// Total event-ring capacity (split across 8 stripes; a serial
    /// workload lands on one stripe and sees 1/8 of this as its overwrite
    /// horizon).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 32 * 1024,
        }
    }
}

/// Everything a live `Obs` owns. Boxed behind an `Option` so a disabled
/// handle allocates none of it.
struct ObsInner {
    ring: EventRing,
    /// Commit begin → durable, microseconds. One sample per durable commit.
    commit_latency: Histogram,
    /// Physical log-flush wall time, microseconds. One sample per flush.
    flush_stall: Histogram,
    /// As-of page prepare (§5.3 miss path), microseconds. One sample per
    /// prepared page.
    asof_prepare: Histogram,
    /// Bulk as-of scan batch time, microseconds.
    scan_batch: Histogram,
    /// Per-worker busy time in partitioned redo, microseconds. One sample
    /// per redo worker per restart.
    redo_worker: Histogram,
}

/// Process-wide observability epoch: all `at_us` timestamps are micros
/// since the first `Obs::now_us` call anywhere in the process, so events
/// from multiple engine instances (e.g. pre- and post-recovery) share one
/// time axis.
static EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn epoch_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Microseconds since the process observability epoch, independent of any
/// [`Obs`] handle's enabled state.
///
/// [`Obs::now_us`] deliberately returns 0 when the handle is disabled so
/// that *recording* sites stay branch-free; but phase timings that feed
/// user-facing reports (e.g. the recovery report's analysis/redo/undo
/// durations) must be real even on a disabled-obs engine. Those sites use
/// this free function. This crate is the workspace's timebase owner, so
/// routing through here keeps `Instant` out of engine crates.
#[inline]
pub fn monotonic_us() -> u64 {
    epoch_us()
}

/// The engine's observability handle. Cheap to share (`Arc<Obs>`); every
/// recording method is lock-free, allocation-free, and a no-op when the
/// handle is disabled.
pub struct Obs {
    inner: Option<Box<ObsInner>>,
}

impl Obs {
    /// Build from config. With `enabled: false` (or with this crate built
    /// `--no-default-features`) the result is a no-op handle that owns no
    /// ring and no histograms.
    pub fn new(config: &ObsConfig) -> Obs {
        #[cfg(feature = "enabled")]
        if config.enabled {
            return Obs {
                inner: Some(Box::new(ObsInner {
                    ring: EventRing::new(config.ring_capacity),
                    commit_latency: Histogram::new(),
                    flush_stall: Histogram::new(),
                    asof_prepare: Histogram::new(),
                    scan_batch: Histogram::new(),
                    redo_worker: Histogram::new(),
                })),
            };
        }
        let _ = config;
        Obs { inner: None }
    }

    /// A hard-off handle, regardless of features.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the process observability epoch — the timebase
    /// for event timestamps and durations. Returns 0 when disabled, so
    /// instrumentation sites can unconditionally compute
    /// `obs.now_us() - t0` without branching themselves.
    #[inline]
    pub fn now_us(&self) -> u64 {
        if self.inner.is_some() {
            epoch_us()
        } else {
            0
        }
    }

    /// Record one event (timestamped now). Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, kind: EventKind, lsn: u64, arg: u64, dur_us: u64) {
        if let Some(inner) = &self.inner {
            inner.ring.record(kind, epoch_us(), lsn, arg, dur_us);
        }
    }

    /// Record one commit-latency sample (µs, begin → durable). Callers
    /// record exactly one sample per durable commit so the histogram count
    /// equals the commit count on a serial trace.
    #[inline]
    pub fn commit_latency_us(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.commit_latency.record(v);
        }
    }

    /// Record one physical-flush stall sample (µs). One sample per
    /// counted log flush.
    #[inline]
    pub fn flush_stall_us(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.flush_stall.record(v);
        }
    }

    /// Record one as-of page-prepare sample (µs). One sample per
    /// `pages_prepared` increment.
    #[inline]
    pub fn asof_prepare_us(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.asof_prepare.record(v);
        }
    }

    /// Record one bulk-scan batch-time sample (µs).
    #[inline]
    pub fn scan_batch_us(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.scan_batch.record(v);
        }
    }

    /// Record one redo-worker busy-time sample (µs). One sample per worker
    /// per partitioned restart, so the histogram count equals
    /// `restarts × workers` and its spread shows partition skew.
    #[inline]
    pub fn redo_worker_us(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.redo_worker.record(v);
        }
    }

    /// Snapshot the event ring (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.ring.events(),
            None => Vec::new(),
        }
    }

    /// Total events ever recorded.
    pub fn events_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.recorded())
    }

    /// Events lost to ring overwrite.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.dropped())
    }

    /// Snapshot of the commit-latency histogram.
    pub fn commit_latency(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |i| i.commit_latency.snapshot())
    }

    /// Snapshot of the flush-stall histogram.
    pub fn flush_stall(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |i| i.flush_stall.snapshot())
    }

    /// Snapshot of the as-of prepare histogram.
    pub fn asof_prepare(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |i| i.asof_prepare.snapshot())
    }

    /// Snapshot of the scan-batch histogram.
    pub fn scan_batch(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |i| i.scan_batch.snapshot())
    }

    /// Snapshot of the redo-worker busy-time histogram.
    pub fn redo_worker(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |i| i.redo_worker.snapshot())
    }
}

impl MetricSource for Obs {
    fn collect(&self, out: &mut MetricsSnapshot) {
        out.counter("obs_enabled", self.is_enabled() as u64);
        out.counter("obs_events_recorded", self.events_recorded());
        out.counter("obs_events_dropped", self.events_dropped());
        out.histogram("commit_latency_us", self.commit_latency());
        out.histogram("flush_stall_us", self.flush_stall());
        out.histogram("asof_prepare_us", self.asof_prepare());
        out.histogram("scan_batch_us", self.scan_batch());
        out.histogram("redo_worker_us", self.redo_worker());
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("events_recorded", &self.events_recorded())
            .field("events_dropped", &self.events_dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert_eq!(obs.now_us(), 0);
        obs.record(EventKind::CommitDurable, 1, 2, 3);
        obs.commit_latency_us(42);
        assert_eq!(obs.events_recorded(), 0);
        assert_eq!(obs.events(), Vec::new());
        assert_eq!(obs.commit_latency().count, 0);
        let obs2 = Obs::new(&ObsConfig {
            enabled: false,
            ring_capacity: 1024,
        });
        assert!(!obs2.is_enabled());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_obs_records_events_and_samples() {
        let obs = Obs::new(&ObsConfig::default());
        assert!(obs.is_enabled());
        obs.record(EventKind::LogFlush, 512, 4096, 10);
        obs.flush_stall_us(10);
        obs.commit_latency_us(120);
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::LogFlush);
        assert_eq!(events[0].lsn, 512);
        assert_eq!(obs.flush_stall().count, 1);
        assert_eq!(obs.commit_latency().max, 120);
        let mut snap = MetricsSnapshot::new();
        obs.collect(&mut snap);
        assert_eq!(snap.get("obs_events_recorded"), 1);
        assert_eq!(snap.get("obs_events_dropped"), 0);
        assert_eq!(snap.hist("flush_stall_us").unwrap().count, 1);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_makes_every_handle_inert() {
        let obs = Obs::new(&ObsConfig::default());
        assert!(!obs.is_enabled());
        obs.record(EventKind::CommitDurable, 1, 2, 3);
        assert_eq!(obs.events_recorded(), 0);
    }
}
