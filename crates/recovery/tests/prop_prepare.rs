//! Property test for the paper's core primitive: for an arbitrary logged
//! modification program over a page — including deallocation and
//! re-allocation (preformat chains) and optional full page images —
//! `PreparePageAsOf` must reconstruct every intermediate state exactly.

use proptest::prelude::*;
use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_pagestore::{Page, PageType};
use rewind_recovery::prepare_page_as_of;
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, Vec<u8>),
    Delete(u8),
    Update(u8, Vec<u8>),
    /// Deallocate, then later re-allocate (drives the §4.2-1 preformat path).
    Recycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..60)).prop_map(|(s, b)| Op::Insert(s, b)),
        2 => any::<u8>().prop_map(Op::Delete),
        2 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..40)).prop_map(|(s, b)| Op::Update(s, b)),
        1 => Just(Op::Recycle),
    ]
}

struct Harness {
    log: LogManager,
    page: Page,
    pid: PageId,
    fpi_interval: u32,
    mods: u32,
    /// Every state the page has ever been in, with the LSN it held.
    history: Vec<(Lsn, Page)>,
}

impl Harness {
    fn new(fpi_interval: u32) -> Self {
        let pid = PageId(7);
        let mut h = Harness {
            log: LogManager::new(LogConfig::default()),
            page: Page::zeroed(),
            pid,
            fpi_interval,
            mods: 0,
            history: vec![(Lsn::NULL, Page::zeroed())],
        };
        h.format();
        h
    }

    fn append_inner(&mut self, payload: LogPayload, record_history: bool) {
        let rec = LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: self.pid,
            prev_page_lsn: self.page.page_lsn(),
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload,
        };
        let lsn = self.log.append(&rec);
        rec.payload.redo(&mut self.page, self.pid, lsn).unwrap();
        if record_history {
            self.history.push((lsn, self.page.clone()));
        }
        if record_history
            && self.fpi_interval > 0
            && !matches!(rec.payload, LogPayload::FullPageImage { .. })
        {
            self.mods += 1;
            if self.mods >= self.fpi_interval {
                self.mods = 0;
                let fpi = LogPayload::FullPageImage {
                    prev_fpi_lsn: self.page.last_fpi_lsn(),
                    image: Box::new(*self.page.image()),
                };
                self.append_inner(fpi, true);
            }
        }
    }

    fn append(&mut self, payload: LogPayload) {
        self.append_inner(payload, true);
    }

    fn format(&mut self) {
        self.append(LogPayload::Format {
            object: ObjectId(1),
            ty: PageType::BTreeLeaf,
            level: 0,
            next: PageId::INVALID,
            prev: PageId::INVALID,
        });
    }

    fn apply(&mut self, op: &Op) {
        let n = self.page.slot_count() as usize;
        match op {
            Op::Insert(slot, bytes) => {
                if !self.page.can_insert(bytes.len()) {
                    return;
                }
                let slot = (*slot as usize % (n + 1)) as u16;
                self.append(LogPayload::InsertRecord {
                    slot,
                    bytes: bytes.clone(),
                });
            }
            Op::Delete(slot) => {
                if n == 0 {
                    return;
                }
                let slot = *slot as usize % n;
                let old = self.page.record(slot).unwrap().to_vec();
                self.append(LogPayload::DeleteRecord {
                    slot: slot as u16,
                    old,
                });
            }
            Op::Update(slot, bytes) => {
                if n == 0 {
                    return;
                }
                let slot = *slot as usize % n;
                let old = self.page.record(slot).unwrap().to_vec();
                if bytes.len() > old.len() && bytes.len() - old.len() > self.page.free_space() {
                    return;
                }
                self.append(LogPayload::UpdateRecord {
                    slot: slot as u16,
                    old,
                    new: bytes.clone(),
                });
            }
            Op::Recycle => {
                // Deallocation leaves content in place; re-allocation logs a
                // preformat with the previous image, then a fresh format.
                //
                // The instant *between* the two records is deliberately not
                // recorded as addressable history: the page is unreachable
                // (deallocated, not yet linked anywhere) at any SplitLSN that
                // could land there, so `PreparePageAsOf` semantics only need
                // to hold on either side of the pair.
                let prev = Box::new(*self.page.image());
                self.append_inner(LogPayload::Preformat { prev_image: prev }, false);
                self.format();
            }
        }
    }
}

fn records_of(p: &Page) -> Vec<Vec<u8>> {
    p.records().map(|r| r.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn prepare_reconstructs_every_state(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        fpi in prop_oneof![Just(0u32), Just(3u32), Just(9u32)],
    ) {
        let mut h = Harness::new(fpi);
        for op in &ops {
            h.apply(op);
        }
        // every recorded state must be reachable from the *final* page
        for (as_of, expect) in &h.history {
            let mut p = h.page.clone();
            prepare_page_as_of(&h.log, &mut p, h.pid, *as_of).unwrap();
            prop_assert_eq!(p.page_lsn(), expect.page_lsn(), "pageLSN at {}", as_of);
            prop_assert_eq!(records_of(&p), records_of(expect), "records at {}", as_of);
            prop_assert_eq!(p.page_type(), expect.page_type(), "type at {}", as_of);
            prop_assert_eq!(p.last_fpi_lsn(), expect.last_fpi_lsn(), "fpi anchor at {}", as_of);
        }
    }
}
