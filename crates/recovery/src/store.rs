//! [`EngineStore`] — the live engine's [`Store`] implementation.
//!
//! This is the write path described in paper §2.1: fetch the page through
//! the buffer manager, latch it exclusively, generate a log record (chained
//! per-transaction via `prev_lsn` and per-page via `prevPageLSN`), apply the
//! change, mark the frame dirty. On top of that sit the paper's extensions:
//!
//! * the **FPI cadence** (§6.1): "we optionally emit preformat log records
//!   containing the complete image of the data page after every Nth
//!   modification to the page" — implemented as `FullPageImage` records
//!   chained via `prevFpiLSN`;
//! * the **copy-on-write hook** (§2.2): registered regular snapshots receive
//!   the pre-image of the first modification after their creation;
//! * the **modification gate**: snapshot creation briefly blocks writers to
//!   pin a consistent split point.

use crate::rollback;
use parking_lot::{Mutex, RwLock};
use rewind_access::store::{ModKind, Store};
use rewind_buffer::BufferPool;
use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_pagestore::{Page, PageType};
use rewind_txn::{ObjectLatches, TxnShared};
use rewind_wal::{LogManager, LogPayload, LogRecord, REC_FLAG_CLR, REC_FLAG_SYSTEM};
use std::sync::Arc;

/// Receiver of copy-on-write pre-images (regular database snapshots).
pub trait CowSink: Send + Sync {
    /// Called with the current image of `pid` immediately before it is
    /// modified. Implementations store it if they don't have a version yet.
    fn before_modify(&self, pid: PageId, current: &Page);
}

/// Everything the live `Store` needs, shared across transactions.
pub struct EngineParts {
    /// The buffer pool.
    pub pool: Arc<BufferPool>,
    /// The write-ahead log.
    pub log: Arc<LogManager>,
    /// Per-object structure latches.
    pub latches: Arc<ObjectLatches>,
    /// Serializes page allocation.
    pub alloc_lock: Mutex<()>,
    /// Writers take this shared; snapshot creation takes it exclusive.
    pub mod_gate: RwLock<()>,
    /// Registered copy-on-write sinks (regular snapshots), keyed by token.
    pub cow_sinks: RwLock<Vec<(u64, Arc<dyn CowSink>)>>,
    /// Next COW registration token.
    pub cow_token: std::sync::atomic::AtomicU64,
    /// Full-page-image interval N (0 = disabled), paper §6.1.
    pub fpi_interval: u32,
}

impl EngineParts {
    /// The engine's observability handle. The log manager owns it (see
    /// `LogConfig::obs`); everything reached through `EngineParts` shares
    /// that one instance.
    pub fn obs(&self) -> &Arc<rewind_obs::Obs> {
        self.log.obs()
    }

    /// Register a copy-on-write sink; returns a token for deregistration.
    pub fn register_cow(&self, sink: Arc<dyn CowSink>) -> u64 {
        let token = self
            .cow_token
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        self.cow_sinks.write().push((token, sink));
        token
    }

    /// Deregister a copy-on-write sink by token.
    pub fn deregister_cow(&self, token: u64) {
        self.cow_sinks.write().retain(|(t, _)| *t != token);
    }
}

/// The live-engine store: [`EngineParts`] bound to one transaction.
pub struct EngineStore<'a> {
    /// Shared engine state.
    pub parts: &'a EngineParts,
    /// The transaction this store logs on behalf of.
    pub txn: &'a TxnShared,
}

impl<'a> EngineStore<'a> {
    /// Bind `parts` to `txn`.
    pub fn new(parts: &'a EngineParts, txn: &'a TxnShared) -> Self {
        EngineStore { parts, txn }
    }
}

/// `ModKind` → (record flags, `undo_next`).
fn mod_flags(kind: ModKind) -> (u8, Lsn) {
    match kind {
        ModKind::User => (0, Lsn::NULL),
        ModKind::Smo => (REC_FLAG_SYSTEM, Lsn::NULL),
        ModKind::Clr { undo_next } => (REC_FLAG_CLR, undo_next),
    }
}

/// The object a record is attributed to: Format/Reformat carry their own
/// id (the page header's is stale or not yet written); everything else
/// uses the page's.
fn record_object(payload: &LogPayload, page: &Page) -> ObjectId {
    match payload {
        LogPayload::Format { object, .. } | LogPayload::Reformat { object, .. } => *object,
        _ => page.object_id(),
    }
}

/// Copy-on-write push for regular snapshots (paper §2.2): the *first*
/// post-snapshot modification pushes the page's current image;
/// `before_modify` is expected to ignore later calls.
fn push_cow(parts: &EngineParts, pid: PageId, page: &Page) {
    let sinks = parts.cow_sinks.read();
    for (_, sink) in sinks.iter() {
        sink.before_modify(pid, page);
    }
}

/// FPI cadence (§6.1): emit one `FullPageImage` record of the page's
/// current state. FPIs are outside any transaction chain — they carry no
/// logical change, only a faster path backwards.
fn emit_fpi(
    parts: &EngineParts,
    v: &mut rewind_buffer::FrameView<'_>,
    pid: PageId,
    object: ObjectId,
) -> Result<()> {
    v.reset_fpi_counter();
    let fpi = LogPayload::FullPageImage {
        prev_fpi_lsn: v.page().last_fpi_lsn(),
        image: Box::new(*v.page().image()),
    };
    let fpi_rec = LogRecord {
        lsn: Lsn::NULL,
        txn: rewind_common::TxnId::NONE,
        prev_lsn: Lsn::NULL,
        page: pid,
        prev_page_lsn: v.page().page_lsn(),
        object,
        undo_next: Lsn::NULL,
        flags: REC_FLAG_SYSTEM,
        payload: fpi,
    };
    let fpi_lsn = parts.log.append(&fpi_rec);
    fpi_rec.payload.redo(v.page_mut(), pid, fpi_lsn)
}

impl Store for EngineStore<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        self.parts.pool.with_page(pid, f)
    }

    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        kind: ModKind,
        extra_flags: u8,
    ) -> Result<Lsn> {
        let _gate = self.parts.mod_gate.read();
        let parts = self.parts;
        parts.pool.with_page_mut(pid, |v| {
            payload.precheck(v.page())?;
            push_cow(parts, pid, v.page());
            let (flags, undo_next) = mod_flags(kind);
            let object = record_object(&payload, v.page());
            let rec = LogRecord {
                lsn: Lsn::NULL,
                txn: self.txn.id,
                prev_lsn: self.txn.last_lsn(),
                page: pid,
                prev_page_lsn: v.page().page_lsn(),
                object,
                undo_next,
                flags: flags | extra_flags,
                payload,
            };
            let lsn = parts.log.append(&rec);
            self.txn.record_logged(lsn);
            rec.payload.redo(v.page_mut(), pid, lsn)?;
            v.mark_dirty(lsn);

            if parts.fpi_interval > 0
                && !matches!(rec.payload, LogPayload::FullPageImage { .. })
                && v.bump_fpi_counter() >= parts.fpi_interval
            {
                emit_fpi(parts, v, pid, object)?;
            }
            Ok(lsn)
        })
    }

    fn modify_batch(
        &self,
        pid: PageId,
        payloads: Vec<LogPayload>,
        kind: ModKind,
        extra_flags: u8,
    ) -> Result<Vec<Lsn>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let _gate = self.parts.mod_gate.read();
        let parts = self.parts;
        parts.pool.with_page_mut(pid, |v| {
            // Validate the WHOLE batch before logging a single byte: replay
            // the payloads against a scratch copy of the page. The
            // single-record path prechecks before appending; the batch path
            // must not weaken that guarantee — a record logged but never
            // applied would redo (and fail) again at crash recovery.
            {
                let mut scratch = v.page().clone();
                for (i, payload) in payloads.iter().enumerate() {
                    payload.precheck(&scratch)?;
                    payload
                        .redo(&mut scratch, pid, Lsn(u64::MAX))
                        .map_err(|e| {
                            Error::Internal(format!("batch payload {i} not applicable: {e}"))
                        })?;
                }
            }
            push_cow(parts, pid, v.page());
            let (flags, undo_next) = mod_flags(kind);
            let n = payloads.len();
            let mut recs: Vec<LogRecord> = payloads
                .into_iter()
                .map(|payload| LogRecord {
                    lsn: Lsn::NULL,
                    txn: self.txn.id,
                    // The first record chains to the transaction's and the
                    // page's current heads; `append_batch` rewires the rest
                    // through the batch.
                    prev_lsn: self.txn.last_lsn(),
                    page: pid,
                    prev_page_lsn: v.page().page_lsn(),
                    object: record_object(&payload, v.page()),
                    undo_next,
                    flags: flags | extra_flags,
                    payload,
                })
                .collect();
            // ONE writer-mutex acquisition for the whole batch.
            parts.log.append_batch(&mut recs);
            let mut lsns = Vec::with_capacity(n);
            for rec in &recs {
                self.txn.record_logged(rec.lsn);
                rec.payload.redo(v.page_mut(), pid, rec.lsn)?;
                lsns.push(rec.lsn);
            }
            // rec_lsn (if the frame was clean) is the first record's LSN.
            v.mark_dirty(lsns[0]);

            // FPI cadence (§6.1): the batch counts as n modifications but
            // emits at most one image — of the final state.
            if parts.fpi_interval > 0 {
                let mut due = false;
                for _ in 0..n {
                    due |= v.bump_fpi_counter() >= parts.fpi_interval;
                }
                if due {
                    let object = v.page().object_id();
                    emit_fpi(parts, v, pid, object)?;
                }
            }
            Ok(lsns)
        })
    }

    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        kind: ModKind,
    ) -> Result<PageId> {
        let _alloc = self.parts.alloc_lock.lock();
        rewind_access::allocator::allocate_page(self, object, ty, level, next, prev, kind)
    }

    fn free_page(&self, pid: PageId, kind: ModKind) -> Result<()> {
        let _alloc = self.parts.alloc_lock.lock();
        rewind_access::allocator::free_page(self, pid, kind)
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        self.parts.latches.with_latch(object, exclusive, f)
    }

    fn end_smo(&self, undo_next: Lsn) -> Result<()> {
        let rec = LogRecord {
            lsn: Lsn::NULL,
            txn: self.txn.id,
            prev_lsn: self.txn.last_lsn(),
            page: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            object: ObjectId::NONE,
            undo_next,
            flags: REC_FLAG_CLR | REC_FLAG_SYSTEM,
            payload: LogPayload::End,
        };
        let lsn = self.parts.log.append(&rec);
        self.txn.record_logged(lsn);
        Ok(())
    }

    fn txn_last_lsn(&self) -> Lsn {
        self.txn.last_lsn()
    }

    fn writable(&self) -> bool {
        true
    }
}

impl EngineStore<'_> {
    /// Roll this store's transaction back from its current last LSN,
    /// resolving objects through `resolver`. Releases no locks — the caller
    /// owns lock lifetime.
    pub fn rollback(
        &self,
        resolver: &dyn Fn(ObjectId) -> Result<rollback::AccessKind>,
    ) -> Result<u64> {
        rollback::rollback_chain(self, &self.parts.log, self.txn.last_lsn(), resolver)
    }
}

/// Convenience: validate that a payload can be redone; re-exported for
/// stores in other crates.
pub fn payload_applies(payload: &LogPayload, page: &Page) -> Result<()> {
    if !payload.is_page_op() {
        return Err(Error::Internal("not a page op".into()));
    }
    payload.precheck(page)
}
