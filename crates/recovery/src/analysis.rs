//! The analysis pass, shared by crash restart and as-of snapshot recovery.
//!
//! Scans the log from the latest checkpoint preceding the recovery bound up
//! to the bound itself (end of log for a crash; the SplitLSN for an as-of
//! snapshot, §5.2), rebuilding:
//!
//! * the **active-transaction table** — transactions with no commit/end by
//!   the bound are losers;
//! * the **dirty-page table** — where redo must start;
//! * per-loser **lock sets** — the row locks snapshot recovery reacquires so
//!   queries cannot observe data of in-flight transactions before the
//!   background undo fixes it (§5.2). B-Tree rows are keyed by their key
//!   bytes; heap rows (flagged records) coarsen to a table lock. A
//!   key-changing update locks *both* keys: the old image's row must stay
//!   invisible until undo restores it, and the new image's row must stay
//!   invisible until undo removes it.
//!
//! The pass is built around [`AnalysisBuilder`], a record-at-a-time state
//! machine: [`analyze`] drives it over a plain forward scan, and the
//! pipelined restart path (`restart` module) drives the *same* builder from
//! the scan that simultaneously dispatches redo work — which is what makes
//! "analysis output streams to redo" a refactor rather than a fork of the
//! analysis logic.

use rewind_common::{Lsn, ObjectId, PageId, Result, TxnId};
use rewind_txn::{LockKey, LockMode};
use rewind_wal::{
    DptEntry, LogManager, LogPayload, LogPayloadView, LogRecordHeader, PayloadKind, REC_FLAG_HEAP,
};
use std::collections::HashMap;

/// A transaction found in flight at the recovery bound.
#[derive(Clone, Debug)]
pub struct LoserTxn {
    /// The transaction id.
    pub id: TxnId,
    /// Its first record at or below the bound.
    pub first_lsn: Lsn,
    /// Its last record at or below the bound (undo starts here).
    pub last_lsn: Lsn,
    /// Row/table locks to reacquire before opening for queries, with the
    /// mode the transaction effectively held.
    pub locks: Vec<(LockKey, LockMode)>,
}

/// Outcome of the analysis pass.
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// In-flight transactions at the bound, ascending by id.
    pub losers: Vec<LoserTxn>,
    /// Dirty-page table at the bound (checkpoint DPT merged with scanned
    /// modifications).
    pub dpt: Vec<DptEntry>,
    /// Redo must start here (min recLSN), or the bound if nothing to redo.
    pub redo_start: Lsn,
    /// Where the scan started (checkpoint begin or truncation point).
    pub scan_start: Lsn,
    /// Highest transaction id observed (id allocation floor after restart).
    pub max_txn_id: TxnId,
    /// Number of committed transactions observed in the window.
    pub committed: u64,
    /// Log records visited by the forward scan (the analysis-phase work
    /// metric recovery reports).
    pub records_scanned: u64,
}

/// Extract the B-Tree row-lock key from serialized row bytes
/// (`[klen: u16 LE][key][rest]`), coarsening to a table lock when the
/// encoding is not parseable as such.
fn row_key(object: ObjectId, rec: &[u8]) -> LockKey {
    if rec.len() < 2 {
        return LockKey::table(object);
    }
    let klen = u16::from_le_bytes([rec[0], rec[1]]) as usize;
    if 2 + klen > rec.len() {
        return LockKey::table(object);
    }
    LockKey::row(object, &rec[2..2 + klen])
}

/// The lock keys a loser must reacquire for one record: the row key of the
/// changed image, plus — for a key-changing update — the row key of the
/// *new* image. Locking only the old key would leave the new key unlocked,
/// so a pre-undo as-of query could observe the in-flight row under its new
/// key.
fn locks_for(
    rec_flags: u8,
    object: ObjectId,
    payload: &LogPayloadView<'_>,
) -> (Option<LockKey>, Option<LockKey>) {
    let (primary, secondary): (&[u8], Option<&[u8]>) = match *payload {
        LogPayloadView::InsertRecord { bytes, .. } => (bytes, None),
        LogPayloadView::DeleteRecord { old, .. } => (old, None),
        LogPayloadView::UpdateRecord { old, new, .. } => (old, Some(new)),
        _ => return (None, None),
    };
    if rec_flags & REC_FLAG_HEAP != 0 {
        // Heap rows: coarsen to the table (insert-mostly heaps; cheap and
        // safe — one lock covers both images).
        return (Some(LockKey::table(object)), None);
    }
    let first = row_key(object, primary);
    let second = secondary
        .map(|new| row_key(object, new))
        .filter(|k| *k != first);
    (Some(first), second)
}

#[derive(Default)]
struct TxnInfo {
    first: Lsn,
    last: Lsn,
    locks: Vec<(LockKey, LockMode)>,
}

impl TxnInfo {
    fn push_lock(&mut self, key: LockKey) {
        if !self.locks.iter().any(|(k, _)| *k == key) {
            self.locks.push((key, LockMode::X));
        }
    }
}

/// Record-at-a-time analysis state: seed from a checkpoint, feed every
/// record of the forward scan through [`AnalysisBuilder::observe`], then
/// [`AnalysisBuilder::finish`].
///
/// `observe` also answers the *online redo-qualification* question: for a
/// page-op record it returns the page's recLSN as known at this point of
/// the scan. Because the DPT keeps the **first** recLSN seen per page
/// (checkpoint seed, else first scan sighting — `or_insert` semantics), the
/// value returned for a record equals the page's recLSN in the *final* DPT:
/// later sightings never change it. The classical two-pass test
/// `lsn >= final_dpt[page]` can therefore be evaluated during the single
/// forward scan, which is what lets the restart path dispatch redo work
/// with no barrier after analysis.
pub struct AnalysisBuilder {
    att: HashMap<u64, TxnInfo>,
    dpt: HashMap<PageId, Lsn>,
    /// The checkpoint-seeded DPT alone (empty without a checkpoint): the
    /// pages for which records *before* `scan_start` can still qualify for
    /// redo. Pages first dirtied inside the scan window have
    /// `recLSN >= scan_start` by construction.
    ckpt_dpt: Vec<DptEntry>,
    scan_start: Lsn,
    max_txn: TxnId,
    committed: u64,
    records_scanned: u64,
}

impl AnalysisBuilder {
    /// Locate the checkpoint governing `bound` and seed the ATT/DPT from
    /// its end record. The forward scan must start at
    /// [`AnalysisBuilder::scan_start`].
    pub fn seed(log: &LogManager, bound: Lsn) -> Result<AnalysisBuilder> {
        let checkpoint = log.checkpoint_before(bound);
        let scan_start = match &checkpoint {
            Some(c) => c.begin_lsn,
            None => log.truncation_point(),
        };
        let mut b = AnalysisBuilder {
            att: HashMap::new(),
            dpt: HashMap::new(),
            ckpt_dpt: Vec::new(),
            scan_start,
            max_txn: TxnId::NONE,
            committed: 0,
            records_scanned: 0,
        };
        if let Some(c) = &checkpoint {
            let rec = log.get_record_deep(c.end_lsn)?;
            if let LogPayload::CheckpointEnd(body) = rec.payload {
                for e in body.att {
                    b.att.insert(
                        e.txn.0,
                        TxnInfo {
                            first: e.first_lsn,
                            last: e.last_lsn,
                            locks: Vec::new(),
                        },
                    );
                    b.max_txn = b.max_txn.max(e.txn);
                }
                for e in &body.dpt {
                    b.dpt.entry(e.page).or_insert(e.rec_lsn);
                }
                b.ckpt_dpt = body.dpt;
            }
        }
        Ok(b)
    }

    /// Where the forward scan begins (checkpoint begin or truncation point).
    pub fn scan_start(&self) -> Lsn {
        self.scan_start
    }

    /// The checkpoint-seeded DPT entries (before any scanning).
    pub fn checkpoint_dpt(&self) -> &[DptEntry] {
        &self.ckpt_dpt
    }

    /// Feed one record of the forward scan (in LSN order, starting at
    /// [`AnalysisBuilder::scan_start`]). For a page-op record, returns the
    /// page's recLSN — final-DPT-equal, see the type docs — so the caller
    /// can decide redo qualification (`header.lsn >= rec_lsn`) online.
    pub fn observe(&mut self, header: &LogRecordHeader, view: &LogPayloadView<'_>) -> Option<Lsn> {
        self.records_scanned += 1;
        if header.txn.is_valid() {
            self.max_txn = self.max_txn.max(header.txn);
            match header.kind {
                PayloadKind::Commit | PayloadKind::End => {
                    if header.kind == PayloadKind::Commit {
                        self.committed += 1;
                    }
                    self.att.remove(&header.txn.0);
                }
                _ => {
                    let info = self.att.entry(header.txn.0).or_default();
                    if info.first.is_null() {
                        info.first = header.lsn;
                    }
                    info.last = header.lsn;
                    // Lock reacquisition: user row changes only (system/SMO
                    // records move rows without owning them).
                    if header.flags & rewind_wal::REC_FLAG_SYSTEM == 0 {
                        let (first, second) = locks_for(header.flags, header.object, view);
                        if let Some(key) = first {
                            info.push_lock(key);
                        }
                        if let Some(key) = second {
                            info.push_lock(key);
                        }
                    }
                }
            }
        }
        if header.is_page_op() && header.page.is_valid() {
            Some(*self.dpt.entry(header.page).or_insert(header.lsn))
        } else {
            None
        }
    }

    /// Complete the pass: run the supplemental lock scan for losers whose
    /// activity began before the checkpoint, sort, and assemble the result.
    pub fn finish(self, log: &LogManager, bound: Lsn) -> Result<AnalysisResult> {
        let AnalysisBuilder {
            mut att,
            dpt,
            scan_start,
            max_txn,
            committed,
            records_scanned,
            ..
        } = self;

        // Supplemental lock scan for losers whose activity began before the
        // checkpoint: ARIES reacquires locks from the transactions' first
        // LSNs.
        let earliest = att
            .values()
            .map(|t| t.first)
            .filter(|l| l.is_valid() && *l < scan_start)
            .min();
        if let Some(from) = earliest {
            let ids: Vec<u64> = att.keys().copied().collect();
            log.scan_views_deep(from, scan_start, |header, view| {
                if header.txn.is_valid()
                    && ids.contains(&header.txn.0)
                    && header.flags & rewind_wal::REC_FLAG_SYSTEM == 0
                {
                    let (first, second) = locks_for(header.flags, header.object, view);
                    if let Some(info) = att.get_mut(&header.txn.0) {
                        if let Some(key) = first {
                            info.push_lock(key);
                        }
                        if let Some(key) = second {
                            info.push_lock(key);
                        }
                    }
                }
                Ok(true)
            })?;
        }

        let mut losers: Vec<LoserTxn> = att
            .into_iter()
            .filter(|(_, info)| info.last.is_valid())
            .map(|(id, info)| LoserTxn {
                id: TxnId(id),
                first_lsn: info.first,
                last_lsn: info.last,
                locks: info.locks,
            })
            .collect();
        losers.sort_by_key(|l| l.id);

        let redo_start = dpt.values().copied().min().unwrap_or(if bound == Lsn::MAX {
            log.tail_lsn()
        } else {
            bound
        });
        let mut dpt: Vec<DptEntry> = dpt
            .into_iter()
            .map(|(page, rec_lsn)| DptEntry { page, rec_lsn })
            .collect();
        dpt.sort_by_key(|e| e.page);

        Ok(AnalysisResult {
            losers,
            dpt,
            redo_start,
            scan_start,
            max_txn_id: max_txn,
            committed,
            records_scanned,
        })
    }
}

/// Run analysis over `[checkpoint-before(bound), bound)`.
///
/// `bound` is exclusive-after: records with `lsn <= bound` are part of the
/// recovered state (matching the SplitLSN convention). Pass [`Lsn::MAX`] for
/// crash restart.
pub fn analyze(log: &LogManager, bound: Lsn) -> Result<AnalysisResult> {
    let mut builder = AnalysisBuilder::seed(log, bound)?;
    // Forward scan: header-only navigation with borrowed payload views —
    // row bytes are inspected in place for lock keys, never copied.
    // `scan_end()` saturates, so the `Lsn::MAX` crash-restart sentinel
    // stays "to the end of the log" instead of overflowing to NULL.
    log.scan_views_deep(builder.scan_start(), bound.scan_end(), |header, view| {
        builder.observe(header, view);
        Ok(true)
    })?;
    builder.finish(log, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_wal::{LogConfig, LogRecord};
    use std::sync::Arc;

    fn row_bytes(key: &[u8]) -> Vec<u8> {
        let mut v = (key.len() as u16).to_le_bytes().to_vec();
        v.extend_from_slice(key);
        v.extend_from_slice(b"-rest");
        v
    }

    fn update(txn: TxnId, old: Vec<u8>, new: Vec<u8>) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            txn,
            prev_lsn: Lsn::NULL,
            page: PageId(5),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(501),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::UpdateRecord { slot: 0, old, new },
        }
    }

    /// Regression: a key-changing update's *new* key was never reacquired
    /// as a loser lock, so a pre-undo as-of query could observe the
    /// in-flight row under its new key. Analysis must lock both keys — and
    /// still deduplicate when the keys are equal.
    #[test]
    fn key_changing_update_locks_both_keys() {
        let log = Arc::new(LogManager::new(LogConfig::default()));
        log.append(&update(TxnId(7), row_bytes(b"alpha"), row_bytes(b"beta")));
        log.append(&update(TxnId(8), row_bytes(b"same"), row_bytes(b"same")));

        let analysis = analyze(&log, Lsn::MAX).unwrap();
        assert_eq!(analysis.losers.len(), 2);

        let obj = ObjectId(501);
        let changer = &analysis.losers[0];
        assert_eq!(changer.id, TxnId(7));
        let keys: Vec<&LockKey> = changer.locks.iter().map(|(k, _)| k).collect();
        assert!(keys.contains(&&LockKey::row(obj, b"alpha")));
        assert!(
            keys.contains(&&LockKey::row(obj, b"beta")),
            "the NEW key of a key-changing update must be locked: {keys:?}"
        );

        let stable = &analysis.losers[1];
        assert_eq!(
            stable.locks,
            vec![(LockKey::row(obj, b"same"), LockMode::X)],
            "a same-key update acquires its key exactly once"
        );
    }
}
