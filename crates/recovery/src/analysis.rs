//! The analysis pass, shared by crash restart and as-of snapshot recovery.
//!
//! Scans the log from the latest checkpoint preceding the recovery bound up
//! to the bound itself (end of log for a crash; the SplitLSN for an as-of
//! snapshot, §5.2), rebuilding:
//!
//! * the **active-transaction table** — transactions with no commit/end by
//!   the bound are losers;
//! * the **dirty-page table** — where redo must start;
//! * per-loser **lock sets** — the row locks snapshot recovery reacquires so
//!   queries cannot observe data of in-flight transactions before the
//!   background undo fixes it (§5.2). B-Tree rows are keyed by their key
//!   bytes; heap rows (flagged records) coarsen to a table lock.

use rewind_common::{Lsn, PageId, Result, TxnId};
use rewind_txn::{LockKey, LockMode};
use rewind_wal::{DptEntry, LogManager, LogPayload, LogPayloadView, PayloadKind, REC_FLAG_HEAP};
use std::collections::HashMap;

/// A transaction found in flight at the recovery bound.
#[derive(Clone, Debug)]
pub struct LoserTxn {
    /// The transaction id.
    pub id: TxnId,
    /// Its first record at or below the bound.
    pub first_lsn: Lsn,
    /// Its last record at or below the bound (undo starts here).
    pub last_lsn: Lsn,
    /// Row/table locks to reacquire before opening for queries, with the
    /// mode the transaction effectively held.
    pub locks: Vec<(LockKey, LockMode)>,
}

/// Outcome of the analysis pass.
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// In-flight transactions at the bound, ascending by id.
    pub losers: Vec<LoserTxn>,
    /// Dirty-page table at the bound (checkpoint DPT merged with scanned
    /// modifications).
    pub dpt: Vec<DptEntry>,
    /// Redo must start here (min recLSN), or the bound if nothing to redo.
    pub redo_start: Lsn,
    /// Where the scan started (checkpoint begin or truncation point).
    pub scan_start: Lsn,
    /// Highest transaction id observed (id allocation floor after restart).
    pub max_txn_id: TxnId,
    /// Number of committed transactions observed in the window.
    pub committed: u64,
    /// Log records visited by the forward scan (the analysis-phase work
    /// metric recovery reports).
    pub records_scanned: u64,
}

fn lock_for(
    rec_flags: u8,
    object: rewind_common::ObjectId,
    payload: &LogPayloadView<'_>,
) -> Option<LockKey> {
    let row_bytes: Option<&[u8]> = match *payload {
        LogPayloadView::InsertRecord { bytes, .. } => Some(bytes),
        LogPayloadView::DeleteRecord { old, .. } => Some(old),
        LogPayloadView::UpdateRecord { old, .. } => Some(old),
        _ => return None,
    };
    if rec_flags & REC_FLAG_HEAP != 0 {
        // Heap rows: coarsen to the table (insert-mostly heaps; cheap and safe).
        return Some(LockKey::table(object));
    }
    let rec = row_bytes?;
    if rec.len() < 2 {
        return Some(LockKey::table(object));
    }
    let klen = u16::from_le_bytes([rec[0], rec[1]]) as usize;
    if 2 + klen > rec.len() {
        return Some(LockKey::table(object));
    }
    Some(LockKey::row(object, &rec[2..2 + klen]))
}

/// Run analysis over `[checkpoint-before(bound), bound)`.
///
/// `bound` is exclusive-after: records with `lsn <= bound` are part of the
/// recovered state (matching the SplitLSN convention). Pass [`Lsn::MAX`] for
/// crash restart.
pub fn analyze(log: &LogManager, bound: Lsn) -> Result<AnalysisResult> {
    #[derive(Default)]
    struct TxnInfo {
        first: Lsn,
        last: Lsn,
        locks: Vec<(LockKey, LockMode)>,
    }
    let mut att: HashMap<u64, TxnInfo> = HashMap::new();
    let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
    let mut max_txn = TxnId::NONE;
    let mut committed = 0u64;
    let mut records_scanned = 0u64;

    let checkpoint = log.checkpoint_before(bound);
    let scan_start = match &checkpoint {
        Some(c) => c.begin_lsn,
        None => log.truncation_point(),
    };

    // Seed from the checkpoint.
    if let Some(c) = &checkpoint {
        let rec = log.get_record_deep(c.end_lsn)?;
        if let LogPayload::CheckpointEnd(body) = rec.payload {
            for e in body.att {
                att.insert(
                    e.txn.0,
                    TxnInfo {
                        first: e.first_lsn,
                        last: e.last_lsn,
                        locks: Vec::new(),
                    },
                );
                max_txn = max_txn.max(e.txn);
            }
            for e in body.dpt {
                dpt.entry(e.page).or_insert(e.rec_lsn);
            }
        }
    }

    // Forward scan: header-only navigation with borrowed payload views —
    // row bytes are inspected in place for lock keys, never copied.
    let scan_to = if bound == Lsn::MAX {
        Lsn::MAX
    } else {
        Lsn(bound.0 + 1)
    };
    log.scan_views_deep(scan_start, scan_to, |header, view| {
        records_scanned += 1;
        if header.txn.is_valid() {
            max_txn = max_txn.max(header.txn);
            match header.kind {
                PayloadKind::Commit | PayloadKind::End => {
                    if header.kind == PayloadKind::Commit {
                        committed += 1;
                    }
                    att.remove(&header.txn.0);
                }
                _ => {
                    let info = att.entry(header.txn.0).or_default();
                    if info.first.is_null() {
                        info.first = header.lsn;
                    }
                    info.last = header.lsn;
                    // Lock reacquisition: user row changes only (system/SMO
                    // records move rows without owning them).
                    if header.flags & rewind_wal::REC_FLAG_SYSTEM == 0 {
                        if let Some(key) = lock_for(header.flags, header.object, view) {
                            if !info.locks.iter().any(|(k, _)| *k == key) {
                                info.locks.push((key, LockMode::X));
                            }
                        }
                    }
                }
            }
        }
        if header.is_page_op() && header.page.is_valid() {
            dpt.entry(header.page).or_insert(header.lsn);
        }
        Ok(true)
    })?;

    // Supplemental lock scan for losers whose activity began before the
    // checkpoint: ARIES reacquires locks from the transactions' first LSNs.
    let earliest = att
        .values()
        .map(|t| t.first)
        .filter(|l| l.is_valid() && *l < scan_start)
        .min();
    if let Some(from) = earliest {
        let ids: Vec<u64> = att.keys().copied().collect();
        log.scan_views_deep(from, scan_start, |header, view| {
            if header.txn.is_valid()
                && ids.contains(&header.txn.0)
                && header.flags & rewind_wal::REC_FLAG_SYSTEM == 0
            {
                if let Some(key) = lock_for(header.flags, header.object, view) {
                    if let Some(info) = att.get_mut(&header.txn.0) {
                        if !info.locks.iter().any(|(k, _)| *k == key) {
                            info.locks.push((key, LockMode::X));
                        }
                    }
                }
            }
            Ok(true)
        })?;
    }

    let mut losers: Vec<LoserTxn> = att
        .into_iter()
        .filter(|(_, info)| info.last.is_valid())
        .map(|(id, info)| LoserTxn {
            id: TxnId(id),
            first_lsn: info.first,
            last_lsn: info.last,
            locks: info.locks,
        })
        .collect();
    losers.sort_by_key(|l| l.id);

    let redo_start = dpt.values().copied().min().unwrap_or(if bound == Lsn::MAX {
        log.tail_lsn()
    } else {
        bound
    });
    let mut dpt: Vec<DptEntry> = dpt
        .into_iter()
        .map(|(page, rec_lsn)| DptEntry { page, rec_lsn })
        .collect();
    dpt.sort_by_key(|e| e.page);

    Ok(AnalysisResult {
        losers,
        dpt,
        redo_start,
        scan_start,
        max_txn_id: max_txn,
        committed,
        records_scanned,
    })
}
