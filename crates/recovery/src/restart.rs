//! Pipelined, partitioned ARIES restart: analysis streams into redo, and
//! redo fans out across worker threads partitioned by page.
//!
//! # Why partitioning by page is correct
//!
//! Redo's only ordering requirement is **per page**: a record must be
//! applied to its page after every earlier record for that same page,
//! because each record's forward effect assumes the page image produced by
//! its predecessor in the per-page chain (`prev_page_lsn`). Records for
//! *different* pages never interact — a page-op touches exactly one page —
//! so there is no cross-page ordering constraint to preserve. Hashing each
//! record to a worker by its `PageId` therefore suffices: all records for
//! one page land on one worker, a FIFO channel delivers them (in batches)
//! in the dispatcher's scan order (= LSN order), and the worker applies them with
//! the same `page_lsn < lsn` idempotency test as the serial pass. Apply
//! counts are bit-exact with the serial pass for the same reason the test
//! is per-page: whether a record applies depends only on its own page's
//! LSN, which only that record's worker advances.
//!
//! # Why analysis can stream into redo
//!
//! Classical ARIES runs analysis to completion to learn the final
//! dirty-page table, then starts redo at min recLSN. The barrier is
//! unnecessary here because the DPT's recLSN per page is *final on first
//! sighting*: it is either the checkpoint-seeded value or the LSN of the
//! first page-op the scan encounters for that page (`or_insert`
//! semantics), and later records never lower it. So the redo qualification
//! test `lsn >= final_dpt[page].rec_lsn` can be evaluated online, during
//! the analysis scan itself, with the answer the final DPT would give:
//!
//! * records **before** the analysis window (`lsn < scan_start`) qualify
//!   only for pages in the checkpoint DPT (any page first dirtied inside
//!   the window has `recLSN >= scan_start > lsn`) — a prefix scan over
//!   `[min checkpoint recLSN, scan_start)` dispatches exactly those;
//! * records **inside** the window are dispatched as
//!   [`AnalysisBuilder::observe`] classifies them, comparing against the
//!   recLSN fixed at that page's first sighting.
//!
//! The loser table plays no part in redo (history is repeated for winners
//! and losers alike), so nothing in the undo phase is affected by the
//! missing barrier: undo still starts only after the scan — and therefore
//! analysis — completes.

use crate::analysis::{AnalysisBuilder, AnalysisResult};
use rewind_buffer::BufferPool;
use rewind_common::{Error, Lsn, PageId, Result};
use rewind_pagestore::Page;
use rewind_wal::{LogManager, RecordRef};
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, SyncSender};

/// Redo statistics from the partitioned dispatcher.
#[derive(Clone, Debug, Default)]
pub struct PartitionedRedo {
    /// Records applied, summed over workers — bit-exact with the serial
    /// [`crate::redo_pass`] on the same log.
    pub applied: u64,
    /// Records applied by each worker (length = worker count; shows
    /// partition skew).
    pub per_worker: Vec<u64>,
}

/// Everything [`pipelined_restart`] produces.
///
/// Timings come from [`rewind_obs::monotonic_us`] — the process timebase,
/// independent of whether the obs handle is enabled — so recovery reports
/// carry real durations on a disabled-obs engine too.
#[derive(Clone, Debug)]
pub struct RestartOutcome {
    /// The completed analysis (the undo phase's input).
    pub analysis: AnalysisResult,
    /// Partitioned-redo accounting.
    pub redo: PartitionedRedo,
    /// µs from pass start until analysis completed (forward scan plus the
    /// supplemental loser-lock scan).
    pub analysis_us: u64,
    /// µs from pass start until the last redo worker drained. Overlaps
    /// `analysis_us` by design — the passes are pipelined, not sequential.
    pub redo_us: u64,
}

/// Records per dispatched batch: one channel rendezvous per batch instead
/// of per record, which is what makes fan-out cheaper than the serial
/// inline path. Order within and across batches is the dispatcher's scan
/// order, so per-page LSN order is preserved.
const REDO_BATCH: usize = 64;

/// Bounded depth of each worker's batch channel: enough to keep workers
/// busy across page-miss I/O stalls, small enough that the dispatcher
/// cannot race gigabytes of log ahead of slow workers.
const REDO_CHANNEL_DEPTH: usize = 64;

/// Stable page → worker partition (Fibonacci multiplicative hash, so
/// sequentially-allocated page ids spread instead of striping).
fn partition_of(page: PageId, workers: usize) -> usize {
    ((page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % workers
}

/// Apply one dispatched record to its page; returns whether the page image
/// actually advanced (the serial pass's `applied` criterion). `staged`
/// optionally carries the page's slot of a vectored batch read — safe here
/// because redo partitioning gives one worker all records of a page, so
/// nothing can have written the page since its batch was staged.
fn apply_one(pool: &BufferPool, rec: &RecordRef, staged: Option<Result<Page>>) -> Result<bool> {
    let (header, view) = rec.view()?;
    pool.with_page_mut_staged(header.page, staged, |v| {
        if v.page().page_lsn() < header.lsn {
            view.redo(v.page_mut(), header.page, header.lsn)?;
            v.mark_dirty(header.lsn);
            Ok(true)
        } else {
            Ok(false)
        }
    })
}

/// Vector-read a redo batch's cold first-touch pages: the distinct pids of
/// the batch, sorted so physically adjacent pages coalesce into single
/// device ops ([`BufferPool::stage_read_run`] skips resident pages and
/// returns nothing in scalar mode). Pure read-ahead — each staged result is
/// consumed by that page's first miss in the batch, so apply decisions and
/// per-page accounting are unchanged.
fn stage_batch(pool: &BufferPool, batch: &[RecordRef]) -> Result<Vec<(PageId, Result<Page>)>> {
    let mut wanted: Vec<PageId> = Vec::with_capacity(batch.len());
    for rec in batch {
        wanted.push(rec.header()?.page);
    }
    wanted.sort_unstable();
    wanted.dedup();
    Ok(pool.stage_read_run(&wanted))
}

/// The single forward pass: the prefix scan dispatching checkpoint-DPT
/// redo work, then the combined analysis + dispatch scan. `dispatch`
/// returns `Ok(false)` to stop early (a worker exited; its error surfaces
/// at join).
fn scan_and_dispatch(
    log: &LogManager,
    builder: &mut AnalysisBuilder,
    bound: Lsn,
    mut dispatch: impl FnMut(&RecordRef, PageId) -> Result<bool>,
) -> Result<()> {
    let scan_start = builder.scan_start();
    // Prefix: records before the analysis window qualify only for pages
    // dirty at the checkpoint (see module docs).
    let seed: HashMap<PageId, Lsn> = builder
        .checkpoint_dpt()
        .iter()
        .map(|e| (e.page, e.rec_lsn))
        .collect();
    let prefix_from = seed.values().copied().min().filter(|l| *l < scan_start);
    if let Some(from) = prefix_from {
        log.scan_refs(from, scan_start, |rec| {
            let header = rec.header()?;
            if header.is_page_op() && header.page.is_valid() {
                if let Some(&rec_lsn) = seed.get(&header.page) {
                    if header.lsn >= rec_lsn {
                        return dispatch(rec, header.page);
                    }
                }
            }
            Ok(true)
        })?;
    }
    // Combined scan: every record feeds analysis; page-ops that qualify
    // against the first-sighting recLSN are dispatched immediately.
    log.scan_refs_deep(scan_start, bound.scan_end(), |rec| {
        let (header, view) = rec.view()?;
        if let Some(rec_lsn) = builder.observe(&header, &view) {
            if header.lsn >= rec_lsn {
                return dispatch(rec, header.page);
            }
        }
        Ok(true)
    })?;
    Ok(())
}

/// Run restart's analysis and redo as one pipelined pass over
/// `[checkpoint, bound]`, with redo partitioned across `workers` threads
/// (clamped to at least 1; 1 applies inline on the scanning thread).
///
/// Returns the completed [`AnalysisResult`] (the undo phase's input) and
/// the redo statistics. Accounting — total applied count, per-page apply
/// decisions, analysis tables — is identical at every worker count; see
/// the module docs for the argument.
pub fn pipelined_restart(
    log: &LogManager,
    pool: &BufferPool,
    bound: Lsn,
    workers: usize,
) -> Result<RestartOutcome> {
    let workers = workers.max(1);
    let started = rewind_obs::monotonic_us();
    let mut builder = AnalysisBuilder::seed(log, bound)?;
    let obs = log.obs().clone();

    let redo = if workers == 1 {
        let mut applied = 0u64;
        let mut busy = 0u64;
        scan_and_dispatch(log, &mut builder, bound, |rec, _page| {
            let t0 = obs.now_us();
            if apply_one(pool, rec, None)? {
                applied += 1;
            }
            busy += obs.now_us().saturating_sub(t0);
            Ok(true)
        })?;
        obs.redo_worker_us(busy);
        PartitionedRedo {
            applied,
            per_worker: vec![applied],
        }
    } else {
        std::thread::scope(|s| -> Result<PartitionedRedo> {
            let mut txs: Vec<SyncSender<Vec<RecordRef>>> = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = sync_channel::<Vec<RecordRef>>(REDO_CHANNEL_DEPTH);
                let obs = &obs;
                handles.push(s.spawn(move || -> Result<u64> {
                    let mut applied = 0u64;
                    let mut busy = 0u64;
                    while let Ok(batch) = rx.recv() {
                        let t0 = obs.now_us();
                        let mut staged = stage_batch(pool, &batch)?;
                        for rec in &batch {
                            let page = rec.header()?.page;
                            let pre = staged
                                .iter()
                                .position(|(p, _)| *p == page)
                                .map(|i| staged.remove(i).1);
                            if apply_one(pool, rec, pre)? {
                                applied += 1;
                            }
                        }
                        busy += obs.now_us().saturating_sub(t0);
                    }
                    obs.redo_worker_us(busy);
                    Ok(applied)
                }));
                txs.push(tx);
            }
            let mut bufs: Vec<Vec<RecordRef>> = (0..workers)
                .map(|_| Vec::with_capacity(REDO_BATCH))
                .collect();
            let scan_res = scan_and_dispatch(log, &mut builder, bound, |rec, page| {
                let w = partition_of(page, workers);
                bufs[w].push(rec.clone());
                if bufs[w].len() == REDO_BATCH {
                    let batch = std::mem::replace(&mut bufs[w], Vec::with_capacity(REDO_BATCH));
                    // A failed send means the worker already exited (on
                    // error); stop dispatching, the join below surfaces it.
                    return Ok(txs[w].send(batch).is_ok());
                }
                Ok(true)
            });
            // Flush the partial tail batches, then close the channels so
            // idle workers drain out and exit.
            if scan_res.is_ok() {
                for (w, buf) in bufs.into_iter().enumerate() {
                    if !buf.is_empty() {
                        let _ = txs[w].send(buf);
                    }
                }
            }
            drop(txs);
            let mut per_worker = Vec::with_capacity(workers);
            let mut first_err = scan_res.err();
            for h in handles {
                match h.join() {
                    Ok(Ok(applied)) => per_worker.push(applied),
                    Ok(Err(e)) => {
                        per_worker.push(0);
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(_) => {
                        per_worker.push(0);
                        first_err = Some(Error::Internal("redo worker panicked".into()));
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(PartitionedRedo {
                    applied: per_worker.iter().sum(),
                    per_worker,
                }),
            }
        })?
    };
    let redo_us = rewind_obs::monotonic_us().saturating_sub(started);

    let analysis = builder.finish(log, bound)?;
    let analysis_us = rewind_obs::monotonic_us().saturating_sub(started);
    Ok(RestartOutcome {
        analysis,
        redo,
        analysis_us,
        redo_us,
    })
}
