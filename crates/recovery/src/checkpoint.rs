//! Fuzzy checkpoints.
//!
//! Checkpoints bound crash-recovery work and — because their records carry a
//! wall-clock stamp — anchor the SplitLSN search (§5.1) and the retention
//! arithmetic (§4.3). A checkpoint logs a begin marker, captures the
//! active-transaction table and the dirty-page table, logs the end record
//! and forces the log. Pages are *not* flushed (that is snapshot creation's
//! job, §5.1, via `BufferPool::flush_all`).

use rewind_buffer::BufferPool;
use rewind_common::{Lsn, Result, SimClock, Timestamp, TxnId};
use rewind_txn::TxnManager;
use rewind_wal::{CheckpointBody, LogManager, LogPayload, LogRecord};

fn marker(payload: LogPayload) -> LogRecord {
    LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId::NONE,
        prev_lsn: Lsn::NULL,
        page: rewind_common::PageId::INVALID,
        prev_page_lsn: Lsn::NULL,
        object: rewind_common::ObjectId::NONE,
        undo_next: Lsn::NULL,
        flags: 0,
        payload,
    }
}

/// Take a checkpoint, reading `clock` for the marker stamps; returns the
/// end record's LSN.
///
/// Both markers are stamped through `LogManager::append_stamped` — i.e.
/// under the same sequencer (the log writer mutex) as commit records — so a
/// checkpoint begun while commits race can never push a timestamp older
/// than the last indexed commit into the time index or the checkpoint
/// directory, which would break the binary-search invariant SplitLSN and
/// `checkpoint_before_time` rely on.
///
/// Dirty pages are flushed (like SQL Server's recovery-interval
/// checkpoints), which is what keeps both crash recovery and as-of snapshot
/// creation "bound by the amount of log scanned" (§6.2) rather than by
/// accumulated dirty state.
pub fn take_checkpoint(
    log: &LogManager,
    txns: &TxnManager,
    pool: &BufferPool,
    clock: &SimClock,
) -> Result<Lsn> {
    checkpoint_impl(log, txns, pool, clock, Lsn::MAX)
}

/// Take a *fuzzy incremental* checkpoint: flush only pages first dirtied
/// before `flush_before`, then capture the (now recLSN-bounded) dirty-page
/// table. Crash redo after this checkpoint starts at min recLSN
/// `>= flush_before`, so the background checkpoint cadence — which calls
/// this with `tail - checkpoint_interval_bytes` — keeps restart time
/// proportional to the interval rather than to total log size, without
/// ever stalling commits behind a full `flush_all`.
pub fn take_checkpoint_incremental(
    log: &LogManager,
    txns: &TxnManager,
    pool: &BufferPool,
    clock: &SimClock,
    flush_before: Lsn,
) -> Result<Lsn> {
    checkpoint_impl(log, txns, pool, clock, flush_before)
}

fn checkpoint_impl(
    log: &LogManager,
    txns: &TxnManager,
    pool: &BufferPool,
    clock: &SimClock,
    flush_before: Lsn,
) -> Result<Lsn> {
    let obs = log.obs().clone();
    let started = obs.now_us();
    let mut begin = marker(LogPayload::CheckpointBegin {
        at: Timestamp::ZERO,
    });
    let begin_lsn = log.append_stamped(&mut begin, &|| clock.now()).start;
    obs.record(rewind_obs::EventKind::CheckpointBegin, begin_lsn.0, 0, 0);
    if flush_before == Lsn::MAX {
        pool.flush_all()?;
    } else {
        pool.flush_older_than(flush_before)?;
    }
    let att = txns.active_table();
    let dpt = pool.dirty_page_table();
    let mut end = marker(LogPayload::CheckpointEnd(CheckpointBody {
        at: Timestamp::ZERO,
        begin_lsn,
        att,
        dpt,
    }));
    let end = log.append_stamped(&mut end, &|| clock.now());
    log.flush_up_to(end.end);
    obs.record(
        rewind_obs::EventKind::CheckpointEnd,
        end.start.0,
        0,
        obs.now_us().saturating_sub(started),
    );
    Ok(end.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_buffer::BufferPool;
    use rewind_pagestore::MemFileManager;
    use rewind_wal::LogConfig;
    use std::sync::Arc;

    #[test]
    fn checkpoint_registers_in_directory_and_captures_tables() {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm, log.clone(), 8);
        let txns = TxnManager::new();
        let t = txns.begin();
        t.record_logged(Lsn(100));

        // dirty a page
        pool.with_page_mut(rewind_common::PageId(3), |v| {
            v.page_mut().set_page_lsn(Lsn(100));
            v.mark_dirty(Lsn(100));
            Ok(())
        })
        .unwrap();

        let clock = SimClock::starting_at(Timestamp::from_secs(42));
        let end = take_checkpoint(&log, &txns, &pool, &clock).unwrap();
        let info = log.checkpoint_before(Lsn::MAX).unwrap();
        assert_eq!(info.end_lsn, end);
        assert_eq!(info.at, Timestamp::from_secs(42));
        assert!(log.flushed_lsn() > end);

        let rec = log.get_record(end).unwrap();
        match rec.payload {
            LogPayload::CheckpointEnd(body) => {
                assert_eq!(body.att.len(), 1);
                assert_eq!(body.att[0].txn, t.id);
                assert_eq!(body.att[0].last_lsn, Lsn(100));
                // the checkpoint flushed the dirty page
                assert!(body.dpt.is_empty());
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(pool.dirty_page_table().is_empty());
    }

    #[test]
    fn incremental_checkpoint_flushes_only_old_dirt() {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm, log.clone(), 8);
        let txns = TxnManager::new();
        for (pid, lsn) in [(3u64, 100u64), (4, 900)] {
            pool.with_page_mut(rewind_common::PageId(pid), |v| {
                v.page_mut().set_page_lsn(Lsn(lsn));
                v.mark_dirty(Lsn(lsn));
                Ok(())
            })
            .unwrap();
        }
        let clock = SimClock::starting_at(Timestamp::from_secs(1));
        let end = take_checkpoint_incremental(&log, &txns, &pool, &clock, Lsn(500)).unwrap();
        // Page 3 (recLSN 100 < 500) was flushed; page 4 stays dirty and is
        // captured in the checkpoint's DPT, bounding redo to recLSN >= 500.
        let rec = log.get_record(end).unwrap();
        match rec.payload {
            LogPayload::CheckpointEnd(body) => {
                assert_eq!(body.dpt.len(), 1);
                assert_eq!(body.dpt[0].page, rewind_common::PageId(4));
                assert_eq!(body.dpt[0].rec_lsn, Lsn(900));
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert_eq!(pool.dirty_page_table().len(), 1);
    }
}
