//! `PreparePageAsOf(page, asOfLSN)` — the paper's core primitive (§4).
//!
//! > "It reads the current copy of page from the source database and applies
//! > the transaction log to undo modifications up to the asOfLSN."
//!
//! The basic loop is the paper's Fig. 3. On top of it sits the §6.1
//! optimization: if full page images are being logged every Nth
//! modification, the page header's `lastFpiLSN` anchors a backward chain of
//! images; restoring the *earliest image after the target LSN* lets the walk
//! skip whole regions of log and undo at most N individual modifications.

use rewind_common::{Error, Lsn, PageId, Result};
use rewind_pagestore::Page;
use rewind_wal::{LogManager, LogPayloadView, RecordRef};

/// Costs observed while preparing one page; the paper's Fig. 11 reports the
/// number of undo log reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepareStats {
    /// Individual modifications undone (paper Fig. 3 loop iterations).
    pub records_undone: u64,
    /// FPI-chain records inspected while looking for a skip target.
    pub fpi_chain_reads: u64,
    /// Whether a full page image was restored to skip log.
    pub fpi_restored: bool,
}

impl PrepareStats {
    /// Total log-record fetches performed.
    pub fn log_reads(&self) -> u64 {
        self.records_undone + self.fpi_chain_reads
    }
}

/// Rewind `page` (currently at some state with `pageLSN >= as_of`) back to
/// `as_of`, using the per-page chain in `log`.
///
/// A page that did not exist at `as_of` unwinds to the unallocated state
/// (its chain walks through its `Format`/`Preformat` records). Returns
/// [`Error::LogTruncated`] when the needed history has been discarded —
/// callers surface that as a retention error.
///
/// Addressability invariant: an `as_of` that falls *between* a page's
/// `Preformat` and `Format` records yields the erased (unallocated) state
/// rather than the preserved old image. That instant is unreachable through
/// any query: the page is deallocated and not yet linked into any structure
/// at every SplitLSN that can land there, and split points are commit
/// records, never page-op records.
pub fn prepare_page_as_of(
    log: &LogManager,
    page: &mut Page,
    pid: PageId,
    as_of: Lsn,
) -> Result<PrepareStats> {
    let mut stats = PrepareStats::default();

    // §6.1 skip: find the earliest full page image with lsn > as_of. The
    // chain is walked through zero-copy record refs: the image bytes stay in
    // the log segment until (unless) one is actually restored.
    let mut fpi_cursor = page.last_fpi_lsn();
    let mut skip_target: Option<RecordRef> = None;
    while fpi_cursor.is_valid() && fpi_cursor > as_of {
        let rec = log.get_record_ref(fpi_cursor)?;
        stats.fpi_chain_reads += 1;
        match rec.view()?.1 {
            LogPayloadView::FullPageImage { prev_fpi_lsn, .. } => {
                skip_target = Some(rec);
                fpi_cursor = prev_fpi_lsn;
            }
            other => {
                return Err(Error::corruption(format!(
                    "FPI chain of {pid:?} hit non-FPI record {other:?} at {fpi_cursor}"
                )))
            }
        }
    }
    if let Some(rec) = skip_target {
        if rec.lsn() < page.page_lsn() {
            // Jump the page back to the image (restored straight from the
            // borrowed segment bytes); the normal loop below then undoes
            // only the (at most N) modifications between as_of and the
            // image.
            rec.view()?.1.redo(page, pid, rec.lsn())?;
            stats.fpi_restored = true;
        }
    }

    // Paper Fig. 3. Header-only navigation plus borrowed-payload undo: no
    // per-record allocation, no payload copies.
    let mut cur = page.page_lsn();
    while cur.is_valid() && cur > as_of {
        let rec = log.get_record_ref(cur)?;
        stats.records_undone += 1;
        let (header, view) = rec.view()?;
        if header.page != pid {
            return Err(Error::corruption(format!(
                "page chain of {pid:?} reached record for {:?} at {cur}",
                header.page
            )));
        }
        view.undo(page, pid)?;
        cur = header.prev_page_lsn;
    }
    page.set_page_lsn(cur);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_common::{ObjectId, TxnId};
    use rewind_pagestore::PageType;
    use rewind_wal::{LogConfig, LogPayload, LogRecord};

    /// A tiny harness that mimics the live modify path for one page:
    /// logs a record with correct chains, applies it.
    struct PageSim {
        log: LogManager,
        page: Page,
        pid: PageId,
        fpi_interval: u32,
        mods_since_fpi: u32,
        /// retained history for oracle comparison: (lsn after apply, image)
        history: Vec<(Lsn, Page)>,
    }

    impl PageSim {
        fn new(fpi_interval: u32) -> Self {
            let pid = PageId(5);
            let mut sim = PageSim {
                log: LogManager::new(LogConfig::default()),
                page: Page::zeroed(),
                pid,
                fpi_interval,
                mods_since_fpi: 0,
                history: Vec::new(),
            };
            sim.history.push((Lsn::NULL, sim.page.clone()));
            sim.apply(LogPayload::Format {
                object: ObjectId(1),
                ty: PageType::BTreeLeaf,
                level: 0,
                next: PageId::INVALID,
                prev: PageId::INVALID,
            });
            sim
        }

        fn apply(&mut self, payload: LogPayload) -> Lsn {
            let rec = LogRecord {
                lsn: Lsn::NULL,
                txn: TxnId(1),
                prev_lsn: Lsn::NULL,
                page: self.pid,
                prev_page_lsn: self.page.page_lsn(),
                object: ObjectId(1),
                undo_next: Lsn::NULL,
                flags: 0,
                payload: payload.clone(),
            };
            let lsn = self.log.append(&rec);
            payload.redo(&mut self.page, self.pid, lsn).unwrap();
            self.history.push((lsn, self.page.clone()));
            if self.fpi_interval > 0 {
                self.mods_since_fpi += 1;
                if self.mods_since_fpi >= self.fpi_interval {
                    self.mods_since_fpi = 0;
                    let fpi = LogPayload::FullPageImage {
                        prev_fpi_lsn: self.page.last_fpi_lsn(),
                        image: Box::new(*self.page.image()),
                    };
                    let rec = LogRecord {
                        lsn: Lsn::NULL,
                        txn: TxnId::NONE,
                        prev_lsn: Lsn::NULL,
                        page: self.pid,
                        prev_page_lsn: self.page.page_lsn(),
                        object: ObjectId(1),
                        undo_next: Lsn::NULL,
                        flags: 0,
                        payload: fpi.clone(),
                    };
                    let lsn = self.log.append(&rec);
                    fpi.redo(&mut self.page, self.pid, lsn).unwrap();
                    self.history.push((lsn, self.page.clone()));
                }
            }
            lsn
        }

        /// Drive a deterministic workload of inserts/updates/deletes.
        fn run(&mut self, ops: usize) {
            let mut n = 0usize; // live records
            let mut state = 7u64;
            let mut rng = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(144);
                state >> 33
            };
            for i in 0..ops {
                let r = rng() % 10;
                let room = self.page.can_insert(96);
                if n == 0 || (r < 5 && room) {
                    let bytes = format!("op{i}-{}", "x".repeat((rng() % 64) as usize));
                    let slot = (rng() as usize) % (n + 1);
                    self.apply(LogPayload::InsertRecord {
                        slot: slot as u16,
                        bytes: bytes.into_bytes(),
                    });
                    n += 1;
                } else if r < 8 && n > 0 {
                    let slot = (rng() as usize) % n;
                    let old = self.page.record(slot).unwrap().to_vec();
                    // never longer than the shortest possible record
                    let new = format!("u{:03}", i % 1000).into_bytes();
                    self.apply(LogPayload::UpdateRecord {
                        slot: slot as u16,
                        old,
                        new,
                    });
                } else {
                    let slot = (rng() as usize) % n;
                    let old = self.page.record(slot).unwrap().to_vec();
                    self.apply(LogPayload::DeleteRecord {
                        slot: slot as u16,
                        old,
                    });
                    n -= 1;
                }
            }
        }

        fn check_prepare_at_every_point(&self) {
            for (as_of, expect) in &self.history {
                let mut p = self.page.clone();
                let stats = prepare_page_as_of(&self.log, &mut p, self.pid, *as_of).unwrap();
                assert_eq!(p.page_lsn(), expect.page_lsn(), "pageLSN at {as_of}");
                let a: Vec<_> = p.records().collect();
                let b: Vec<_> = expect.records().collect();
                assert_eq!(a, b, "records at as_of={as_of} (stats {stats:?})");
                assert_eq!(p.page_type(), expect.page_type(), "type at {as_of}");
            }
        }
    }

    #[test]
    fn rewinds_to_every_historical_state_without_fpi() {
        let mut sim = PageSim::new(0);
        sim.run(120);
        sim.check_prepare_at_every_point();
    }

    #[test]
    fn rewinds_to_every_historical_state_with_fpi() {
        for interval in [1u32, 4, 16] {
            let mut sim = PageSim::new(interval);
            sim.run(120);
            sim.check_prepare_at_every_point();
        }
    }

    #[test]
    fn fpi_skip_bounds_undo_work() {
        let mut with_fpi = PageSim::new(8);
        with_fpi.run(400);
        let mut without = PageSim::new(0);
        without.run(400);

        // Rewind all the way to just after format.
        let early = with_fpi.history[1].0;
        let mut p = with_fpi.page.clone();
        let s1 = prepare_page_as_of(&with_fpi.log, &mut p, with_fpi.pid, early).unwrap();
        let early_nofpi = without.history[1].0;
        let mut q = without.page.clone();
        let s2 = prepare_page_as_of(&without.log, &mut q, without.pid, early_nofpi).unwrap();

        assert!(s1.fpi_restored, "skip must engage for deep rewinds");
        assert!(
            s1.records_undone <= 8 + 1,
            "with N=8 at most ~N records are undone, got {}",
            s1.records_undone
        );
        assert!(
            s2.records_undone > 100,
            "without FPIs every modification is undone, got {}",
            s2.records_undone
        );
    }

    #[test]
    fn unwinding_past_format_yields_unallocated_page() {
        let sim = {
            let mut s = PageSim::new(0);
            s.run(10);
            s
        };
        let mut p = sim.page.clone();
        prepare_page_as_of(&sim.log, &mut p, sim.pid, Lsn::NULL).unwrap();
        assert_eq!(p.page_type(), PageType::Free);
        assert_eq!(p.page_lsn(), Lsn::NULL);
        assert_eq!(p.slot_count(), 0);
    }

    #[test]
    fn noop_when_page_already_old_enough() {
        let mut sim = PageSim::new(0);
        sim.run(5);
        let mut p = sim.page.clone();
        let stats = prepare_page_as_of(&sim.log, &mut p, sim.pid, Lsn::MAX).unwrap();
        assert_eq!(stats.records_undone, 0);
        assert_eq!(p.page_lsn(), sim.page.page_lsn());
    }

    #[test]
    fn truncated_history_is_detected() {
        let mut sim = PageSim::new(0);
        sim.run(4000);
        sim.log.flush_to(sim.log.tail_lsn());
        let mid = sim.history[sim.history.len() / 2].0;
        sim.log.truncate_before(mid);
        if sim.log.truncation_point() > Lsn::FIRST {
            let mut p = sim.page.clone();
            let err = prepare_page_as_of(&sim.log, &mut p, sim.pid, Lsn::FIRST);
            assert!(matches!(err, Err(Error::LogTruncated(_))), "got {err:?}");
        }
    }
}
