//! Recovery: checkpoints, ARIES restart, rollback, and the paper's core
//! primitive — `PreparePageAsOf`.
//!
//! * [`prepare::prepare_page_as_of`] — paper §4, Fig. 3: walk a page's
//!   backward log chain undoing modifications until the page is as of the
//!   target LSN, with the §6.1 full-page-image skip.
//! * [`checkpoint::take_checkpoint`] — fuzzy checkpoints (begin/end records
//!   carrying the ATT and DPT and a wall-clock stamp, which SplitLSN search
//!   uses to narrow its scan, §5.1).
//! * [`analysis`] / [`redo`] — the restart passes, shared between crash
//!   recovery and as-of snapshot recovery (§5.2); analysis also collects the
//!   row locks that snapshot recovery must reacquire.
//! * [`rollback::rollback_chain`] — transaction rollback with CLRs that
//!   carry undo information (§4.2-2), logical undo for B-Tree rows,
//!   physical undo for heap rows, allocation bits and partial structure
//!   modifications.
//! * [`EngineStore`] — the canonical live-engine [`rewind_access::Store`]
//!   implementation:
//!   buffer pool + WAL + per-page/per-txn chains + FPI cadence + the
//!   copy-on-write hook used by regular snapshots.

pub mod analysis;
pub mod checkpoint;
pub mod prepare;
pub mod redo;
pub mod rollback;
pub mod store;

pub use analysis::{analyze, AnalysisResult, LoserTxn};
pub use checkpoint::take_checkpoint;
pub use prepare::{prepare_page_as_of, PrepareStats};
pub use redo::redo_pass;
pub use rollback::{rollback_chain, AccessKind};
pub use store::{CowSink, EngineParts, EngineStore};
