//! Recovery: checkpoints, ARIES restart, rollback, and the paper's core
//! primitive — `PreparePageAsOf`.
//!
//! * [`prepare::prepare_page_as_of`] — paper §4, Fig. 3: walk a page's
//!   backward log chain undoing modifications until the page is as of the
//!   target LSN, with the §6.1 full-page-image skip.
//! * [`checkpoint::take_checkpoint`] — fuzzy checkpoints (begin/end records
//!   carrying the ATT and DPT and a wall-clock stamp, which SplitLSN search
//!   uses to narrow its scan, §5.1);
//!   [`checkpoint::take_checkpoint_incremental`] — the background-cadence
//!   variant that flushes only old dirt, bounding crash-redo work to the
//!   checkpoint interval.
//! * [`analysis`] / [`redo`] — the restart passes, shared between crash
//!   recovery and as-of snapshot recovery (§5.2); analysis also collects the
//!   row locks that snapshot recovery must reacquire.
//! * [`restart`] — crash restart's pipelined form: one forward scan feeds
//!   the incremental [`analysis::AnalysisBuilder`] *and* dispatches
//!   qualifying page-ops to redo workers partitioned by `PageId`. Per-page
//!   backward chains mean redo's only ordering constraint is per page, so
//!   hash-partitioning pages across workers (each applying its pages'
//!   records in LSN order) is exactly as correct as the serial pass — the
//!   module docs carry the full argument.
//! * [`rollback::rollback_chain`] — transaction rollback with CLRs that
//!   carry undo information (§4.2-2), logical undo for B-Tree rows,
//!   physical undo for heap rows, allocation bits and partial structure
//!   modifications.
//! * [`EngineStore`] — the canonical live-engine [`rewind_access::Store`]
//!   implementation:
//!   buffer pool + WAL + per-page/per-txn chains + FPI cadence + the
//!   copy-on-write hook used by regular snapshots.

pub mod analysis;
pub mod checkpoint;
pub mod prepare;
pub mod redo;
pub mod restart;
pub mod rollback;
pub mod store;

pub use analysis::{analyze, AnalysisBuilder, AnalysisResult, LoserTxn};
pub use checkpoint::{take_checkpoint, take_checkpoint_incremental};
pub use prepare::{prepare_page_as_of, PrepareStats};
pub use redo::redo_pass;
pub use restart::{pipelined_restart, PartitionedRedo, RestartOutcome};
pub use rollback::{rollback_chain, AccessKind};
pub use store::{CowSink, EngineParts, EngineStore};
