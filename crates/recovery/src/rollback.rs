//! Transaction rollback with compensation log records.
//!
//! Walks a transaction's backward chain (`prev_lsn`), logically undoing
//! B-Tree row changes (the row may have been moved by later structure
//! modifications, so it is located by key — the reason the paper rejects
//! blanket transaction-oriented undo for *as-of* queries in §4.1 applies in
//! reverse here) and physically undoing everything whose location is
//! stable: heap rows (RID-stable by design), allocation bits, boot-page
//! bytes, sibling pointers and partial structure modifications.
//!
//! Every compensation is logged as a CLR carrying full undo information —
//! the paper's §4.2-2 extension — so `PreparePageAsOf` can walk straight
//! through rollbacks. Completed SMOs are skipped via their closing CLR's
//! `undo_next`.

use rewind_access::store::{ModKind, Store};
use rewind_access::{BTree, Heap};
use rewind_common::{Error, Lsn, ObjectId, Result};
use rewind_wal::{LogManager, LogPayload, LogRecord, REC_FLAG_SYSTEM};

/// How an object stores rows — resolved from the catalog during rollback.
#[derive(Clone, Copy, Debug)]
pub enum AccessKind {
    /// Rows live in a clustered B-Tree.
    Tree(BTree),
    /// Rows live in a heap.
    Heap(Heap),
}

/// Undo one record, logging CLR(s). Returns `Ok(())` even when the logical
/// target no longer exists (idempotent crash-resume).
///
/// Public because both restart undo and as-of snapshot recovery (§5.2) drive
/// merged multi-transaction sweeps through it.
pub fn undo_record<S: Store>(
    s: &S,
    rec: &LogRecord,
    resolver: &dyn Fn(ObjectId) -> Result<AccessKind>,
) -> Result<()> {
    let undo_next = rec.prev_lsn;
    // Physical compensation applies to: partial SMO records, and payload
    // types whose location is intrinsically stable.
    let physical = rec.flags & REC_FLAG_SYSTEM != 0
        || matches!(
            rec.payload,
            LogPayload::AllocSet { .. }
                | LogPayload::BootWrite { .. }
                | LogPayload::SetNextPage { .. }
                | LogPayload::SetPrevPage { .. }
                | LogPayload::RestoreImage { .. }
                | LogPayload::Format { .. }
                | LogPayload::Preformat { .. }
                | LogPayload::Reformat { .. }
                | LogPayload::FullPageImage { .. }
        );
    if physical {
        match &rec.payload {
            LogPayload::Format { .. } | LogPayload::Preformat { .. } => {
                // Forward effect is erased/nil; once the allocation bit is
                // compensated the page is free again. Nothing to log.
                return Ok(());
            }
            LogPayload::Reformat { object, prev_image, .. } => {
                let _ = object;
                // Restore the pre-reformat image (partial root split).
                let current = s.with_page(rec.page, |p| Ok(Box::new(*p.image())))?;
                s.modify(
                    rec.page,
                    LogPayload::RestoreImage { old: current, new: prev_image.clone() },
                    ModKind::Clr { undo_next },
                )?;
                return Ok(());
            }
            LogPayload::FullPageImage { .. } => return Ok(()),
            payload => {
                if let Some(comp) = payload.compensation() {
                    s.modify(rec.page, comp, ModKind::Clr { undo_next })?;
                }
                return Ok(());
            }
        }
    }
    // Logical compensation for user row changes.
    match &rec.payload {
        LogPayload::InsertRecord { bytes, .. } => match resolver(rec.object)? {
            AccessKind::Tree(t) => {
                let (key, _) = rewind_access::btree::decode_leaf(bytes);
                t.rollback_insert(s, key, undo_next)?;
            }
            AccessKind::Heap(h) => {
                // Heap insert: tombstone the slot (RIDs are stable).
                let rid = rewind_access::heap::Rid { page: rec.page, slot: slot_of(&rec.payload) };
                let _ = h;
                s.modify_flagged(
                    rid.page,
                    LogPayload::UpdateRecord { slot: rid.slot, old: bytes.clone(), new: vec![] },
                    ModKind::Clr { undo_next },
                    rewind_wal::REC_FLAG_HEAP,
                )?;
            }
        },
        LogPayload::DeleteRecord { old, .. } => match resolver(rec.object)? {
            AccessKind::Tree(t) => t.rollback_delete(s, old, undo_next)?,
            AccessKind::Heap(_) => {
                return Err(Error::Internal("heap deletes are logged as updates".into()));
            }
        },
        LogPayload::UpdateRecord { slot, old, .. } => match resolver(rec.object)? {
            AccessKind::Tree(t) => t.rollback_update(s, old, undo_next)?,
            AccessKind::Heap(_) => {
                // Restore the previous row bytes in place (covers tombstone
                // deletes and in-place updates alike).
                let new_now = s.with_page(rec.page, |p| Ok(p.record(*slot as usize)?.to_vec()))?;
                s.modify_flagged(
                    rec.page,
                    LogPayload::UpdateRecord { slot: *slot, old: new_now, new: old.clone() },
                    ModKind::Clr { undo_next },
                    rewind_wal::REC_FLAG_HEAP,
                )?;
            }
        },
        LogPayload::Commit { .. } => {
            return Err(Error::Internal("cannot roll back a committed transaction".into()));
        }
        // Markers carry no state.
        LogPayload::Abort | LogPayload::End => {}
        other => {
            return Err(Error::Internal(format!("unexpected payload in rollback: {other:?}")));
        }
    }
    Ok(())
}

fn slot_of(payload: &LogPayload) -> u16 {
    match payload {
        LogPayload::InsertRecord { slot, .. }
        | LogPayload::DeleteRecord { slot, .. }
        | LogPayload::UpdateRecord { slot, .. } => *slot,
        _ => 0,
    }
}

/// Roll back a transaction chain starting at `from` (its most recent LSN).
///
/// CLRs encountered jump via `undo_next` (so completed structure
/// modifications and already-compensated work are skipped); every other
/// record is undone with a new CLR. Returns the number of records undone.
pub fn rollback_chain<S: Store>(
    s: &S,
    log: &LogManager,
    from: Lsn,
    resolver: &dyn Fn(ObjectId) -> Result<AccessKind>,
) -> Result<u64> {
    let mut cur = from;
    let mut undone = 0u64;
    while cur.is_valid() {
        let rec = log.get_record(cur)?;
        if rec.is_clr() {
            cur = rec.undo_next;
            continue;
        }
        undo_record(s, &rec, resolver)?;
        undone += 1;
        cur = rec.prev_lsn;
    }
    Ok(undone)
}
