//! Transaction rollback with compensation log records.
//!
//! Walks a transaction's backward chain (`prev_lsn`), logically undoing
//! B-Tree row changes (the row may have been moved by later structure
//! modifications, so it is located by key — the reason the paper rejects
//! blanket transaction-oriented undo for *as-of* queries in §4.1 applies in
//! reverse here) and physically undoing everything whose location is
//! stable: heap rows (RID-stable by design), allocation bits, boot-page
//! bytes, sibling pointers and partial structure modifications.
//!
//! Every compensation is logged as a CLR carrying full undo information —
//! the paper's §4.2-2 extension — so `PreparePageAsOf` can walk straight
//! through rollbacks. Completed SMOs are skipped via their closing CLR's
//! `undo_next`.

use rewind_access::store::{ModKind, Store};
use rewind_access::{BTree, Heap};
use rewind_common::{Error, Lsn, ObjectId, Result};
use rewind_wal::{
    LogManager, LogPayload, LogPayloadView, LogRecord, LogRecordHeader, REC_FLAG_SYSTEM,
};

/// How an object stores rows — resolved from the catalog during rollback.
#[derive(Clone, Copy, Debug)]
pub enum AccessKind {
    /// Rows live in a clustered B-Tree.
    Tree(BTree),
    /// Rows live in a heap.
    Heap(Heap),
}

/// Undo one record, logging CLR(s). Returns `Ok(())` even when the logical
/// target no longer exists (idempotent crash-resume).
///
/// Compatibility wrapper over [`undo_record_view`] for callers holding an
/// owned record.
pub fn undo_record<S: Store>(
    s: &S,
    rec: &LogRecord,
    resolver: &dyn Fn(ObjectId) -> Result<AccessKind>,
) -> Result<()> {
    match rec.payload.as_view() {
        Some(view) => undo_record_view(s, &rec.header(), &view, resolver),
        None => Err(Error::Internal(format!(
            "unexpected payload in rollback: {:?}",
            rec.payload
        ))),
    }
}

/// Undo one record from its header and borrowed payload view, logging
/// CLR(s). The zero-copy workhorse: undo walks hand payloads straight from
/// the log segment; bytes are copied only into the CLRs actually written.
///
/// Public because both restart undo and as-of snapshot recovery (§5.2) drive
/// merged multi-transaction sweeps through it.
pub fn undo_record_view<S: Store>(
    s: &S,
    header: &LogRecordHeader,
    payload: &LogPayloadView<'_>,
    resolver: &dyn Fn(ObjectId) -> Result<AccessKind>,
) -> Result<()> {
    let undo_next = header.prev_lsn;
    // Physical compensation applies to: partial SMO records, and payload
    // types whose location is intrinsically stable.
    let physical = header.flags & REC_FLAG_SYSTEM != 0
        || matches!(
            payload,
            LogPayloadView::AllocSet { .. }
                | LogPayloadView::BootWrite { .. }
                | LogPayloadView::SetNextPage { .. }
                | LogPayloadView::SetPrevPage { .. }
                | LogPayloadView::RestoreImage { .. }
                | LogPayloadView::Format { .. }
                | LogPayloadView::Preformat { .. }
                | LogPayloadView::Reformat { .. }
                | LogPayloadView::FullPageImage { .. }
        );
    if physical {
        match payload {
            LogPayloadView::Format { .. } | LogPayloadView::Preformat { .. } => {
                // Forward effect is erased/nil; once the allocation bit is
                // compensated the page is free again. Nothing to log.
                return Ok(());
            }
            LogPayloadView::Reformat { prev_image, .. } => {
                // Restore the pre-reformat image (partial root split).
                let current = s.with_page(header.page, |p| Ok(Box::new(*p.image())))?;
                s.modify(
                    header.page,
                    LogPayload::RestoreImage {
                        old: current,
                        new: Box::new(**prev_image),
                    },
                    ModKind::Clr { undo_next },
                )?;
                return Ok(());
            }
            LogPayloadView::FullPageImage { .. } => return Ok(()),
            payload => {
                if let Some(comp) = payload.compensation() {
                    s.modify(header.page, comp, ModKind::Clr { undo_next })?;
                }
                return Ok(());
            }
        }
    }
    // Logical compensation for user row changes.
    match *payload {
        LogPayloadView::InsertRecord { slot, bytes } => match resolver(header.object)? {
            AccessKind::Tree(t) => {
                let (key, _) = rewind_access::btree::decode_leaf(bytes);
                t.rollback_insert(s, key, undo_next)?;
            }
            AccessKind::Heap(h) => {
                // Heap insert: tombstone the slot (RIDs are stable).
                let rid = rewind_access::heap::Rid {
                    page: header.page,
                    slot,
                };
                let _ = h;
                s.modify_flagged(
                    rid.page,
                    LogPayload::UpdateRecord {
                        slot: rid.slot,
                        old: bytes.to_vec(),
                        new: vec![],
                    },
                    ModKind::Clr { undo_next },
                    rewind_wal::REC_FLAG_HEAP,
                )?;
            }
        },
        LogPayloadView::DeleteRecord { old, .. } => match resolver(header.object)? {
            AccessKind::Tree(t) => t.rollback_delete(s, old, undo_next)?,
            AccessKind::Heap(_) => {
                return Err(Error::Internal("heap deletes are logged as updates".into()));
            }
        },
        LogPayloadView::UpdateRecord { slot, old, .. } => match resolver(header.object)? {
            AccessKind::Tree(t) => t.rollback_update(s, old, undo_next)?,
            AccessKind::Heap(_) => {
                // Restore the previous row bytes in place (covers tombstone
                // deletes and in-place updates alike).
                let new_now =
                    s.with_page(header.page, |p| Ok(p.record(slot as usize)?.to_vec()))?;
                s.modify_flagged(
                    header.page,
                    LogPayload::UpdateRecord {
                        slot,
                        old: new_now,
                        new: old.to_vec(),
                    },
                    ModKind::Clr { undo_next },
                    rewind_wal::REC_FLAG_HEAP,
                )?;
            }
        },
        LogPayloadView::Commit { .. } => {
            return Err(Error::Internal(
                "cannot roll back a committed transaction".into(),
            ));
        }
        // Markers carry no state.
        LogPayloadView::Abort | LogPayloadView::End => {}
        ref other => {
            return Err(Error::Internal(format!(
                "unexpected payload in rollback: {other:?}"
            )));
        }
    }
    Ok(())
}

/// Roll back a transaction chain starting at `from` (its most recent LSN).
///
/// CLRs encountered jump via `undo_next` (so completed structure
/// modifications and already-compensated work are skipped) after a
/// header-only decode — their payloads are never materialized; every other
/// record is undone straight from its borrowed payload view, with a new CLR.
/// Returns the number of records undone.
pub fn rollback_chain<S: Store>(
    s: &S,
    log: &LogManager,
    from: Lsn,
    resolver: &dyn Fn(ObjectId) -> Result<AccessKind>,
) -> Result<u64> {
    let mut cur = from;
    let mut undone = 0u64;
    while cur.is_valid() {
        let rec = log.get_record_ref(cur)?;
        let header = rec.header()?;
        if header.is_clr() {
            cur = header.undo_next;
            continue;
        }
        let (_, view) = rec.view()?;
        undo_record_view(s, &header, &view, resolver)?;
        undone += 1;
        cur = header.prev_lsn;
    }
    Ok(undone)
}
