//! The redo pass: repeat history from the dirty-page table forward.

use rewind_buffer::BufferPool;
use rewind_common::{Lsn, PageId, Result};
use rewind_wal::{DptEntry, LogManager};
use std::collections::HashMap;

/// Redo all page modifications in `[redo_start, bound]` whose page appears
/// in `dpt` with `recLSN <= lsn`, applying a record only when the on-page
/// LSN shows it missing. Returns the number of records applied.
///
/// Used by crash restart (`bound = Lsn::MAX`). As-of snapshot recovery does
/// *not* call this: its creation-time checkpoint flushed every page, so "no
/// page reads are done" during its redo (§5.2) — it only needs analysis.
pub fn redo_pass(
    log: &LogManager,
    pool: &BufferPool,
    dpt: &[DptEntry],
    redo_start: Lsn,
    bound: Lsn,
) -> Result<u64> {
    let rec_lsns: HashMap<PageId, Lsn> = dpt.iter().map(|e| (e.page, e.rec_lsn)).collect();
    let mut applied = 0u64;
    let scan_to = if bound == Lsn::MAX {
        Lsn::MAX
    } else {
        Lsn(bound.0 + 1)
    };
    log.scan(redo_start, scan_to, |rec| {
        if rec.payload.is_page_op() && rec.page.is_valid() {
            if let Some(&rec_lsn) = rec_lsns.get(&rec.page) {
                if rec.lsn >= rec_lsn {
                    pool.with_page_mut(rec.page, |v| {
                        if v.page().page_lsn() < rec.lsn {
                            rec.payload.redo(v.page_mut(), rec.page, rec.lsn)?;
                            v.mark_dirty(rec.lsn);
                            applied += 1;
                        }
                        Ok(())
                    })?;
                }
            }
        }
        Ok(true)
    })?;
    Ok(applied)
}
