//! The redo pass: repeat history from the dirty-page table forward.
//!
//! This is the serial reference implementation; crash restart normally runs
//! the pipelined, partitioned equivalent in [`crate::restart`], which must
//! stay bit-exact with this pass's accounting (the crash-torture tests
//! compare them). As-of snapshot recovery and targeted rebuilds still call
//! this directly.

use rewind_buffer::BufferPool;
use rewind_common::{Lsn, PageId, Result};
use rewind_wal::{DptEntry, LogManager};
use std::collections::HashMap;

/// Redo all page modifications in `[redo_start, bound]` whose page appears
/// in `dpt` with `recLSN <= lsn`, applying a record only when the on-page
/// LSN shows it missing. Returns the number of records applied.
///
/// Used with `bound = Lsn::MAX` for "to the end of the log". As-of snapshot
/// recovery does *not* call this: its creation-time checkpoint flushed
/// every page, so "no page reads are done" during its redo (§5.2) — it
/// only needs analysis.
pub fn redo_pass(
    log: &LogManager,
    pool: &BufferPool,
    dpt: &[DptEntry],
    redo_start: Lsn,
    bound: Lsn,
) -> Result<u64> {
    let rec_lsns: HashMap<PageId, Lsn> = dpt.iter().map(|e| (e.page, e.rec_lsn)).collect();
    let mut applied = 0u64;
    // `scan_end()` saturates: a bound adjacent to (or at) `Lsn::MAX` stays
    // an end-of-log scan instead of wrapping to an empty one.
    log.scan(redo_start, bound.scan_end(), |rec| {
        if rec.payload.is_page_op() && rec.page.is_valid() {
            if let Some(&rec_lsn) = rec_lsns.get(&rec.page) {
                if rec.lsn >= rec_lsn {
                    pool.with_page_mut(rec.page, |v| {
                        if v.page().page_lsn() < rec.lsn {
                            rec.payload.redo(v.page_mut(), rec.page, rec.lsn)?;
                            v.mark_dirty(rec.lsn);
                            applied += 1;
                        }
                        Ok(())
                    })?;
                }
            }
        }
        Ok(true)
    })?;
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_pagestore::MemFileManager;
    use rewind_wal::LogConfig;
    use std::sync::Arc;

    /// `bound` values adjacent to `Lsn::MAX` used to compute `bound.0 + 1`,
    /// which overflows (wrapping the scan end to `Lsn::NULL` and silently
    /// redoing nothing). The saturating scan end must keep these bounds
    /// meaning "to the end of the log".
    #[test]
    fn redo_bound_adjacent_to_max_does_not_overflow() {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm, log.clone(), 8);
        for bound in [Lsn::MAX, Lsn(u64::MAX - 1)] {
            let applied = redo_pass(&log, &pool, &[], Lsn::FIRST, bound).unwrap();
            assert_eq!(applied, 0);
        }
    }
}
