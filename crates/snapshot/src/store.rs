//! The snapshot page-access protocol and its two [`Store`] personalities.
//!
//! `SnapInner::fetch` is the paper's §5.3 protocol verbatim:
//!
//! > a. If the page exists in the sparse file, return that page.
//! > b. Else, read the page from the primary database.
//! > c. Once the read I/O completes …, call PreparePageAsOf(page, SplitLSN)
//! >    to undo the page as of the split LSN.
//! > d. Write the prepared page to the sparse file.
//!
//! Prior versions are therefore produced **only for pages that are actually
//! accessed** — the property the whole paper is built around (§3).
//!
//! [`SnapshotStore`] exposes this read-only (queries); [`SnapshotMutator`]
//! additionally lets snapshot recovery's logical undo modify side-file pages
//! *without logging* — the snapshot is a throwaway replica, as in SQL Server
//! where undo writes go to the sparse file (§5.2).
//!
//! Step (b) reads the primary **through the buffer manager** with a shared
//! latch (paper §2.1 — every page access, live or as-of, goes through the
//! buffer pool). The pool's page table is sharded, so an as-of reader never
//! blocks behind a live writer's exclusive latch on an unrelated shard; a
//! resident page costs a shared shard probe plus an atomic pin. The image
//! obtained may be *newer* than the durable version (live writers keep
//! modifying), which is fine: `PreparePageAsOf` walks the per-page chain
//! backward from whatever `pageLSN` the image carries.
//!
//! # Zero-copy reads
//!
//! Every page this store serves is a [`PageImage`] — an immutable,
//! `Arc`-shared allocation. A **warm hit copies nothing**: the side file
//! hands back an `Arc` clone and the query closure borrows straight from
//! it. A **cold miss copies exactly once**: step (b) borrows the primary
//! frame through a [`rewind_buffer::PageRead`] guard (shared latch, no
//! owned clone), and the single 8 KiB copy is the one *into* the private
//! page that `PreparePageAsOf` rewinds — which is then frozen into the
//! image the side file stores and every subsequent reader shares. Because
//! stored images are immutable and overwrites swap the `Arc`, an in-flight
//! reader keeps the exact version it fetched while background undo fixes
//! pages up underneath it (epoch stability — the split-consistency
//! invariant).
//!
//! Bulk preparation (`AsOfSnapshot::prepare_pages`, table prefetch) passes
//! a [`rewind_buffer::ScanPartition`] down to step (b), so a cold as-of
//! stream larger than the pool reuses its own bounded frame budget instead
//! of evicting the live working set (ROADMAP item (h)).
//!
//! Concurrent first-preparations of the same page are serialized by
//! **per-page gates in a pid-sharded table**. A gate entry lives only while
//! a preparation is in flight: the preparer removes it once the page is in
//! the side file (or on error), so the gate table is bounded by the number
//! of concurrently-preparing pages — it no longer grows with every page a
//! snapshot ever touched (the pre-shard global `preparing` map leaked one
//! entry per page for the snapshot's lifetime).

use parking_lot::Mutex;
use rewind_access::store::{ModKind, Store};
use rewind_buffer::{BufferPool, ScanPartition};
use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_obs::{EventKind, Obs};
use rewind_pagestore::{Page, PageImage, PageType, SideFile};
use rewind_recovery::prepare_page_as_of;
use rewind_txn::ObjectLatches;
use rewind_wal::{LogManager, LogPayload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::SnapshotStats;

/// Number of prepare-gate shards (power of two).
const GATE_SHARDS: usize = 16;

/// Per-page first-preparation gates, sharded by pid hash. Entries exist
/// only while a preparation is in flight (leak-free by construction).
struct PrepareGates {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<()>>>>>,
}

impl PrepareGates {
    fn new() -> Self {
        PrepareGates {
            shards: (0..GATE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, pid: u64) -> &Mutex<HashMap<u64, Arc<Mutex<()>>>> {
        &self.shards[rewind_common::shard_index(pid, GATE_SHARDS)]
    }

    /// Get (or create) the gate for `pid`.
    fn enter(&self, pid: u64) -> Arc<Mutex<()>> {
        self.shard(pid).lock().entry(pid).or_default().clone()
    }

    /// Remove `pid`'s gate if it is still the one this caller entered
    /// (idempotent: a later entrant may have re-created the entry).
    fn leave(&self, pid: u64, gate: &Arc<Mutex<()>>) {
        // tidy: lock-order(snapshot_page_gate < snapshot_gate_table) -- the
        // per-page gate stays held while its table entry is retired; `enter`
        // never takes a gate under the table shard lock.
        let mut map = self.shard(pid).lock();
        if map.get(&pid).is_some_and(|cur| Arc::ptr_eq(cur, gate)) {
            map.remove(&pid);
        }
    }

    /// Whether `gate` is still the table's entry for `pid`. A waiter that
    /// acquires a gate *after* its owner retired it (success or error) must
    /// re-enter through the table, or it would run concurrently with a
    /// later entrant's fresh gate.
    fn is_current(&self, pid: u64, gate: &Arc<Mutex<()>>) -> bool {
        self.shard(pid)
            .lock()
            .get(&pid)
            .is_some_and(|cur| Arc::ptr_eq(cur, gate))
    }

    /// Gate entries currently live (bounded by in-flight preparations).
    fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Shared snapshot state: the side file, the primary's buffer pool and log,
/// and the SplitLSN.
pub struct SnapInner {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) split: Lsn,
    pub(crate) side: SideFile,
    preparing: PrepareGates,
    pub(crate) stats: SnapshotStats,
    /// The engine's observability handle, shared from the log manager.
    pub(crate) obs: Arc<Obs>,
    phantom_next: AtomicU64,
}

impl SnapInner {
    pub(crate) fn new(pool: Arc<BufferPool>, log: Arc<LogManager>, split: Lsn) -> Self {
        let phantom_base = pool.file_manager().page_count().max(1) + (1 << 20);
        SnapInner {
            pool,
            obs: log.obs().clone(),
            log,
            split,
            side: SideFile::new(),
            preparing: PrepareGates::new(),
            stats: SnapshotStats::default(),
            phantom_next: AtomicU64::new(phantom_base),
        }
    }

    /// The §5.3 read protocol: a shared immutable image of `pid` as of the
    /// SplitLSN. Warm hits are an `Arc` clone — zero page bytes copied.
    pub(crate) fn fetch_image(&self, pid: PageId) -> Result<PageImage> {
        Ok(self.fetch_traced_in(pid, None)?.0)
    }

    /// Gate entries currently live (regression guard: bounded by in-flight
    /// preparations, never by pages touched).
    pub(crate) fn gate_entries(&self) -> usize {
        self.preparing.entries()
    }

    /// [`SnapInner::fetch_image`] plus the prepare cost actually paid:
    /// `None` when the page was served from the side file, `Some(stats)`
    /// when this call prepared it. The concurrent prepare fan-out uses the
    /// trace to attribute undo work to individual workers, and passes a
    /// [`ScanPartition`] so cold step (b) reads stay inside a bounded frame
    /// budget of the shared pool.
    pub(crate) fn fetch_traced_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
    ) -> Result<(PageImage, Option<rewind_recovery::PrepareStats>)> {
        self.fetch_traced_staged_in(pid, scan, None)
    }

    /// [`SnapInner::fetch_traced_in`] with an optional pre-fetched primary
    /// read for `pid` — one slot of a vectored `read_pages` batch issued by
    /// the bulk prepare fan-out. The staged result is consumed only if this
    /// call reaches step (b) itself (side miss, gate won); otherwise it is
    /// dropped, exactly like the pool's own staged misses.
    pub(crate) fn fetch_traced_staged_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
        staged: Option<Result<Page>>,
    ) -> Result<(PageImage, Option<rewind_recovery::PrepareStats>)> {
        let mut staged = staged;
        if let Some(img) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((img, None));
        }
        // Serialize concurrent first-preparations of the same page; the
        // gate entry is removed again on every exit path (including
        // errors), so a waiter that wakes up holding a retired gate loops
        // back through the table rather than racing a fresh entrant.
        loop {
            let gate = self.preparing.enter(pid.0);
            let guard = gate.lock();
            if !self.preparing.is_current(pid.0, &gate) {
                drop(guard);
                continue;
            }
            let result = self.prepare_gated(pid, scan, staged.take());
            // Retire the table entry *before* releasing the gate mutex: a
            // waiter woken by the unlock must observe `is_current == false`
            // and loop back through the table. Releasing first would open a
            // window where the waiter passes `is_current`, a fresh entrant
            // creates a new gate, and two threads prepare the same pid
            // concurrently.
            self.preparing.leave(pid.0, &gate);
            drop(guard);
            return result;
        }
    }

    /// The miss path of the §5.3 protocol, run under `pid`'s prepare gate.
    /// `staged` carries an optional vectored pre-read of the primary page.
    fn prepare_gated(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
        staged: Option<Result<Page>>,
    ) -> Result<(PageImage, Option<rewind_recovery::PrepareStats>)> {
        if let Some(img) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((img, None));
        }
        let prepare_started = self.obs.now_us();
        self.obs
            .record(EventKind::AsOfPrepareStart, self.split.0, pid.0, 0);
        // Step (b): borrow the primary frame through the buffer manager,
        // shared latch (the image may be newer than durable; the walk below
        // rolls it back from whatever pageLSN it carries). The copy out of
        // the borrowed view into the preparer's private page is the single
        // 8 KiB copy a cold miss pays; the latch is released before the
        // backward log walk so no frame latch is ever held across log I/O.
        let mut page = {
            let primary = self.pool.read_page_staged_in(pid, scan, staged)?;
            Page::clone(&primary)
        };
        let st =
            prepare_page_as_of(&self.log, &mut page, pid, self.split).map_err(|e| match e {
                Error::LogTruncated(lsn) => Error::LogTruncated(lsn),
                other => other,
            })?;
        self.stats.pages_prepared.fetch_add(1, Ordering::Relaxed);
        // Adjacent to the `pages_prepared` increment so the histogram
        // count equals the prepared-page count exactly.
        let dur = self.obs.now_us().saturating_sub(prepare_started);
        self.obs.asof_prepare_us(dur);
        self.obs
            .record(EventKind::AsOfPrepareDone, self.split.0, pid.0, dur);
        self.stats
            .records_undone
            .fetch_add(st.records_undone, Ordering::Relaxed);
        self.stats
            .fpi_chain_reads
            .fetch_add(st.fpi_chain_reads, Ordering::Relaxed);
        if st.fpi_restored {
            self.stats.fpi_restores.fetch_add(1, Ordering::Relaxed);
        }
        // Freeze the prepared page into an immutable image (step (d)):
        // ownership moves into the Arc, no further copy. Every later reader
        // of this page shares this allocation.
        let img = PageImage::new(page);
        self.side.put_image(pid, img.clone());
        Ok((img, Some(st)))
    }

    /// Write a page fixed up by logical undo back to the side file (§5.2:
    /// "this modified page is then written back to the side file"). Takes
    /// the page by value: it is frozen into a fresh immutable image without
    /// copying; readers holding the previous image keep their epoch.
    pub(crate) fn put_owned(&self, pid: PageId, page: Page) {
        self.side.put_image(pid, PageImage::new(page));
    }

    /// Allocate a phantom page id for undo-side splits. Phantom pages exist
    /// only in the side file, beyond the primary's page range; queries reach
    /// them only through tree pointers written by the undo pass.
    pub(crate) fn phantom_page(&self) -> PageId {
        PageId(self.phantom_next.fetch_add(1, Ordering::AcqRel))
    }
}

/// Read-only [`Store`] over a snapshot: what queries use.
///
/// A store may carry a [`ScanPartition`]: §5.3 step (b) reads for pages it
/// prepares then stay inside the partition's bounded frame budget. Bulk
/// streams that cannot pre-discover their pages (heap chains, whose next
/// pointer lives on the page being read) use this to stay scan-resistant —
/// tree scans prefetch leaves through `prepare_pages` instead.
pub struct SnapshotStore<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
    pub(crate) scan: Option<&'a ScanPartition>,
}

impl SnapshotStore<'_> {
    /// Unified zero-copy read: the prepared immutable image of `pid` as a
    /// [`rewind_buffer::PageRead`]. The snapshot side always serves the
    /// `Image` variant — holding it costs no pool latch, so callers may keep
    /// it as long as they like (epoch-stable even under background undo).
    /// Cold preparations honour the store's scan partition, if any.
    pub fn read_page(&self, pid: PageId) -> Result<rewind_buffer::PageRead<'static>> {
        let (image, _) = self.inner.fetch_traced_in(pid, self.scan)?;
        Ok(rewind_buffer::PageRead::Image(image))
    }
}

impl Store for SnapshotStore<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        // Borrow straight from the shared image: zero copies on warm hits.
        let (image, _) = self.inner.fetch_traced_in(pid, self.scan)?;
        f(&image)
    }

    fn modify_flagged(
        &self,
        _pid: PageId,
        _payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        Err(Error::ReadOnly)
    }

    fn allocate(
        &self,
        _object: ObjectId,
        _ty: PageType,
        _level: u16,
        _next: PageId,
        _prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        Err(Error::ReadOnly)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // queries always take the latch shared; writes are rejected anyway
        self.latches.with_latch(object, false, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        false
    }
}

/// The write-capable [`Store`] used exclusively by snapshot recovery's
/// background logical undo (§5.2). Modifications apply straight to side-file
/// pages without logging; the page LSN is left at its prepared value.
pub struct SnapshotMutator<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
}

impl Store for SnapshotMutator<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let image = self.inner.fetch_image(pid)?;
        f(&image)
    }

    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        // Copy-on-write at page granularity: derive a private copy, apply
        // the undo, freeze it into a fresh image. Readers that already hold
        // the old image keep their epoch; the swap is atomic per page.
        let mut page = self.inner.fetch_image(pid)?.to_page();
        payload.precheck(&page)?;
        let keep_lsn = page.page_lsn();
        payload.redo(&mut page, pid, keep_lsn)?;
        self.inner.put_owned(pid, page);
        self.inner
            .stats
            .undo_records
            .fetch_add(1, Ordering::Relaxed);
        Ok(keep_lsn)
    }

    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        let pid = self.inner.phantom_page();
        let mut p = Page::formatted(pid, object, ty);
        p.set_level(level);
        p.set_next_page(next);
        p.set_prev_page(prev);
        p.set_page_lsn(self.inner.split);
        self.inner.put_owned(pid, p);
        Ok(pid)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::Internal(
            "snapshot undo never deallocates pages".into(),
        ))
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // the undo pass always mutates: exclusive
        self.latches.with_latch(object, true, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Ok(())
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        true
    }
}
