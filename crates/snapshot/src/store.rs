//! The snapshot page-access protocol and its two [`Store`] personalities.
//!
//! `SnapInner::fetch` is the paper's §5.3 protocol verbatim:
//!
//! > a. If the page exists in the sparse file, return that page.
//! > b. Else, read the page from the primary database.
//! > c. Once the read I/O completes …, call PreparePageAsOf(page, SplitLSN)
//! >    to undo the page as of the split LSN.
//! > d. Write the prepared page to the sparse file.
//!
//! Prior versions are therefore produced **only for pages that are actually
//! accessed** — the property the whole paper is built around (§3).
//!
//! [`SnapshotStore`] exposes this read-only (queries); [`SnapshotMutator`]
//! additionally lets snapshot recovery's logical undo modify side-file pages
//! *without logging* — the snapshot is a throwaway replica, as in SQL Server
//! where undo writes go to the sparse file (§5.2).

use parking_lot::Mutex;
use rewind_access::store::{ModKind, Store};
use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_pagestore::{FileManager, Page, PageType, SideFile};
use rewind_recovery::prepare_page_as_of;
use rewind_txn::ObjectLatches;
use rewind_wal::{LogManager, LogPayload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::SnapshotStats;

/// Shared snapshot state: the side file, the primary's file manager and log,
/// and the SplitLSN.
pub struct SnapInner {
    pub(crate) fm: Arc<dyn FileManager>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) split: Lsn,
    pub(crate) side: SideFile,
    preparing: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    pub(crate) stats: SnapshotStats,
    phantom_next: AtomicU64,
}

impl SnapInner {
    pub(crate) fn new(fm: Arc<dyn FileManager>, log: Arc<LogManager>, split: Lsn) -> Self {
        let phantom_base = fm.page_count().max(1) + (1 << 20);
        SnapInner {
            fm,
            log,
            split,
            side: SideFile::new(),
            preparing: Mutex::new(HashMap::new()),
            stats: SnapshotStats::default(),
            phantom_next: AtomicU64::new(phantom_base),
        }
    }

    /// The §5.3 read protocol.
    pub(crate) fn fetch(&self, pid: PageId) -> Result<Page> {
        Ok(self.fetch_traced(pid)?.0)
    }

    /// [`SnapInner::fetch`] plus the prepare cost actually paid: `None` when
    /// the page was served from the side file, `Some(stats)` when this call
    /// prepared it. The concurrent prepare fan-out uses the trace to
    /// attribute undo work to individual workers.
    pub(crate) fn fetch_traced(
        &self,
        pid: PageId,
    ) -> Result<(Page, Option<rewind_recovery::PrepareStats>)> {
        if let Some(p) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((p, None));
        }
        // Serialize concurrent first-preparations of the same page.
        let gate = {
            let mut map = self.preparing.lock();
            map.entry(pid.0).or_default().clone()
        };
        let _g = gate.lock();
        if let Some(p) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((p, None));
        }
        let mut page = self.fm.read_page(pid)?;
        let st =
            prepare_page_as_of(&self.log, &mut page, pid, self.split).map_err(|e| match e {
                Error::LogTruncated(lsn) => Error::LogTruncated(lsn),
                other => other,
            })?;
        self.stats.pages_prepared.fetch_add(1, Ordering::Relaxed);
        self.stats
            .records_undone
            .fetch_add(st.records_undone, Ordering::Relaxed);
        self.stats
            .fpi_chain_reads
            .fetch_add(st.fpi_chain_reads, Ordering::Relaxed);
        if st.fpi_restored {
            self.stats.fpi_restores.fetch_add(1, Ordering::Relaxed);
        }
        self.side.put(pid, &page);
        Ok((page, Some(st)))
    }

    /// Write a page fixed up by logical undo back to the side file (§5.2:
    /// "this modified page is then written back to the side file").
    pub(crate) fn put(&self, pid: PageId, page: &Page) {
        self.side.put(pid, page);
    }

    /// Allocate a phantom page id for undo-side splits. Phantom pages exist
    /// only in the side file, beyond the primary's page range; queries reach
    /// them only through tree pointers written by the undo pass.
    pub(crate) fn phantom_page(&self) -> PageId {
        PageId(self.phantom_next.fetch_add(1, Ordering::AcqRel))
    }
}

/// Read-only [`Store`] over a snapshot: what queries use.
pub struct SnapshotStore<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
}

impl Store for SnapshotStore<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let page = self.inner.fetch(pid)?;
        f(&page)
    }

    fn modify_flagged(
        &self,
        _pid: PageId,
        _payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        Err(Error::ReadOnly)
    }

    fn allocate(
        &self,
        _object: ObjectId,
        _ty: PageType,
        _level: u16,
        _next: PageId,
        _prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        Err(Error::ReadOnly)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // queries always take the latch shared; writes are rejected anyway
        self.latches.with_latch(object, false, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        false
    }
}

/// The write-capable [`Store`] used exclusively by snapshot recovery's
/// background logical undo (§5.2). Modifications apply straight to side-file
/// pages without logging; the page LSN is left at its prepared value.
pub struct SnapshotMutator<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
}

impl Store for SnapshotMutator<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let page = self.inner.fetch(pid)?;
        f(&page)
    }

    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        let mut page = self.inner.fetch(pid)?;
        payload.precheck(&page)?;
        let keep_lsn = page.page_lsn();
        payload.redo(&mut page, pid, keep_lsn)?;
        self.inner.put(pid, &page);
        self.inner
            .stats
            .undo_records
            .fetch_add(1, Ordering::Relaxed);
        Ok(keep_lsn)
    }

    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        let pid = self.inner.phantom_page();
        let mut p = Page::formatted(pid, object, ty);
        p.set_level(level);
        p.set_next_page(next);
        p.set_prev_page(prev);
        p.set_page_lsn(self.inner.split);
        self.inner.put(pid, &p);
        Ok(pid)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::Internal(
            "snapshot undo never deallocates pages".into(),
        ))
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // the undo pass always mutates: exclusive
        self.latches.with_latch(object, true, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Ok(())
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        true
    }
}
