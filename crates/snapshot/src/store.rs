//! The snapshot page-access protocol and its two [`Store`] personalities.
//!
//! `SnapInner::fetch` is the paper's §5.3 protocol verbatim:
//!
//! > a. If the page exists in the sparse file, return that page.
//! > b. Else, read the page from the primary database.
//! > c. Once the read I/O completes …, call PreparePageAsOf(page, SplitLSN)
//! >    to undo the page as of the split LSN.
//! > d. Write the prepared page to the sparse file.
//!
//! Prior versions are therefore produced **only for pages that are actually
//! accessed** — the property the whole paper is built around (§3).
//!
//! [`SnapshotStore`] exposes this read-only (queries); [`SnapshotMutator`]
//! additionally lets snapshot recovery's logical undo modify side-file pages
//! *without logging* — the snapshot is a throwaway replica, as in SQL Server
//! where undo writes go to the sparse file (§5.2).
//!
//! Step (b) reads the primary **through the buffer manager** with a shared
//! latch (paper §2.1 — every page access, live or as-of, goes through the
//! buffer pool). The pool's page table is sharded, so an as-of reader never
//! blocks behind a live writer's exclusive latch on an unrelated shard; a
//! resident page costs a shared shard probe plus an atomic pin. The image
//! obtained may be *newer* than the durable version (live writers keep
//! modifying), which is fine: `PreparePageAsOf` walks the per-page chain
//! backward from whatever `pageLSN` the image carries.
//!
//! Concurrent first-preparations of the same page are serialized by
//! **per-page gates in a pid-sharded table**. A gate entry lives only while
//! a preparation is in flight: the preparer removes it once the page is in
//! the side file (or on error), so the gate table is bounded by the number
//! of concurrently-preparing pages — it no longer grows with every page a
//! snapshot ever touched (the pre-shard global `preparing` map leaked one
//! entry per page for the snapshot's lifetime).

use parking_lot::Mutex;
use rewind_access::store::{ModKind, Store};
use rewind_buffer::BufferPool;
use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_pagestore::{Page, PageType, SideFile};
use rewind_recovery::prepare_page_as_of;
use rewind_txn::ObjectLatches;
use rewind_wal::{LogManager, LogPayload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::SnapshotStats;

/// Number of prepare-gate shards (power of two).
const GATE_SHARDS: usize = 16;

/// Per-page first-preparation gates, sharded by pid hash. Entries exist
/// only while a preparation is in flight (leak-free by construction).
struct PrepareGates {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<()>>>>>,
}

impl PrepareGates {
    fn new() -> Self {
        PrepareGates {
            shards: (0..GATE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, pid: u64) -> &Mutex<HashMap<u64, Arc<Mutex<()>>>> {
        &self.shards[rewind_common::shard_index(pid, GATE_SHARDS)]
    }

    /// Get (or create) the gate for `pid`.
    fn enter(&self, pid: u64) -> Arc<Mutex<()>> {
        self.shard(pid).lock().entry(pid).or_default().clone()
    }

    /// Remove `pid`'s gate if it is still the one this caller entered
    /// (idempotent: a later entrant may have re-created the entry).
    fn leave(&self, pid: u64, gate: &Arc<Mutex<()>>) {
        let mut map = self.shard(pid).lock();
        if map.get(&pid).is_some_and(|cur| Arc::ptr_eq(cur, gate)) {
            map.remove(&pid);
        }
    }

    /// Whether `gate` is still the table's entry for `pid`. A waiter that
    /// acquires a gate *after* its owner retired it (success or error) must
    /// re-enter through the table, or it would run concurrently with a
    /// later entrant's fresh gate.
    fn is_current(&self, pid: u64, gate: &Arc<Mutex<()>>) -> bool {
        self.shard(pid)
            .lock()
            .get(&pid)
            .is_some_and(|cur| Arc::ptr_eq(cur, gate))
    }

    /// Gate entries currently live (bounded by in-flight preparations).
    fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Shared snapshot state: the side file, the primary's buffer pool and log,
/// and the SplitLSN.
pub struct SnapInner {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) split: Lsn,
    pub(crate) side: SideFile,
    preparing: PrepareGates,
    pub(crate) stats: SnapshotStats,
    phantom_next: AtomicU64,
}

impl SnapInner {
    pub(crate) fn new(pool: Arc<BufferPool>, log: Arc<LogManager>, split: Lsn) -> Self {
        let phantom_base = pool.file_manager().page_count().max(1) + (1 << 20);
        SnapInner {
            pool,
            log,
            split,
            side: SideFile::new(),
            preparing: PrepareGates::new(),
            stats: SnapshotStats::default(),
            phantom_next: AtomicU64::new(phantom_base),
        }
    }

    /// The §5.3 read protocol.
    pub(crate) fn fetch(&self, pid: PageId) -> Result<Page> {
        Ok(self.fetch_traced(pid)?.0)
    }

    /// Gate entries currently live (regression guard: bounded by in-flight
    /// preparations, never by pages touched).
    pub(crate) fn gate_entries(&self) -> usize {
        self.preparing.entries()
    }

    /// [`SnapInner::fetch`] plus the prepare cost actually paid: `None` when
    /// the page was served from the side file, `Some(stats)` when this call
    /// prepared it. The concurrent prepare fan-out uses the trace to
    /// attribute undo work to individual workers.
    pub(crate) fn fetch_traced(
        &self,
        pid: PageId,
    ) -> Result<(Page, Option<rewind_recovery::PrepareStats>)> {
        if let Some(p) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((p, None));
        }
        // Serialize concurrent first-preparations of the same page; the
        // gate entry is removed again on every exit path (including
        // errors), so a waiter that wakes up holding a retired gate loops
        // back through the table rather than racing a fresh entrant.
        loop {
            let gate = self.preparing.enter(pid.0);
            let guard = gate.lock();
            if !self.preparing.is_current(pid.0, &gate) {
                drop(guard);
                continue;
            }
            let result = self.prepare_gated(pid);
            // Retire the table entry *before* releasing the gate mutex: a
            // waiter woken by the unlock must observe `is_current == false`
            // and loop back through the table. Releasing first would open a
            // window where the waiter passes `is_current`, a fresh entrant
            // creates a new gate, and two threads prepare the same pid
            // concurrently.
            self.preparing.leave(pid.0, &gate);
            drop(guard);
            return result;
        }
    }

    /// The miss path of the §5.3 protocol, run under `pid`'s prepare gate.
    fn prepare_gated(&self, pid: PageId) -> Result<(Page, Option<rewind_recovery::PrepareStats>)> {
        if let Some(p) = self.side.get(pid) {
            self.stats.side_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((p, None));
        }
        // Step (b): read the primary through the buffer manager, shared
        // latch (the image may be newer than durable; the walk below rolls
        // it back from whatever pageLSN it carries).
        let mut page = self.pool.with_page(pid, |p| Ok(p.clone()))?;
        let st =
            prepare_page_as_of(&self.log, &mut page, pid, self.split).map_err(|e| match e {
                Error::LogTruncated(lsn) => Error::LogTruncated(lsn),
                other => other,
            })?;
        self.stats.pages_prepared.fetch_add(1, Ordering::Relaxed);
        self.stats
            .records_undone
            .fetch_add(st.records_undone, Ordering::Relaxed);
        self.stats
            .fpi_chain_reads
            .fetch_add(st.fpi_chain_reads, Ordering::Relaxed);
        if st.fpi_restored {
            self.stats.fpi_restores.fetch_add(1, Ordering::Relaxed);
        }
        self.side.put(pid, &page);
        Ok((page, Some(st)))
    }

    /// Write a page fixed up by logical undo back to the side file (§5.2:
    /// "this modified page is then written back to the side file").
    pub(crate) fn put(&self, pid: PageId, page: &Page) {
        self.side.put(pid, page);
    }

    /// Allocate a phantom page id for undo-side splits. Phantom pages exist
    /// only in the side file, beyond the primary's page range; queries reach
    /// them only through tree pointers written by the undo pass.
    pub(crate) fn phantom_page(&self) -> PageId {
        PageId(self.phantom_next.fetch_add(1, Ordering::AcqRel))
    }
}

/// Read-only [`Store`] over a snapshot: what queries use.
pub struct SnapshotStore<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
}

impl Store for SnapshotStore<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let page = self.inner.fetch(pid)?;
        f(&page)
    }

    fn modify_flagged(
        &self,
        _pid: PageId,
        _payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        Err(Error::ReadOnly)
    }

    fn allocate(
        &self,
        _object: ObjectId,
        _ty: PageType,
        _level: u16,
        _next: PageId,
        _prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        Err(Error::ReadOnly)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // queries always take the latch shared; writes are rejected anyway
        self.latches.with_latch(object, false, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Err(Error::ReadOnly)
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        false
    }
}

/// The write-capable [`Store`] used exclusively by snapshot recovery's
/// background logical undo (§5.2). Modifications apply straight to side-file
/// pages without logging; the page LSN is left at its prepared value.
pub struct SnapshotMutator<'a> {
    pub(crate) inner: &'a SnapInner,
    pub(crate) latches: &'a ObjectLatches,
}

impl Store for SnapshotMutator<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let page = self.inner.fetch(pid)?;
        f(&page)
    }

    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        _kind: ModKind,
        _extra: u8,
    ) -> Result<Lsn> {
        let mut page = self.inner.fetch(pid)?;
        payload.precheck(&page)?;
        let keep_lsn = page.page_lsn();
        payload.redo(&mut page, pid, keep_lsn)?;
        self.inner.put(pid, &page);
        self.inner
            .stats
            .undo_records
            .fetch_add(1, Ordering::Relaxed);
        Ok(keep_lsn)
    }

    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        let pid = self.inner.phantom_page();
        let mut p = Page::formatted(pid, object, ty);
        p.set_level(level);
        p.set_next_page(next);
        p.set_prev_page(prev);
        p.set_page_lsn(self.inner.split);
        self.inner.put(pid, &p);
        Ok(pid)
    }

    fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
        Err(Error::Internal(
            "snapshot undo never deallocates pages".into(),
        ))
    }

    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        // the undo pass always mutates: exclusive
        self.latches.with_latch(object, true, f)
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Ok(())
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        true
    }
}
