//! As-of snapshot creation and recovery (paper §5.1–5.2).

use crate::stats::SnapshotStatsView;
use crate::store::{SnapInner, SnapshotMutator, SnapshotStore};
use parking_lot::{Condvar, Mutex};
use rewind_buffer::ScanPartition;
use rewind_common::{Error, Lsn, ObjectId, PageId, Result, Timestamp, TxnId};
use rewind_obs::EventKind;
use rewind_pagestore::Page;
use rewind_recovery::rollback::undo_record_view;
use rewind_recovery::{analyze, AccessKind, CowSink, EngineParts, LoserTxn};
use rewind_txn::{LockManager, LockMode, ObjectLatches};
use rewind_wal::find_split_lsn;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Facts recorded at snapshot creation (reported by benchmarks).
#[derive(Clone, Copy, Debug)]
pub struct CreationInfo {
    /// The SplitLSN the wall-clock time resolved to.
    pub split_lsn: Lsn,
    /// Where the analysis scan started (checkpoint begin before the split).
    pub analysis_start: Lsn,
    /// Log bytes scanned by analysis (creation cost is bounded by this,
    /// §6.2: "the cost of database snapshot creation depends on the amount
    /// of log scanned").
    pub analysis_bytes: u64,
    /// Transactions found in flight at the split.
    pub loser_count: usize,
    /// Row/table locks reacquired for them.
    pub locks_reacquired: usize,
}

/// Prepare work done by one fan-out worker of
/// [`AsOfSnapshot::prepare_pages`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchWorkerStats {
    /// Page ids this worker pulled off the shared cursor.
    pub pages: u64,
    /// Pages this worker actually prepared (side-file misses).
    pub prepared: u64,
    /// Log records undone across those preparations.
    pub records_undone: u64,
    /// FPI-chain records inspected across those preparations.
    pub fpi_chain_reads: u64,
}

impl PrefetchWorkerStats {
    /// Random log-record fetches this worker performed (potential stalls).
    pub fn log_reads(&self) -> u64 {
        self.records_undone + self.fpi_chain_reads
    }
}

/// Outcome of one concurrent multi-page prepare.
#[derive(Clone, Debug, Default)]
pub struct PrefetchOutcome {
    /// One entry per worker thread.
    pub per_worker: Vec<PrefetchWorkerStats>,
}

impl PrefetchOutcome {
    /// Pages newly prepared by this fan-out (side-file misses).
    pub fn prepared(&self) -> u64 {
        self.per_worker.iter().map(|w| w.prepared).sum()
    }

    /// Total random log reads across all workers.
    pub fn log_reads(&self) -> u64 {
        self.per_worker.iter().map(|w| w.log_reads()).sum()
    }

    /// The busiest worker's random log reads — the quantity that bounds
    /// parallel wall-clock time on stall-dominated media.
    pub fn max_worker_log_reads(&self) -> u64 {
        self.per_worker
            .iter()
            .map(|w| w.log_reads())
            .max()
            .unwrap_or(0)
    }
}

/// A read-only database as of a point in time in the past.
pub struct AsOfSnapshot {
    /// Snapshot name (as in `CREATE DATABASE ... AS SNAPSHOT OF ...`).
    pub name: String,
    /// The wall-clock time requested.
    pub as_of: Timestamp,
    /// The SplitLSN: the snapshot contains exactly the records ≤ this LSN.
    pub split_lsn: Lsn,
    /// Creation facts.
    pub creation: CreationInfo,
    inner: Arc<SnapInner>,
    latches: ObjectLatches,
    /// Reacquired locks of in-flight transactions; queries gate on these.
    pub locks: Arc<LockManager>,
    losers: Vec<LoserTxn>,
    undo_done: AtomicBool,
    undo_signal: (Mutex<bool>, Condvar),
    cow_token: Option<u64>,
}

impl AsOfSnapshot {
    /// Create an as-of snapshot of the database behind `parts` at wall-clock
    /// time `t` (paper §5.1).
    pub fn create(name: &str, parts: &EngineParts, t: Timestamp) -> Result<Arc<AsOfSnapshot>> {
        let split = find_split_lsn(&parts.log, t)?;
        Self::build(name, parts, t, split, false)
    }

    /// Create an as-of snapshot split at an **exact LSN** rather than a
    /// wall-clock time. This is the repair engine's witness: flashback wants
    /// the state *just before a particular transaction's first log record*,
    /// a point that no commit timestamp addresses. `t` labels the snapshot
    /// for retention errors and reporting; correctness depends only on
    /// `split`.
    pub fn create_at_lsn(
        name: &str,
        parts: &EngineParts,
        t: Timestamp,
        split: Lsn,
    ) -> Result<Arc<AsOfSnapshot>> {
        Self::build(name, parts, t, split, false)
    }

    /// Create a regular (copy-on-write) snapshot of the current state
    /// (paper §2.2): split at "now" under the modification gate, then
    /// register a COW sink so future modifications push pre-images.
    pub fn create_regular(
        name: &str,
        parts: &EngineParts,
        now: Timestamp,
    ) -> Result<Arc<AsOfSnapshot>> {
        let _gate = parts.mod_gate.write();
        // With the gate held no modification can race: flush everything,
        // pin the split just below the tail, and activate COW atomically.
        let split = Lsn(parts.log.tail_lsn().0.saturating_sub(1));
        Self::build(name, parts, now, split, true)
    }

    fn build(
        name: &str,
        parts: &EngineParts,
        t: Timestamp,
        split: Lsn,
        cow: bool,
    ) -> Result<Arc<AsOfSnapshot>> {
        // Creation checkpoint (§5.1): every page change ≤ split becomes
        // durable in the primary file, so the snapshot can always read the
        // primary file and roll backward.
        parts.pool.flush_all()?;
        // The split is a record *boundary*: everything strictly before it
        // must be durable; the record at the split is not part of the
        // snapshot.
        parts.log.flush_up_to(split);

        let io0 = parts.log.io_stats().snapshot();
        let analysis = analyze(&parts.log, split).map_err(retention_of(&parts.log, t))?;
        let analysis_bytes = parts.log.io_stats().snapshot().delta(io0).log_bytes_scanned;

        // Lock reacquisition (§5.2): "the redo pass reacquires the locks
        // that were held by the transactions that were in-flight as of the
        // SplitLSN". No pages are read.
        let locks = Arc::new(LockManager::new(Duration::from_secs(30)));
        let mut reacquired = 0usize;
        for loser in &analysis.losers {
            for (key, mode) in &loser.locks {
                locks.force_grant(loser.id, key, *mode);
                reacquired += 1;
            }
        }

        let inner = Arc::new(SnapInner::new(parts.pool.clone(), parts.log.clone(), split));
        let cow_token = if cow {
            Some(parts.register_cow(Arc::new(CowPusher {
                inner: inner.clone(),
            })))
        } else {
            None
        };

        let snap = Arc::new(AsOfSnapshot {
            name: name.to_string(),
            as_of: t,
            split_lsn: split,
            creation: CreationInfo {
                split_lsn: split,
                analysis_start: analysis.scan_start,
                analysis_bytes,
                loser_count: analysis.losers.len(),
                locks_reacquired: reacquired,
            },
            inner,
            latches: ObjectLatches::new(),
            locks,
            losers: analysis.losers,
            undo_done: AtomicBool::new(false),
            undo_signal: (Mutex::new(false), Condvar::new()),
            cow_token,
        });
        if snap.losers.is_empty() {
            snap.mark_undo_done();
        }
        Ok(snap)
    }

    /// The read-only store queries use (the snapshot "appears like a regular
    /// read-only database", §2.2).
    pub fn store(&self) -> SnapshotStore<'_> {
        SnapshotStore {
            inner: &self.inner,
            latches: &self.latches,
            scan: None,
        }
    }

    /// A store whose cold §5.3 step (b) reads run inside `part` — for bulk
    /// streams that discover their pages as they read them (heap chains)
    /// and therefore cannot go through [`AsOfSnapshot::prepare_pages`].
    pub fn store_partitioned<'a>(&'a self, part: &'a ScanPartition) -> SnapshotStore<'a> {
        SnapshotStore {
            inner: &self.inner,
            latches: &self.latches,
            scan: Some(part),
        }
    }

    /// Create a pin-limited scan partition over the primary's pool (budget
    /// floored at two frames so serial ring reuse can always proceed).
    pub fn scan_partition(&self, budget: usize) -> ScanPartition {
        self.inner.pool.scan_partition(budget.max(2))
    }

    fn mutator(&self) -> SnapshotMutator<'_> {
        SnapshotMutator {
            inner: &self.inner,
            latches: &self.latches,
        }
    }

    /// Run the logical-undo phase of snapshot recovery (§5.2), backing out
    /// every transaction in flight at the SplitLSN. Runs as a merged
    /// descending-LSN sweep across all losers so structure-modification
    /// ordering is honoured; each transaction's reacquired locks are
    /// released as it completes. Normally run in the background via
    /// [`AsOfSnapshot::spawn_undo`]; queries are admitted concurrently.
    pub fn run_undo(&self, resolver: &dyn Fn(ObjectId) -> Result<AccessKind>) -> Result<u64> {
        if self.undo_done.load(Ordering::Acquire) {
            return Ok(0);
        }
        let mutator = self.mutator();
        let mut heap: BinaryHeap<(Lsn, TxnId)> =
            self.losers.iter().map(|l| (l.last_lsn, l.id)).collect();
        let mut processed = 0u64;
        while let Some((lsn, txn)) = heap.pop() {
            // Zero-copy walk: CLRs are skipped after a header-only decode;
            // only records actually undone materialize a payload view.
            let rec = self.inner.log.get_record_ref(lsn)?;
            let header = rec.header()?;
            let next = if header.is_clr() {
                header.undo_next
            } else {
                let (_, view) = rec.view()?;
                undo_record_view(&mutator, &header, &view, resolver)?;
                processed += 1;
                header.prev_lsn
            };
            if next.is_valid() {
                heap.push((next, txn));
            } else {
                // transaction fully undone: release its reacquired locks
                self.locks.release_all(txn);
            }
        }
        self.mark_undo_done();
        Ok(processed)
    }

    /// Spawn [`AsOfSnapshot::run_undo`] on a background thread, opening the
    /// snapshot for queries immediately (the paper's trade-off in §6.2).
    pub fn spawn_undo(
        self: &Arc<Self>,
        resolver: Box<dyn Fn(ObjectId) -> Result<AccessKind> + Send>,
    ) -> std::thread::JoinHandle<Result<u64>> {
        let snap = self.clone();
        std::thread::spawn(move || snap.run_undo(&*resolver))
    }

    fn mark_undo_done(&self) {
        self.undo_done.store(true, Ordering::Release);
        let (lock, cv) = &self.undo_signal;
        *lock.lock() = true;
        cv.notify_all();
    }

    /// Whether background undo has finished.
    pub fn undo_complete(&self) -> bool {
        self.undo_done.load(Ordering::Acquire)
    }

    /// Block until background undo finishes.
    pub fn wait_undo_complete(&self) {
        let (lock, cv) = &self.undo_signal;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
    }

    /// Gate a row read against the reacquired locks of in-flight
    /// transactions: blocks until the row's lock is compatible with a read.
    /// Returns `true` if the caller should re-read (it may have observed
    /// pre-undo data).
    pub fn gate_row(&self, object: ObjectId, key: &[u8]) -> Result<bool> {
        if self.undo_done.load(Ordering::Acquire) {
            return Ok(false);
        }
        let lk = rewind_txn::LockKey::row(object, key);
        let tk = rewind_txn::LockKey::table(object);
        let blocked =
            self.locks.would_block(&lk, LockMode::S) || self.locks.would_block(&tk, LockMode::IS);
        if blocked {
            self.locks.wait_until_free(&lk, LockMode::S)?;
            self.locks.wait_until_free(&tk, LockMode::IS)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Gate a whole-table read (heap scans).
    pub fn gate_table(&self, object: ObjectId) -> Result<bool> {
        if self.undo_done.load(Ordering::Acquire) {
            return Ok(false);
        }
        let tk = rewind_txn::LockKey::table(object);
        if self.locks.would_block(&tk, LockMode::S) {
            self.locks.wait_until_free(&tk, LockMode::S)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Prepare `pids` concurrently on a bounded pool of `workers` threads
    /// (ROADMAP perf item (c): concurrent `PreparePageAsOf` fan-out),
    /// **scan-resistantly** (ROADMAP item (h)): the whole fan-out shares
    /// one pin-limited [`rewind_buffer::ScanPartition`], so its cold §5.3
    /// step (b) reads reuse a bounded ring of pool frames instead of
    /// marching the clock over the live working set. The budget defaults to
    /// [`AsOfSnapshot::default_scan_budget`]; use
    /// [`AsOfSnapshot::prepare_pages_budgeted`] to pick one explicitly.
    ///
    /// Distinct pages prepare fully in parallel — the §5.3 protocol already
    /// serializes only *same-page* first-preparations through the per-page
    /// gate, and the side file accepts concurrent puts of distinct pages.
    /// Pages already resident in the side file are counted as hits and cost
    /// nothing.
    ///
    /// Work is split by static interleave over chunks of the pool's I/O
    /// batch size: worker `w` prepares chunks `w, w+N, w+2N, …` (at batch
    /// size 1, pids `w, w+N, …` — the historical stride). On
    /// stall-dominated media a dynamic queue would converge to the same
    /// even split (every fetch blocks its worker for a media round-trip, so
    /// claims alternate); the static partition gives identical balance
    /// deterministically — including on machines whose core count would let
    /// one worker drain a shared queue before the others are scheduled.
    /// Owning whole chunks also lets each worker vector-read its cold
    /// primaries: one `read_pages` device op per contiguous run per chunk.
    ///
    /// Returns per-worker aggregates so callers (repairbench) can model the
    /// parallel stall time as the max over workers rather than the sum.
    pub fn prepare_pages(&self, pids: &[PageId], workers: usize) -> Result<PrefetchOutcome> {
        let budget = self.default_scan_budget(workers);
        self.prepare_pages_budgeted(pids, workers, budget)
    }

    /// The default frame budget for a bulk preparation: an eighth of the
    /// pool, but at least two frames per worker (so ring reuse never stalls
    /// the fan-out on its own transient pins) and never more than half the
    /// pool (a scan must not monopolize the cache it is guarding).
    pub fn default_scan_budget(&self, workers: usize) -> usize {
        let cap = self.inner.pool.capacity();
        (cap / 8).max(2 * workers.max(1)).clamp(1, (cap / 2).max(1))
    }

    /// [`AsOfSnapshot::prepare_pages`] with an explicit frame budget for
    /// the shared scan partition. A bulk preparation touching more pages
    /// than the primary's buffer pool holds will disturb at most `budget`
    /// frames of it.
    ///
    /// The effective budget is raised to two frames per worker (and capped
    /// at half the pool): with fewer, concurrent workers could keep every
    /// ring entry transiently pinned, forcing ring reuse to fall back to
    /// the global clock on each miss — which would quietly void the damage
    /// bound the budget exists to provide.
    pub fn prepare_pages_budgeted(
        &self,
        pids: &[PageId],
        workers: usize,
        budget: usize,
    ) -> Result<PrefetchOutcome> {
        let capped = workers.clamp(1, pids.len().max(1));
        let part = self.inner.pool.scan_partition(budget.max(2 * capped));
        self.prepare_pages_in(pids, workers, &part)
    }

    /// [`AsOfSnapshot::prepare_pages`] inside a caller-owned partition, so
    /// one bounded budget can cover a whole operation — leaf discovery,
    /// prefetch fan-out and the scan's own straggler reads share a single
    /// set of frames instead of each claiming their own.
    pub fn prepare_pages_in(
        &self,
        pids: &[PageId],
        workers: usize,
        part: &ScanPartition,
    ) -> Result<PrefetchOutcome> {
        let workers = workers.clamp(1, pids.len().max(1));
        if pids.is_empty() {
            return Ok(PrefetchOutcome::default());
        }
        let inner = &self.inner;
        // Work is split by static interleave over *chunks* of the pool's
        // I/O batch size: worker `w` prepares chunks `w, w+N, w+2N, …`. At
        // batch size 1 this is exactly the historical per-page stride; at
        // larger sizes a worker owns whole pid runs, so its step-(b) misses
        // coalesce into vectored device reads (one `read_pages` per chunk).
        let chunk = inner.pool.io_batch_pages();
        let results: Vec<Result<PrefetchWorkerStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let batch_started = inner.obs.now_us();
                        let mut stats = PrefetchWorkerStats::default();
                        for run in pids.chunks(chunk).skip(w).step_by(workers) {
                            // Vector-read this chunk's cold primaries up
                            // front: only side-file misses can reach step
                            // (b), and `stage_read_run` skips pool-resident
                            // pids (those would have been hits). Serially
                            // this stages exactly the pages the loop below
                            // would read one by one.
                            let wanted: Vec<PageId> = run
                                .iter()
                                .copied()
                                .filter(|&pid| inner.side.get(pid).is_none())
                                .collect();
                            let mut staged = inner.pool.stage_read_run(&wanted);
                            for &pid in run {
                                let pre = staged
                                    .iter()
                                    .position(|(p, _)| *p == pid)
                                    .map(|i| staged.remove(i).1);
                                let (_, prep) =
                                    inner.fetch_traced_staged_in(pid, Some(part), pre)?;
                                stats.pages += 1;
                                if let Some(p) = prep {
                                    stats.prepared += 1;
                                    stats.records_undone += p.records_undone;
                                    stats.fpi_chain_reads += p.fpi_chain_reads;
                                }
                            }
                        }
                        // One scan batch per worker: its whole stride of
                        // the bulk preparation.
                        let dur = inner.obs.now_us().saturating_sub(batch_started);
                        inner.obs.scan_batch_us(dur);
                        inner.obs.record(EventKind::ScanBatch, 0, stats.pages, dur);
                        Ok(stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(Error::Internal("prefetch worker panicked".into())),
                })
                .collect()
        });
        let mut out = PrefetchOutcome::default();
        for r in results {
            out.per_worker.push(r?);
        }
        Ok(out)
    }

    /// Deregister the COW sink (regular snapshots) — call when dropping the
    /// snapshot.
    pub fn detach(&self, parts: &EngineParts) {
        if let Some(token) = self.cow_token {
            parts.deregister_cow(token);
        }
    }

    /// Number of page versions currently held by the side file.
    pub fn side_pages(&self) -> usize {
        self.inner.side_len()
    }

    /// Page ids currently held by the side file (diagnostics: the warm set
    /// a zero-copy hit test or benchmark can replay).
    pub fn side_page_ids(&self) -> Vec<PageId> {
        self.inner.side.page_ids()
    }

    /// Per-page prepare-gate entries currently live. Bounded by the number
    /// of preparations in flight *right now* — a quiescent snapshot reports
    /// 0 no matter how many pages it has prepared (the gate-leak
    /// regression guard).
    pub fn prepare_gate_entries(&self) -> usize {
        self.inner.gate_entries()
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> SnapshotStatsView {
        self.inner.stats_view()
    }

    /// The earliest LSN this snapshot still needs (log truncation must not
    /// pass it while the snapshot is open).
    pub fn min_needed_lsn(&self) -> Lsn {
        self.creation.analysis_start
    }
}

impl SnapInner {
    fn side_len(&self) -> usize {
        self.side.len()
    }

    fn stats_view(&self) -> SnapshotStatsView {
        self.stats.snapshot()
    }
}

/// Copy-on-write sink for regular snapshots: stores the pre-image of the
/// first post-snapshot modification of each page (paper §2.2).
pub struct CowPusher {
    inner: Arc<SnapInner>,
}

impl CowSink for CowPusher {
    fn before_modify(&self, pid: PageId, current: &Page) {
        self.inner.cow_push(pid, current);
    }
}

impl SnapInner {
    fn cow_push(&self, pid: PageId, current: &Page) {
        self.side.put_if_absent(pid, current);
    }
}

fn retention_of<'a>(log: &'a rewind_wal::LogManager, t: Timestamp) -> impl Fn(Error) -> Error + 'a {
    move |e| match e {
        Error::LogTruncated(_) => Error::RetentionExceeded {
            requested: t,
            earliest: log.earliest_retained_time().unwrap_or(Timestamp::ZERO),
        },
        other => other,
    }
}
