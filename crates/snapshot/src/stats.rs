//! Instrumentation counters for snapshot behaviour.
//!
//! These counters feed the paper's evaluation directly: pages prepared and
//! log records undone drive Figs. 9–11 (query cost grows with modifications
//! to the touched pages), and side-file hits show the caching the paper
//! describes in §5.3.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated over the life of one snapshot.
#[derive(Debug, Default)]
pub struct SnapshotStats {
    /// Pages fetched from the side file (already prepared).
    pub side_hits: AtomicU64,
    /// Pages read from the primary and rewound to the SplitLSN.
    pub pages_prepared: AtomicU64,
    /// Individual log records undone by `PreparePageAsOf`.
    pub records_undone: AtomicU64,
    /// FPI-chain reads performed looking for skip targets.
    pub fpi_chain_reads: AtomicU64,
    /// Full page images restored (log regions skipped).
    pub fpi_restores: AtomicU64,
    /// Log records processed by background logical undo.
    pub undo_records: AtomicU64,
}

impl SnapshotStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> SnapshotStatsView {
        SnapshotStatsView {
            side_hits: self.side_hits.load(Ordering::Relaxed),
            pages_prepared: self.pages_prepared.load(Ordering::Relaxed),
            records_undone: self.records_undone.load(Ordering::Relaxed),
            fpi_chain_reads: self.fpi_chain_reads.load(Ordering::Relaxed),
            fpi_restores: self.fpi_restores.load(Ordering::Relaxed),
            undo_records: self.undo_records.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of [`SnapshotStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStatsView {
    /// See [`SnapshotStats::side_hits`].
    pub side_hits: u64,
    /// See [`SnapshotStats::pages_prepared`].
    pub pages_prepared: u64,
    /// See [`SnapshotStats::records_undone`].
    pub records_undone: u64,
    /// See [`SnapshotStats::fpi_chain_reads`].
    pub fpi_chain_reads: u64,
    /// See [`SnapshotStats::fpi_restores`].
    pub fpi_restores: u64,
    /// See [`SnapshotStats::undo_records`].
    pub undo_records: u64,
}

impl SnapshotStatsView {
    /// Total log reads attributable to undo work (paper Fig. 11's metric).
    pub fn undo_log_reads(&self) -> u64 {
        self.records_undone + self.fpi_chain_reads
    }
}
