//! Database snapshots: regular (copy-on-write) and **as-of** (log-rewound).
//!
//! This crate implements paper §5. An [`AsOfSnapshot`] is a read-only,
//! transactionally consistent replica of the database at an arbitrary past
//! time within the retention period:
//!
//! 1. **Creation** (§5.1): the requested wall-clock time is translated into
//!    a SplitLSN (checkpoint stamps narrow the region, commit stamps pin the
//!    record), then a checkpoint makes every page change ≤ SplitLSN durable
//!    in the primary file, so the snapshot can always read the primary file
//!    and roll *backward*.
//! 2. **Recovery** (§5.2): analysis runs from the checkpoint preceding the
//!    SplitLSN; no page reads are needed for redo — it only *reacquires the
//!    row locks* of transactions in flight at the SplitLSN. Logical undo of
//!    those transactions runs in the background (a merged descending-LSN
//!    sweep, so structure-modification ordering is honoured), writing fixed
//!    pages to the side file and releasing each transaction's locks as it
//!    completes.
//! 3. **Page access** (§5.3): side-file hit → serve; miss → read the primary
//!    file, `PreparePageAsOf(page, SplitLSN)`, cache in the side file,
//!    serve. Access methods, catalog and allocation maps all work unchanged
//!    through [`SnapshotStore`] — the snapshot looks like a regular
//!    read-only database.
//!
//! A *regular* snapshot (§2.2) is the degenerate case `as-of now`, plus a
//! registered copy-on-write sink ([`CowPusher`]) so later primary
//! modifications push pre-images instead of relying on log undo.

pub mod asof;
pub mod stats;
pub mod store;

pub use asof::{AsOfSnapshot, CowPusher, PrefetchOutcome, PrefetchWorkerStats};
pub use stats::SnapshotStats;
pub use store::{SnapshotMutator, SnapshotStore};
