//! `BENCH_*.json` emission.
//!
//! Every bench binary prints human-readable tables; alongside them it now
//! writes one machine-readable artifact — the headline numbers it gates on
//! plus a full engine [`MetricsSnapshot`] — so trajectory tooling can diff
//! runs across commits without scraping stdout.

use rewind_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// Write `BENCH_<name>.json` into the current directory and return the
/// path. `headline` entries land under `"headline"`; non-finite values are
/// clamped to 0 to keep the file valid JSON.
pub fn write_bench_json(
    name: &str,
    headline: &[(&str, f64)],
    metrics: &MetricsSnapshot,
) -> std::io::Result<String> {
    let path = format!("BENCH_{name}.json");
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{name}\",");
    let _ = write!(out, "  \"headline\": {{");
    for (i, (key, value)) in headline.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let value = if value.is_finite() { *value } else { 0.0 };
        let _ = write!(out, "{sep}\n    \"{key}\": {value}");
    }
    let _ = write!(out, "\n  }},\n  \"metrics\": ");
    // `to_json` renders a complete JSON object; embed it verbatim.
    out.push_str(metrics.to_json().trim_end());
    out.push_str("\n}\n");
    std::fs::write(&path, &out)?;
    Ok(path)
}
