//! Experiment harness regenerating the paper's evaluation (§6).
//!
//! Each `fig*`/`sec*` function reproduces one figure or experiment from the
//! paper and returns structured rows; the `figures` binary prints them as
//! tables. Media behaviour (SSD vs 10K-SAS) is *modeled*: every experiment
//! measures the I/O counts the engine actually performed (random page
//! reads, undo log I/Os, sequential bytes) and costs them through
//! [`MediaModel`]s — exactly the terms the paper's hardware exposes.
//! Measured CPU time is reported alongside.

pub mod report;

use rewind_backup::{restore_to_point_in_time, take_full_backup};
use rewind_common::{IoSnapshot, MediaModel, Timestamp};
use rewind_core::{Database, DbConfig, Result, SimClock};
use rewind_tpcc::{
    create_schema, load_initial, run_mixed, stock_level_asof, DriverConfig, TpccScale,
};
use std::sync::Arc;
use std::time::Instant;

/// Experiment sizing: `quick` keeps `cargo bench` and smoke runs fast;
/// `full` is for regenerating the published tables.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// TPC-C scale.
    pub scale: TpccScale,
    /// Driver threads.
    pub threads: usize,
    /// Committed transactions per simulated minute of workload.
    pub txns_per_minute: u64,
    /// Simulated minutes of history to generate.
    pub history_minutes: u64,
}

impl Effort {
    /// Small: seconds of runtime.
    pub fn quick() -> Effort {
        Effort {
            scale: TpccScale::default(),
            threads: 2,
            txns_per_minute: 600,
            history_minutes: 4,
        }
    }

    /// The default for regenerating tables (tens of seconds).
    pub fn full() -> Effort {
        Effort {
            scale: TpccScale {
                warehouses: 4,
                districts_per_warehouse: 10,
                customers_per_district: 60,
                items: 1000,
                initial_orders_per_district: 40,
            },
            threads: 4,
            txns_per_minute: 3000,
            history_minutes: 16,
        }
    }
}

/// Media pairs used throughout §6: the whole database (data + log) on one
/// class of device.
pub fn ssd() -> MediaModel {
    MediaModel::ssd()
}

/// See [`ssd`].
pub fn sas() -> MediaModel {
    MediaModel::sas_hdd()
}

fn build_db(fpi_interval: u32, checkpoint_bytes: u64, effort: &Effort) -> Result<Arc<Database>> {
    build_db_with_log(
        fpi_interval,
        checkpoint_bytes,
        effort,
        rewind_wal::LogConfig::default(),
    )
}

fn build_db_with_log(
    fpi_interval: u32,
    checkpoint_bytes: u64,
    effort: &Effort,
    log: rewind_wal::LogConfig,
) -> Result<Arc<Database>> {
    let db = Arc::new(Database::create_with_clock(
        DbConfig {
            buffer_pages: 4096,
            fpi_interval,
            checkpoint_interval_bytes: checkpoint_bytes,
            log,
            ..DbConfig::default()
        },
        SimClock::new(),
    )?);
    create_schema(&db)?;
    load_initial(&db, &effort.scale)?;
    Ok(db)
}

fn driver_cfg(effort: &Effort, minutes: u64) -> DriverConfig {
    let total = effort.txns_per_minute * minutes;
    DriverConfig {
        threads: effort.threads,
        txns_per_thread: total / effort.threads as u64,
        // spread the simulated minutes across the committed transactions
        us_per_txn: minutes * 60_000_000 / total.max(1),
        seed: 7,
        rollback_pct: 1,
    }
}

// ---- Figures 5 & 6: logging overhead vs FPI interval N ------------------------

/// One row of Figs. 5/6.
#[derive(Clone, Copy, Debug)]
pub struct LoggingOverheadRow {
    /// FPI interval N (0 = additional logging disabled).
    pub fpi_interval: u32,
    /// Measured throughput, transactions per real second.
    pub tps_real: f64,
    /// tpmC against the simulated clock.
    pub tpm_c: f64,
    /// Total log bytes produced.
    pub log_bytes: u64,
    /// Log bytes relative to N=0.
    pub space_ratio: f64,
}

/// Figs. 5/6: run the identical workload at several FPI intervals and
/// report throughput and log-space usage. `checkpoints` toggles the paper's
/// two settings (no checkpoints vs a 30 s-style recovery interval).
pub fn fig5_fig6(effort: &Effort, checkpoints: bool) -> Result<Vec<LoggingOverheadRow>> {
    let intervals = [0u32, 256, 64, 16, 4];
    let mut rows = Vec::new();
    let mut baseline_bytes = 0u64;
    for &n in &intervals {
        let ck = if checkpoints { 4 << 20 } else { 0 };
        let db = build_db(n, ck, effort)?;
        let log0 = db.log().io_stats().snapshot().log_bytes_written;
        let cfg = driver_cfg(effort, effort.history_minutes.min(4));
        let t0 = Instant::now();
        let stats = run_mixed(&db, &effort.scale, &cfg)?;
        let real = t0.elapsed().as_secs_f64();
        db.parts().pool.flush_all()?;
        db.log().flush_to(db.log().tail_lsn());
        let log_bytes = db.log().io_stats().snapshot().log_bytes_written - log0;
        if n == 0 {
            baseline_bytes = log_bytes;
        }
        rows.push(LoggingOverheadRow {
            fpi_interval: n,
            tps_real: stats.committed() as f64 / real,
            tpm_c: stats.tpm_c(),
            log_bytes,
            space_ratio: log_bytes as f64 / baseline_bytes.max(1) as f64,
        });
    }
    Ok(rows)
}

// ---- Figures 7-11: as-of query vs restore, by rewind distance -----------------

/// One row of Figs. 7-11 (one rewind distance).
#[derive(Clone, Copy, Debug)]
pub struct AsofVsRestoreRow {
    /// How far back the query targets, in simulated minutes.
    pub minutes_back: u64,
    /// Snapshot creation: modeled µs on SSD / SAS, and measured µs.
    pub create_us_ssd: u64,
    /// See above.
    pub create_us_sas: u64,
    /// Measured (CPU) creation time.
    pub create_us_real: u64,
    /// As-of StockLevel query: modeled µs on SSD / SAS, measured µs.
    pub query_us_ssd: u64,
    /// See above.
    pub query_us_sas: u64,
    /// Measured (CPU) query time.
    pub query_us_real: u64,
    /// Full restore + replay to the same point: modeled µs.
    pub restore_us_ssd: u64,
    /// See above.
    pub restore_us_sas: u64,
    /// Undo log I/Os performed by the query (Fig. 11's estimate).
    pub undo_log_ios: u64,
    /// Pages prepared for the query.
    pub pages_prepared: u64,
    /// Log records undone for the query.
    pub records_undone: u64,
}

/// Shared state for the Figs. 7-11 sweep.
pub struct AsofExperiment {
    /// The database after `history_minutes` of workload.
    pub db: Arc<Database>,
    /// Full backup taken before the workload (the restore baseline's input).
    pub backup: rewind_backup::FullBackup,
    /// Time at the start of the workload.
    pub start: Timestamp,
    /// Time at the end of the workload.
    pub end: Timestamp,
}

/// Build the history: load, back up, then run `history_minutes` of
/// workload with periodic checkpoints.
pub fn prepare_asof_experiment(effort: &Effort, fpi_interval: u32) -> Result<AsofExperiment> {
    let db = build_db(fpi_interval, 4 << 20, effort)?;
    let backup = take_full_backup(&db)?;
    let start = db.clock().now();
    for _ in 0..effort.history_minutes {
        let cfg = driver_cfg(effort, 1);
        run_mixed(&db, &effort.scale, &cfg)?;
        db.checkpoint()?;
    }
    let end = db.clock().now();
    Ok(AsofExperiment {
        db,
        backup,
        start,
        end,
    })
}

/// Run the Figs. 7-11 sweep over rewind distances.
pub fn fig7_to_fig11(exp: &AsofExperiment, distances_min: &[u64]) -> Result<Vec<AsofVsRestoreRow>> {
    let mut rows = Vec::new();
    for (i, &mins) in distances_min.iter().enumerate() {
        let target = exp.end.minus_micros(mins * 60_000_000);
        if target < exp.start {
            continue;
        }
        let name = format!("fig7_{i}");

        // --- as-of snapshot creation ---
        let log0 = exp.db.log_io();
        let data0 = exp.db.data_io();
        let t0 = Instant::now();
        let snap = exp.db.create_snapshot_asof(&name, target)?;
        snap.wait_undo_complete();
        let create_real = t0.elapsed().as_micros() as u64;
        let create_log = exp.db.log_io().delta(log0);
        let create_data = exp.db.data_io().delta(data0);

        // --- the as-of query (paper: stock level on a fixed district) ---
        let log1 = exp.db.log_io();
        let data1 = exp.db.data_io();
        let stats1 = snap.stats();
        let t1 = Instant::now();
        let low = stock_level_asof(&snap, 1, 1, 15)?;
        let query_real = t1.elapsed().as_micros() as u64;
        let query_log = exp.db.log_io().delta(log1);
        let query_data = exp.db.data_io().delta(data1);
        let stats2 = snap.stats();
        let _ = low;

        // --- the restore baseline to the same point ---
        let (_restored, report) = restore_to_point_in_time(
            &exp.backup,
            exp.db.log(),
            target,
            DbConfig::default(),
            SimClock::starting_at(exp.end),
        )?;

        let undo_log_ios = query_log.log_read_ios;
        rows.push(AsofVsRestoreRow {
            minutes_back: mins,
            create_us_ssd: combined(create_data, create_log, &ssd()),
            create_us_sas: combined(create_data, create_log, &sas()),
            create_us_real: create_real,
            query_us_ssd: combined(query_data, query_log, &ssd()),
            query_us_sas: combined(query_data, query_log, &sas()),
            query_us_real: query_real,
            restore_us_ssd: report.modeled_micros(&ssd(), &ssd()),
            restore_us_sas: report.modeled_micros(&sas(), &sas()),
            undo_log_ios,
            pages_prepared: stats2.pages_prepared - stats1.pages_prepared,
            records_undone: stats2.records_undone - stats1.records_undone,
        });
        exp.db.drop_snapshot(&name)?;
    }
    Ok(rows)
}

fn combined(data: IoSnapshot, log: IoSnapshot, media: &MediaModel) -> u64 {
    data.modeled_micros(media, media) + log.modeled_micros(media, media)
}

// ---- §6.3: concurrent as-of queries --------------------------------------------

/// Results of the §6.3 experiment.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentRow {
    /// tpmC with no snapshot activity.
    pub tpm_baseline: f64,
    /// tpmC while as-of snapshots + queries loop concurrently.
    pub tpm_with_asof: f64,
    /// As-of snapshot creations performed.
    pub snapshots_created: u64,
    /// Mean creation time (measured µs).
    pub avg_create_us: u64,
    /// Mean as-of StockLevel time (measured µs).
    pub avg_query_us: u64,
}

/// §6.3: run the TPC-C mix, then run it again with a concurrent thread
/// repeatedly creating a 5-minutes-back snapshot and querying it.
pub fn sec63_concurrent(effort: &Effort) -> Result<ConcurrentRow> {
    // Baseline run.
    let exp = prepare_asof_experiment(effort, 16)?;
    let base_cfg = driver_cfg(effort, 2);
    let base = run_mixed(&exp.db, &effort.scale, &base_cfg)?;

    // Concurrent run: workload + as-of loop.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let db2 = exp.db.clone();
    let stop2 = stop.clone();
    let asof_thread = std::thread::spawn(move || -> Result<(u64, u64, u64)> {
        let mut created = 0u64;
        let mut create_us = 0u64;
        let mut query_us = 0u64;
        let mut i = 0;
        while !stop2.load(std::sync::atomic::Ordering::Acquire) {
            let t = db2.clock().now().minus_micros(5 * 60_000_000);
            let name = format!("conc_{i}");
            i += 1;
            let t0 = Instant::now();
            let snap = match db2.create_snapshot_asof(&name, t) {
                Ok(s) => s,
                Err(rewind_core::Error::RetentionExceeded { .. }) => continue,
                Err(e) => return Err(e),
            };
            create_us += t0.elapsed().as_micros() as u64;
            let t1 = Instant::now();
            let _ = stock_level_asof(&snap, 1, 1, 15)?;
            query_us += t1.elapsed().as_micros() as u64;
            snap.wait_undo_complete();
            db2.drop_snapshot(&name)?;
            created += 1;
        }
        Ok((created, create_us, query_us))
    });

    let conc = run_mixed(&exp.db, &effort.scale, &base_cfg)?;
    stop.store(true, std::sync::atomic::Ordering::Release);
    let (created, create_us, query_us) = asof_thread.join().expect("asof thread panicked")?;

    Ok(ConcurrentRow {
        tpm_baseline: base.new_orders as f64 / (base.real_elapsed_us as f64 / 60e6),
        tpm_with_asof: conc.new_orders as f64 / (conc.real_elapsed_us as f64 / 60e6),
        snapshots_created: created,
        avg_create_us: create_us.checked_div(created).unwrap_or(0),
        avg_query_us: query_us.checked_div(created).unwrap_or(0),
    })
}

// ---- §6.4: crossover between as-of query and restore ----------------------------

/// One row of the §6.4 crossover table.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverRow {
    /// Districts the as-of query touches (scales pages accessed).
    pub districts_queried: u64,
    /// Pages prepared by the as-of path.
    pub pages_prepared: u64,
    /// Modeled as-of total (create + query) on SAS, µs.
    pub asof_us_sas: u64,
    /// Modeled restore total on SAS, µs.
    pub restore_us_sas: u64,
    /// What the §6.4 picker chooses.
    pub choice: rewind_backup::PathChoice,
}

/// §6.4: sweep the amount of data accessed until restore wins.
pub fn sec64_crossover(exp: &AsofExperiment, sweep: &[u64]) -> Result<Vec<CrossoverRow>> {
    let mut rows = Vec::new();
    let target = exp.end.minus_micros(60_000_000).max(exp.start);
    for (i, &districts) in sweep.iter().enumerate() {
        let name = format!("xover_{i}");
        let log0 = exp.db.log_io();
        let data0 = exp.db.data_io();
        let snap = exp.db.create_snapshot_asof(&name, target)?;
        let s0 = snap.stats();
        // touch `districts` districts across warehouses
        let mut d = 0u64;
        'outer: for w in 1.. {
            for dd in 1..=10u64 {
                if d >= districts {
                    break 'outer;
                }
                let _ = stock_level_asof(&snap, (w - 1) % 4 + 1, dd, 15);
                d += 1;
            }
        }
        let s1 = snap.stats();
        let log1 = exp.db.log_io().delta(log0);
        let data1 = exp.db.data_io().delta(data0);
        let asof_us = combined(data1, log1, &sas());
        let (_restored, report) = restore_to_point_in_time(
            &exp.backup,
            exp.db.log(),
            target,
            DbConfig::default(),
            SimClock::starting_at(exp.end),
        )?;
        let restore_us = report.modeled_micros(&sas(), &sas());
        let est = rewind_backup::PathEstimate {
            pages_accessed: s1.pages_prepared - s0.pages_prepared,
            undo_records_per_page: ((s1.records_undone - s0.records_undone)
                / (s1.pages_prepared - s0.pages_prepared).max(1))
            .max(1),
            log_miss_ratio: 1.0,
            db_bytes: exp.backup.bytes,
            replay_bytes: report.replay_bytes,
            analysis_bytes: 0,
        };
        rows.push(CrossoverRow {
            districts_queried: districts,
            pages_prepared: s1.pages_prepared - s0.pages_prepared,
            asof_us_sas: asof_us,
            restore_us_sas: restore_us,
            choice: rewind_backup::choose_access_path(&est, &sas(), &sas()),
        });
        exp.db.drop_snapshot(&name)?;
    }
    Ok(rows)
}

// ---- ablations -------------------------------------------------------------------

/// FPI-skip ablation row: same rewind, with and without full page images.
#[derive(Clone, Copy, Debug)]
pub struct FpiAblationRow {
    /// FPI interval N.
    pub fpi_interval: u32,
    /// Records undone by the query's page preparations.
    pub records_undone: u64,
    /// Undo log I/Os.
    pub undo_log_ios: u64,
    /// Measured query µs.
    pub query_us_real: u64,
}

/// Ablation: §6.1's skip optimization on vs off, for a deep rewind.
pub fn ablation_fpi(effort: &Effort) -> Result<Vec<FpiAblationRow>> {
    let mut rows = Vec::new();
    for n in [0u32, 16] {
        let exp = prepare_asof_experiment(effort, n)?;
        let target = exp.start.plus_micros(30_000_000); // deep: near the beginning
        let snap = exp.db.create_snapshot_asof("fpi_ab", target)?;
        let log0 = exp.db.log_io();
        let s0 = snap.stats();
        let t0 = Instant::now();
        let _ = stock_level_asof(&snap, 1, 1, 15)?;
        let query_us_real = t0.elapsed().as_micros() as u64;
        let s1 = snap.stats();
        rows.push(FpiAblationRow {
            fpi_interval: n,
            records_undone: s1.records_undone - s0.records_undone,
            undo_log_ios: exp.db.log_io().delta(log0).log_read_ios,
            query_us_real,
        });
        exp.db.drop_snapshot("fpi_ab")?;
    }
    Ok(rows)
}

/// COW-snapshot ablation row (§7.1's comparison).
#[derive(Clone, Copy, Debug)]
pub struct CowAblationRow {
    /// Whether a regular COW snapshot was open during the run.
    pub cow_snapshot_open: bool,
    /// Committed transactions per real second.
    pub tps_real: f64,
    /// Side-file bytes produced by copy-on-write.
    pub cow_bytes: u64,
    /// Log bytes produced.
    pub log_bytes: u64,
}

/// Log-cache ablation row: the same deep as-of query with different log
/// read-cache sizes.
#[derive(Clone, Copy, Debug)]
pub struct CacheAblationRow {
    /// Log cache capacity in 64 KiB blocks.
    pub cache_blocks: usize,
    /// Undo log I/Os (cache misses) for the query.
    pub undo_log_ios: u64,
    /// Log cache hits for the query.
    pub cache_hits: u64,
    /// Modeled query time on SAS (stalls dominate).
    pub query_us_sas: u64,
}

/// Ablation: §6.2's point that "storing transaction log on low latency media
/// is important ... the system has stalls on transaction log reads" — here
/// expressed as log-cache capacity vs undo stalls for the same deep query.
pub fn ablation_log_cache(effort: &Effort) -> Result<Vec<CacheAblationRow>> {
    let mut rows = Vec::new();
    for blocks in [2usize, 16, 256] {
        let log_cfg = rewind_wal::LogConfig {
            cache_blocks: blocks,
            hot_tail_bytes: 128 * 1024,
            ..rewind_wal::LogConfig::default()
        };
        let db = build_db_with_log(16, 4 << 20, effort, log_cfg)?;
        let start = db.clock().now();
        // Single-threaded, fixed seed: the three runs produce identical
        // logs, so the undo-I/O counts are directly comparable.
        let cfg = DriverConfig {
            threads: 1,
            txns_per_thread: effort.txns_per_minute.min(1500),
            us_per_txn: 60_000_000 / effort.txns_per_minute.min(1500),
            seed: 99,
            rollback_pct: 1,
        };
        for _ in 0..effort.history_minutes.min(6) {
            run_mixed(&db, &effort.scale, &cfg)?;
            db.checkpoint()?;
        }
        let target = start.plus_micros(30_000_000);
        let snap = db.create_snapshot_asof("cache_ab", target)?;
        snap.wait_undo_complete();
        let log0 = db.log_io();
        let data0 = db.data_io();
        let _ = stock_level_asof(&snap, 1, 1, 15)?;
        let dlog = db.log_io().delta(log0);
        let ddata = db.data_io().delta(data0);
        rows.push(CacheAblationRow {
            cache_blocks: blocks,
            undo_log_ios: dlog.log_read_ios,
            cache_hits: dlog.log_cache_hits,
            query_us_sas: combined(ddata, dlog, &sas()),
        });
        db.drop_snapshot("cache_ab")?;
    }
    Ok(rows)
}

/// Ablation: overhead of a live copy-on-write snapshot vs the log-only
/// scheme (related work §7.1: "the overhead introduced by additional
/// logging is significantly less than copy-on-write snapshots").
pub fn ablation_cow(effort: &Effort) -> Result<Vec<CowAblationRow>> {
    let mut rows = Vec::new();
    for cow in [false, true] {
        let db = build_db(16, 4 << 20, effort)?;
        let snap = if cow {
            Some(db.create_snapshot("cow_ab")?)
        } else {
            None
        };
        let log0 = db.log().io_stats().snapshot().log_bytes_written;
        let cfg = driver_cfg(effort, 2);
        let t0 = Instant::now();
        let stats = run_mixed(&db, &effort.scale, &cfg)?;
        let real = t0.elapsed().as_secs_f64();
        rows.push(CowAblationRow {
            cow_snapshot_open: cow,
            tps_real: stats.committed() as f64 / real,
            cow_bytes: snap
                .as_ref()
                .map(|s| s.side_pages() as u64 * 8192)
                .unwrap_or(0),
            log_bytes: db.log().io_stats().snapshot().log_bytes_written - log0,
        });
        if cow {
            db.drop_snapshot("cow_ab")?;
        }
    }
    Ok(rows)
}
