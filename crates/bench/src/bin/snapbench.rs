//! Microbenchmark for the sharded, as-of-aware buffer path: concurrent
//! as-of page preparation and live resident reads, new sharded structures
//! vs. the pre-PR single-mutex structures.
//!
//! The **baseline** reconstructs, inside this benchmark, the exact page
//! path that existed before the pool was sharded:
//!
//! * a buffer pool whose page table is one global `Mutex<HashMap>`, held
//!   across the *entire* miss path (victim search, dirty write-back, file
//!   read) — the seed `BufferPool::fetch_pin`;
//! * an as-of read protocol with a single global `RwLock` side map and a
//!   global (leaking) `Mutex<HashMap>` of per-page prepare gates — the
//!   seed `SnapInner::fetch`, with step (b) routed through that pool.
//!
//! The **new** path is the production code: pid-sharded pool (shared-mode
//! shard probe + atomic pin on hits, no lock held across miss I/O),
//! pid-sharded side file and a sharded leak-free gate table.
//!
//! Reported per thread count, for both paths:
//!
//! * **as-of cold** — every thread prepares a disjoint slice of the
//!   primary's pages through the full §5.3 protocol (gate, primary read,
//!   `PreparePageAsOf`, side-file install). This is the tracked number:
//!   the acceptance target is ≥ 2x at 4 threads.
//! * **as-of warm** — all threads re-read every page (side-file hits),
//!   with **clones-per-hit** measured by a counting global allocator
//!   (page-sized allocations during the warm phase / hits served). The
//!   seed path cloned 8 KiB per hit (clones/hit = 1.0); the `Arc`-image
//!   side file serves hits borrowed (clones/hit = 0).
//! * **live hits** — random resident-page reads through the pool.
//!
//! The shard-lock contention counter (`PoolStatsView::map_contended`) is
//! printed for the new path.
//!
//! ```text
//! cargo run -p rewind-bench --release --bin snapbench [-- --quick]
//! ```
//!
//! Wall-clock speedup assertions are flaky on shared/loaded runners, so a
//! miss of the 2x target is reported as WARN (exit 0) by default and the
//! ratio is always printed as a metric. Set `SNAPBENCH_ENFORCE=1` to turn
//! the target into a hard gate (exit 1 on < 2x with ≥ 4 cores) — intended
//! for dedicated perf machines, not the shared CI pool. The
//! **clones-per-hit gate is always hard**: it counts allocator events, not
//! wall clock, so it is deterministic on any runner — the new path must
//! perform exactly 0 page-sized allocations across every warm phase.

use rewind_access::store::Store;
use rewind_common::testalloc::{large_allocations, CountingAllocator};
use rewind_common::{Lsn, PageId};
use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use rewind_pagestore::{FileManager, Page};
use rewind_recovery::prepare_page_as_of;
use rewind_wal::LogManager;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
// tidy: allow(std-sync) -- the deliberately-naive MutexPool baseline under measurement uses std locks
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::thread;
use std::time::Instant;

// Every 8 KiB page clone is one large allocation. The clones-per-hit
// metric divides the warm-phase delta by the hits served; the gate demands
// exactly 0 for the production path. Same counting implementation as the
// proof in tests/zero_copy_asof.rs — the gate and the test cannot drift.
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Baseline: the pre-shard buffer pool (one global Mutex<HashMap>, held
// across the whole miss path) — a faithful in-bench replica of the seed
// implementation, reduced to the read-only surface this benchmark needs.
// ---------------------------------------------------------------------------

struct MutexFrameState {
    pid: PageId,
    page: Page,
}

struct MutexFrame {
    state: RwLock<MutexFrameState>,
    pins: AtomicU32,
    used: AtomicBool,
}

struct MutexPool {
    frames: Vec<MutexFrame>,
    map: Mutex<HashMap<u64, usize>>,
    hand: AtomicUsize,
    fm: Arc<dyn FileManager>,
}

impl MutexPool {
    fn new(fm: Arc<dyn FileManager>, capacity: usize) -> MutexPool {
        MutexPool {
            frames: (0..capacity)
                .map(|_| MutexFrame {
                    state: RwLock::new(MutexFrameState {
                        pid: PageId::INVALID,
                        page: Page::zeroed(),
                    }),
                    pins: AtomicU32::new(0),
                    used: AtomicBool::new(false),
                })
                .collect(),
            map: Mutex::new(HashMap::new()),
            hand: AtomicUsize::new(0),
            fm,
        }
    }

    fn fetch_pin(&self, pid: PageId) -> usize {
        let mut map = self.map.lock().unwrap();
        if let Some(&idx) = map.get(&pid.0) {
            self.frames[idx].pins.fetch_add(1, Ordering::AcqRel);
            self.frames[idx].used.store(true, Ordering::Relaxed);
            return idx;
        }
        // Miss: victim search and file read run under the global map lock,
        // exactly as the seed pool did.
        let n = self.frames.len();
        let idx = loop {
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % n;
            let f = &self.frames[i];
            if f.pins.load(Ordering::Acquire) != 0 {
                continue;
            }
            if f.used.swap(false, Ordering::Relaxed) {
                continue;
            }
            break i;
        };
        {
            let mut st = self.frames[idx].state.write().unwrap();
            if st.pid.is_valid() {
                map.remove(&st.pid.0);
            }
            st.page = self.fm.read_page(pid).expect("read");
            st.pid = pid;
        }
        map.insert(pid.0, idx);
        self.frames[idx].pins.fetch_add(1, Ordering::AcqRel);
        self.frames[idx].used.store(true, Ordering::Relaxed);
        idx
    }

    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        let idx = self.fetch_pin(pid);
        let st = self.frames[idx].state.read().unwrap();
        let r = f(&st.page);
        drop(st);
        self.frames[idx].pins.fetch_sub(1, Ordering::AcqRel);
        r
    }
}

/// Baseline as-of reader: seed `SnapInner::fetch` — one global `RwLock`
/// side map (the pre-shard `SideFile`), one global (never-cleaned) gate
/// map, primary reads through the single-mutex pool. The side map must NOT
/// be the production sharded `SideFile`: warm reads and cold installs would
/// then already benefit from this PR's sharding and flatter the baseline.
struct BaselineSnap {
    pool: MutexPool,
    log: Arc<LogManager>,
    split: Lsn,
    side: RwLock<HashMap<u64, Page>>,
    preparing: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
}

impl BaselineSnap {
    /// Seed `fetch` returned the side page by value: a side hit pays the
    /// map lookup *and* the page clone, like the production path does.
    fn side_hit(&self, pid: PageId) -> bool {
        match self.side.read().unwrap().get(&pid.0) {
            Some(p) => {
                std::hint::black_box(p.clone());
                true
            }
            None => false,
        }
    }

    fn fetch(&self, pid: PageId) {
        if self.side_hit(pid) {
            return;
        }
        let gate = {
            let mut map = self.preparing.lock().unwrap();
            map.entry(pid.0).or_default().clone()
        };
        let _g = gate.lock().unwrap();
        if self.side_hit(pid) {
            return;
        }
        let mut page = self.pool.with_page(pid, |p| p.clone());
        prepare_page_as_of(&self.log, &mut page, pid, self.split).expect("prepare");
        self.side.write().unwrap().insert(pid.0, page);
    }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

struct Workload {
    db: Database,
    /// Every valid page of the primary file at snapshot time.
    pids: Vec<PageId>,
    split: Lsn,
    t0: rewind_common::Timestamp,
}

fn build_workload(rows: u64) -> Workload {
    let db = Database::create(DbConfig {
        buffer_pages: 4096,
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let pad = "x".repeat(80);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(512) {
        db.with_txn(|txn| {
            for &i in chunk {
                db.insert(txn, "t", &[Value::U64(i), Value::Str(format!("e0-{pad}"))])?;
            }
            Ok(())
        })
        .unwrap();
    }
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(10);
    // Light post-split updates: every as-of preparation has real undo work
    // (a few records per page), but the protocol itself — gate, primary
    // page read, side-file install — dominates the per-page cost, which is
    // exactly the part this PR parallelizes.
    db.with_txn(|txn| {
        for i in (0..rows).step_by(32) {
            db.update(txn, "t", &[Value::U64(i), Value::Str(format!("e1-{pad}"))])?;
        }
        Ok(())
    })
    .unwrap();
    // Resolve the split once (also runs the §5.1 creation checkpoint so the
    // baseline's direct file reads below see every pre-split change).
    let probe = db.create_snapshot_asof("snapbench-probe", t0).unwrap();
    probe.wait_undo_complete();
    let split = probe.split_lsn();
    let pages = db.parts().pool.file_manager().page_count();
    db.drop_snapshot("snapbench-probe").unwrap();
    Workload {
        db,
        pids: (1..pages).map(PageId).collect(),
        split,
        t0,
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Run `threads` workers over disjoint slices of `pids` (worker `w` takes
/// `w, w+N, …`), then have every worker touch *all* pids once more (warm).
/// Returns (cold pages/s, warm pages/s, page-sized allocations during the
/// warm phase — the clone count behind clones-per-hit).
fn bench_asof(threads: usize, pids: &[PageId], fetch: impl Fn(PageId) + Sync) -> (f64, f64, u64) {
    let barrier = Barrier::new(threads + 1);
    thread::scope(|scope| {
        for w in 0..threads {
            let barrier = &barrier;
            let fetch = &fetch;
            scope.spawn(move || {
                barrier.wait(); // cold armed
                for &pid in pids.iter().skip(w).step_by(threads) {
                    fetch(pid);
                }
                barrier.wait(); // cold done
                barrier.wait(); // warm armed
                for &pid in pids {
                    fetch(pid);
                }
                barrier.wait(); // warm done
            });
        }
        // The clock starts *before* the releasing wait, so the measured span
        // covers the whole work phase however threads get scheduled.
        let start = Instant::now();
        barrier.wait();
        barrier.wait();
        let cold = pids.len() as f64 / start.elapsed().as_secs_f64();
        // Workers only touch pages between the warm barriers, so the
        // allocator delta across them is attributable to warm hits alone.
        let allocs0 = large_allocations();
        let start = Instant::now();
        barrier.wait();
        barrier.wait();
        let warm = (pids.len() * threads) as f64 / start.elapsed().as_secs_f64();
        let warm_allocs = large_allocations() - allocs0;
        (cold, warm, warm_allocs)
    })
}

/// Random resident reads: every worker performs `reads` page accesses over
/// `pids` (all resident). Returns pages/s.
fn bench_live(threads: usize, pids: &[PageId], reads: u64, read: impl Fn(PageId) + Sync) -> f64 {
    let barrier = Barrier::new(threads + 1);
    thread::scope(|scope| {
        for w in 0..threads {
            let barrier = &barrier;
            let read = &read;
            scope.spawn(move || {
                barrier.wait();
                let mut x = 0x9E3779B9u64.wrapping_add(w as u64);
                for _ in 0..reads {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    read(pids[(x >> 33) as usize % pids.len()]);
                }
                barrier.wait();
            });
        }
        let start = Instant::now();
        barrier.wait();
        barrier.wait();
        (threads as u64 * reads) as f64 / start.elapsed().as_secs_f64()
    })
}

/// Warm-phase hit count: every one of `threads` workers re-reads all pids.
fn pids_warm_hits(pids: &[PageId], threads: usize) -> u64 {
    (pids.len() * threads) as u64
}

// ---------------------------------------------------------------------------
// Batched-I/O gate: cold as-of scan, scalar vs vectored backend
// ---------------------------------------------------------------------------

/// Per-page classification and device-op counts of one cold serial as-of
/// scan (see [`cold_scan_counts`]).
struct ColdScan {
    hits: u64,
    misses: u64,
    page_reads: u64,
    vectored_ops: u64,
    pages: u64,
    pool_frames: usize,
    secs: f64,
}

/// Build a table larger than the buffer pool, snapshot it, drop the cache,
/// and run one *serial* cold as-of preparation over every page. Everything
/// counted is deterministic: one worker, no losers (so no background undo
/// pre-populates the side file), every page exactly one miss.
fn cold_scan_counts(rows: u64, io_batch: usize, workers: usize) -> ColdScan {
    let db = Database::create(DbConfig {
        buffer_pages: 64,
        checkpoint_interval_bytes: 0,
        io_batch_pages: io_batch,
        writeback_workers: workers,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| db.create_table(txn, "t", schema()))
        .unwrap();
    let pad = "x".repeat(80);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(512) {
        db.with_txn(|txn| {
            for &i in chunk {
                db.insert(txn, "t", &[Value::U64(i), Value::Str(format!("g0-{pad}"))])?;
            }
            Ok(())
        })
        .unwrap();
    }
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(10);
    let snap = db.create_snapshot_asof("io-gate", t0).unwrap();
    snap.wait_undo_complete();
    let pages = db.parts().pool.file_manager().page_count();
    let pids: Vec<PageId> = (1..pages).map(PageId).collect();
    db.parts().pool.drop_cache();

    let io0 = db.data_io();
    let s0 = db.pool_stats();
    let start = Instant::now();
    snap.raw().prepare_pages(&pids, 1).unwrap();
    let secs = start.elapsed().as_secs_f64();
    let io = db.data_io().delta(io0);
    let s1 = db.pool_stats();
    ColdScan {
        hits: s1.hits - s0.hits,
        misses: s1.misses - s0.misses,
        page_reads: io.page_reads,
        vectored_ops: io.vectored_read_ops,
        pages: pids.len() as u64,
        pool_frames: db.parts().pool.capacity(),
        secs,
    }
}

/// The deterministic batched-I/O gate: the vectored backend must classify
/// the cold scan bit-identically to the scalar backend (same hits, misses
/// and per-page reads) while issuing exactly `ceil(pages / batch)` vectored
/// device ops. Returns the vectored-op count for the bench JSON; exits the
/// process on any mismatch — counts, not wall clock, so this gate is hard
/// on every runner (the elapsed ratio is printed as information only).
fn batched_io_gate(rows: u64) -> u64 {
    const BATCH: u64 = 16; // DbConfig::default().io_batch_pages
    let scalar = cold_scan_counts(rows, 1, 0);
    let batched = cold_scan_counts(rows, BATCH as usize, 2);
    println!("\n# batched I/O backend: cold serial as-of scan, scalar vs vectored");
    println!(
        "{} pages over a {}-frame pool: scalar {} reads / {} vec ops, \
         batched {} reads / {} vec ops ({:.2}x elapsed)",
        batched.pages,
        batched.pool_frames,
        scalar.page_reads,
        scalar.vectored_ops,
        batched.page_reads,
        batched.vectored_ops,
        scalar.secs / batched.secs.max(f64::EPSILON),
    );
    assert!(
        batched.pages > batched.pool_frames as u64,
        "gate table must exceed the buffer pool ({} pages <= {} frames)",
        batched.pages,
        batched.pool_frames
    );
    let expect_ops = batched.pages.div_ceil(BATCH);
    let classification_ok = batched.hits == scalar.hits
        && batched.misses == scalar.misses
        && batched.page_reads == scalar.page_reads
        && batched.misses == batched.pages;
    if !classification_ok || scalar.vectored_ops != 0 || batched.vectored_ops != expect_ops {
        println!(
            "FAIL: batched backend drifted — hits {}/{}, misses {}/{} (pages {}), \
             reads {}/{}, vec ops {} (expected {}) / {} (expected 0)",
            batched.hits,
            scalar.hits,
            batched.misses,
            scalar.misses,
            batched.pages,
            batched.page_reads,
            scalar.page_reads,
            batched.vectored_ops,
            expect_ops,
            scalar.vectored_ops,
        );
        std::process::exit(1);
    }
    println!(
        "PASS: {} vectored ops for {} pages (= ceil(pages/{BATCH})), classification \
         bit-identical to scalar ({} misses, {} hits, {} reads)",
        batched.vectored_ops, batched.pages, batched.misses, batched.hits, batched.page_reads
    );
    batched.vectored_ops
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rows, live_reads) = if quick {
        (6_000u64, 40_000u64)
    } else {
        (24_000, 200_000)
    };

    println!("# sharded as-of/live buffer path vs pre-shard single-mutex baseline");
    let w = build_workload(rows);
    println!(
        "primary: {} pages, split at {}, {} rows\n",
        w.pids.len(),
        w.split,
        rows
    );
    let fm = w.db.parts().pool.file_manager().clone();
    let log = w.db.log().clone();

    println!(
        "{:>8} | {:>13} | {:>13} | {:>8} | {:>13} | {:>13} | {:>7} | {:>7}",
        "threads",
        "base cold p/s",
        "new cold p/s",
        "speedup",
        "base warm p/s",
        "new warm p/s",
        "b cl/hit",
        "n cl/hit"
    );
    println!("{}", "-".repeat(104));
    let mut ratio_at_4 = 0.0;
    let mut new_warm_clones_total = 0u64;
    let mut new_warm_hits_total = 0u64;
    for threads in [1usize, 2, 4, 8] {
        // Baseline: fresh pre-shard structures per run (cold side file).
        let base = BaselineSnap {
            pool: MutexPool::new(fm.clone(), 4096),
            log: log.clone(),
            split: w.split,
            side: RwLock::new(HashMap::new()),
            preparing: Mutex::new(HashMap::new()),
        };
        let (base_cold, base_warm, base_clones) =
            bench_asof(threads, &w.pids, |pid| base.fetch(pid));

        // New path: a fresh real snapshot per run (cold side file), reads
        // through the sharded pool / gates / side file. Both pools start
        // cold: every primary read below is a miss, so the comparison is
        // miss-path-under-global-mutex vs. the lock-free-miss claim
        // protocol — the pre-/post-PR difference this PR is about.
        w.db.parts().pool.drop_cache();
        let snap =
            w.db.create_snapshot_asof(&format!("snapbench-{threads}"), w.t0)
                .unwrap();
        snap.wait_undo_complete();
        let store = snap.raw().store();
        let (new_cold, new_warm, new_clones) = bench_asof(threads, &w.pids, |pid| {
            store.with_page(pid, |_| Ok(())).unwrap();
        });
        assert_eq!(
            snap.prepare_gate_entries(),
            0,
            "gate table must be empty when quiescent"
        );
        w.db.drop_snapshot(&format!("snapbench-{threads}")).unwrap();

        let ratio = new_cold / base_cold;
        if threads == 4 {
            ratio_at_4 = ratio;
        }
        let warm_hits = (pids_warm_hits(&w.pids, threads)) as f64;
        new_warm_clones_total += new_clones;
        new_warm_hits_total += warm_hits as u64;
        println!(
            "{threads:>8} | {base_cold:>13.0} | {new_cold:>13.0} | {ratio:>7.2}x | {base_warm:>13.0} | {new_warm:>13.0} | {:>8.2} | {:>8.2}",
            base_clones as f64 / warm_hits,
            new_clones as f64 / warm_hits,
        );
    }

    // Live resident reads: sharded pool vs the single-mutex replica.
    println!(
        "\n{:>8} | {:>14} | {:>14} | {:>8}",
        "threads", "mutex live p/s", "shard live p/s", "speedup"
    );
    println!("{}", "-".repeat(56));
    let pool = w.db.parts().pool.clone();
    let resident: Vec<PageId> = w.pids.iter().copied().take(1024).collect();
    let mpool = MutexPool::new(fm.clone(), 4096);
    for &pid in &resident {
        pool.with_page(pid, |_| Ok(())).unwrap();
        mpool.with_page(pid, |_| ());
    }
    let contended0 = w.db.pool_stats().map_contended;
    for threads in [1usize, 2, 4, 8] {
        let base = bench_live(threads, &resident, live_reads, |pid| {
            mpool.with_page(pid, |_| ());
        });
        let new = bench_live(threads, &resident, live_reads, |pid| {
            pool.with_page(pid, |_| Ok(())).unwrap();
        });
        println!(
            "{threads:>8} | {base:>14.0} | {new:>14.0} | {:>7.2}x",
            new / base
        );
    }
    println!(
        "\nshard-lock contention during live phase: {} contended acquisitions",
        w.db.pool_stats().map_contended - contended0
    );

    // Deterministic batched-I/O gate (hard on every runner — counts, not
    // wall clock): vectored device-op arithmetic and scalar-identical
    // classification for a cold serial as-of scan over a >pool-size table.
    let vectored_ops = batched_io_gate(rows / 2);

    match rewind_bench::report::write_bench_json(
        "snapbench",
        &[
            ("cold_speedup_4t", ratio_at_4),
            (
                "warm_clones_per_hit",
                new_warm_clones_total as f64 / new_warm_hits_total.max(1) as f64,
            ),
            ("vectored_ops", vectored_ops as f64),
        ],
        &w.db.metrics(),
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => println!("WARN: could not write bench json: {e}"),
    }

    println!();
    // Deterministic gate (allocator counts, not wall clock): warm side-file
    // hits on the production path must clone zero pages, at every thread
    // count. The seed path's 1.0 clones/hit is printed alongside as the
    // baseline metric.
    if new_warm_clones_total != 0 {
        println!(
            "FAIL: {new_warm_clones_total} page clones over {new_warm_hits_total} warm \
             side-file hits (must be 0 — warm hits are Arc-shared images)"
        );
        std::process::exit(1);
    }
    println!("PASS: 0 page clones over {new_warm_hits_total} warm side-file hits (clones/hit = 0)");

    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if ratio_at_4 >= 2.0 {
        println!(
            "PASS: 4-thread cold as-of scan is {ratio_at_4:.2}x the single-mutex baseline (>= 2x)"
        );
    } else if cores < 4 {
        println!(
            "WARN: 4-thread speedup {ratio_at_4:.2}x below the 2x target, but only {cores} \
             core(s) are available — gate needs real parallelism"
        );
    } else if std::env::var("SNAPBENCH_ENFORCE").as_deref() == Ok("1") {
        println!(
            "FAIL: 4-thread cold as-of scan is {ratio_at_4:.2}x the single-mutex baseline (< 2x, \
             SNAPBENCH_ENFORCE=1)"
        );
        std::process::exit(1);
    } else {
        // Wall-clock ratios are noisy on shared runners: report, don't gate.
        println!(
            "WARN: 4-thread cold as-of scan is {ratio_at_4:.2}x the single-mutex baseline \
             (target >= 2x); not enforcing — set SNAPBENCH_ENFORCE=1 to hard-fail"
        );
    }
}
