//! Parallel-restart benchmark: partitioned-redo scaling plus the
//! bit-identical accounting gate.
//!
//! The same deterministic workload is built fresh per run (recovery
//! mutates its artifacts, so one crash image cannot be restarted twice),
//! crashed at the same log position, and restarted with 1/2/4/16 redo
//! workers. Two kinds of result:
//!
//! * **Hard gate** — restart accounting (records scanned / redone /
//!   undone, loser count) and an FNV digest of the complete post-restart
//!   backing file must be identical at every worker count. Partitioned
//!   redo is a pure performance feature; any divergence is a correctness
//!   bug and fails the run.
//! * **WARN only** — redo wall time should drop from 1 worker to 4. CI
//!   boxes with few cores or noisy neighbours make wall time unreliable,
//!   so a missing speedup only warns.
//!
//! ```text
//! cargo run --release -p rewind-bench --bin recoverybench [-- --quick]
//! ```

use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use std::time::Instant;

struct RunOutcome {
    workers: usize,
    wall_ms: f64,
    redo_ms: f64,
    scanned: u64,
    redone: u64,
    undone: u64,
    losers: u64,
    digest: u64,
    metrics: rewind_obs::MetricsSnapshot,
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

/// FNV-1a over every page of the backing file (presence included), so two
/// runs match only if their post-restart files are byte-identical.
fn image_digest(db: &Database) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut upd = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for page in db.mem_file().expect("mem backend").clone_contents() {
        match page {
            Some(img) => img.iter().for_each(|&b| upd(b)),
            None => upd(0xFF),
        }
    }
    h
}

/// Build the deterministic workload, crash, restart with `workers` redo
/// threads, and capture accounting + digest.
fn run(rows: u64, workers: usize) -> RunOutcome {
    let db = Database::create(DbConfig {
        // A pool big enough to hold every dirty page: nothing is flushed
        // before the crash, so redo must replay the whole workload.
        buffer_pages: 8192,
        // No background checkpoint daemon: its checkpoints would land at
        // nondeterministic log positions and break cross-run comparison.
        checkpoint_interval_bytes: 0,
        redo_workers: workers,
        ..DbConfig::default()
    })
    .unwrap();
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let filler = "r".repeat(400);
    let chunk = 1_000u64;
    let mut next = 0u64;
    while next < rows {
        let hi = (next + chunk).min(rows);
        db.with_txn(|txn| {
            for i in next..hi {
                // Multiplicative permutation: inserts land at random leaf
                // positions, so redo's applies do real slot work instead
                // of appending at the rightmost leaf.
                let id = i.wrapping_mul(0x9E37_79B9) % rows;
                db.insert(txn, "t", &[Value::U64(id), Value::str(&filler)])?;
            }
            Ok(())
        })
        .unwrap();
        next = hi;
    }
    // A sparse update pass puts multi-record chains on many pages.
    db.with_txn(|txn| {
        for i in (0..rows).step_by(5) {
            db.update(txn, "t", &[Value::U64(i), Value::Str(format!("u{i}"))])?;
        }
        Ok(())
    })
    .unwrap();
    // One loser so the undo phase has work to account for.
    let loser = db.begin();
    for i in 0..500u64 {
        db.insert(
            &loser,
            "t",
            &[Value::U64(10_000_000 + i), Value::str("doomed")],
        )
        .unwrap();
    }
    db.log().flush_to(db.log().tail_lsn());
    std::mem::forget(loser);

    let t0 = Instant::now();
    let db = Database::recover(db.simulate_crash()).unwrap();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = db.last_recovery().expect("recover() leaves a report");
    assert_eq!(report.redo_workers, workers as u64);
    RunOutcome {
        workers,
        wall_ms,
        redo_ms: report.redo_us as f64 / 1e3,
        scanned: report.records_scanned,
        redone: report.records_redone,
        undone: report.records_undone,
        losers: report.losers,
        digest: image_digest(&db),
        metrics: db.metrics(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Powers of two so the bench's multiplicative permutation of insert
    // order is a bijection (odd multiplier mod 2^k is invertible).
    let rows: u64 = if quick { 16_384 } else { 65_536 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("building + restarting: {rows} rows per run, workers 1/2/4/16, {cores} core(s)…");

    let outcomes: Vec<RunOutcome> = [1usize, 2, 4, 16].iter().map(|&w| run(rows, w)).collect();

    println!("== partitioned restart scaling (fresh engine per run) ==");
    for o in &outcomes {
        println!(
            "workers={:>2}: redo {:>8.1} ms, restart wall {:>8.1} ms, \
             {} scanned, {} redone, {} undone, digest {:016x}",
            o.workers, o.redo_ms, o.wall_ms, o.scanned, o.redone, o.undone, o.digest
        );
    }

    // Hard gate: accounting and the backing file are bit-identical at
    // every worker count.
    let base = &outcomes[0];
    let mut identical = true;
    for o in &outcomes[1..] {
        if (o.scanned, o.redone, o.undone, o.losers, o.digest)
            != (
                base.scanned,
                base.redone,
                base.undone,
                base.losers,
                base.digest,
            )
        {
            identical = false;
            println!(
                "FAIL: workers={} diverged from workers=1 \
                 (scanned {} vs {}, redone {} vs {}, undone {} vs {}, digest {:016x} vs {:016x})",
                o.workers,
                o.scanned,
                base.scanned,
                o.redone,
                base.redone,
                o.undone,
                base.undone,
                o.digest,
                base.digest
            );
        }
    }
    let redo_work = base.redone > 0;
    if !redo_work {
        println!("FAIL: the workload produced no redo work — the bench measured nothing");
    }

    // WARN only: wall-clock should improve 1 → 4 workers.
    let redo_1 = outcomes[0].redo_ms;
    let redo_4 = outcomes[2].redo_ms;
    let speedup = redo_1 / redo_4.max(1e-6);
    if speedup < 1.0 {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "WARN: no redo speedup at 4 workers ({redo_1:.1} ms -> {redo_4:.1} ms) \
             on {cores} core(s); wall time is machine-dependent, not gated"
        );
    } else {
        println!("redo speedup 1 -> 4 workers: {speedup:.2}x");
    }

    let pass = identical && redo_work;
    println!(
        "\nacceptance: counts+digest identical across 1/2/4/16 workers: {identical}, \
         redo work present: {redo_work} — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    match rewind_bench::report::write_bench_json(
        "recoverybench",
        &[
            ("redo_ms_1w", redo_1),
            ("redo_ms_4w", redo_4),
            ("redo_speedup_4w", speedup),
            ("records_redone", base.redone as f64),
            ("counts_identical", if identical { 1.0 } else { 0.0 }),
        ],
        &outcomes[0].metrics,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => println!("WARN: could not write bench json: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
