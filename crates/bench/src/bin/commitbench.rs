//! Microbenchmark for the group-commit write path: concurrent committers
//! through `Database::commit` against a log with a modeled device sync
//! latency.
//!
//! Two measured properties:
//!
//! * **Flush coalescing** — N committer threads enqueue their commit LSNs
//!   on the flush coalescer; one leader performs a single sequential flush
//!   covering the batch. Reported as *flushes per commit*; the acceptance
//!   bar (and the CI gate) is < 1.0 at 4 threads, proof the coalescer
//!   engages.
//! * **Exact flush accounting** — `flush_to(lsn)` is record-boundary
//!   precise, so `log_bytes_written` grows by exactly the framed bytes a
//!   committer requested, never other transactions' unflushed tail. Checked
//!   both serially (two interleaved committers each charged only their own
//!   frames) and in aggregate at 4 threads (bytes charged == bytes logged).
//!
//! ```text
//! cargo run -p rewind-bench --release --bin commitbench [-- --quick]
//! ```

use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Modeled per-flush sync latency: a fast SSD write barrier.
const FLUSH_DELAY_US: u64 = 150;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn make_db() -> Database {
    Database::create(DbConfig {
        checkpoint_interval_bytes: 0, // isolate the commit path
        log: LogConfig {
            flush_delay_us: FLUSH_DELAY_US,
            ..LogConfig::default()
        },
        ..DbConfig::default()
    })
    .expect("create db")
}

struct RunStats {
    commits: u64,
    flushes: u64,
    bytes_written: u64,
    bytes_logged: u64,
    secs: f64,
    /// Commit-latency histogram samples recorded during the run (count
    /// exactness: must equal `commits`).
    commit_samples: u64,
    /// Full engine metrics at the end of the run.
    metrics: rewind_obs::MetricsSnapshot,
}

/// `threads` committers, each committing `per_thread` single-row inserts.
fn run(threads: u64, per_thread: u64) -> RunStats {
    let db = Arc::new(make_db());
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    let s0 = db.log_io();
    let logged0 = db.log().total_bytes();
    let samples0 = db.obs().commit_latency().count;
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    let id = t * 1_000_000 + i;
                    db.with_txn(|txn| {
                        db.insert(txn, "t", &[Value::U64(id), Value::str("commitbench")])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let s1 = db.log_io();
    RunStats {
        commits: threads * per_thread,
        flushes: s1.log_flushes - s0.log_flushes,
        bytes_written: s1.log_bytes_written - s0.log_bytes_written,
        bytes_logged: db.log().total_bytes() - logged0,
        secs,
        commit_samples: db.obs().commit_latency().count - samples0,
        metrics: db.metrics(),
    }
}

fn insert_rec(txn: u64, n: usize) -> LogRecord {
    LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId(txn),
        prev_lsn: Lsn::NULL,
        page: PageId(1),
        prev_page_lsn: Lsn::NULL,
        object: ObjectId(1),
        undo_next: Lsn::NULL,
        flags: 0,
        payload: LogPayload::InsertRecord {
            slot: 0,
            bytes: vec![0x5A; n],
        },
    }
}

/// Serial regression for the over-charge bug: two interleaved committers
/// are each charged exactly their own frames.
fn serial_attribution_exact() -> bool {
    let log = LogManager::new(LogConfig::default());
    let a = log.append(&insert_rec(1, 100));
    let b = log.append(&insert_rec(2, 300));
    let frame_a = log.get_record_ref(a).unwrap().frame_len();
    let frame_b = log.get_record_ref(b).unwrap().frame_len();
    let s0 = log.io_stats().snapshot();
    log.flush_to(a);
    let charged_a = log.io_stats().snapshot().log_bytes_written - s0.log_bytes_written;
    log.flush_to(b);
    let charged_b = log.io_stats().snapshot().log_bytes_written - s0.log_bytes_written - charged_a;
    println!(
        "serial interleave: committer A charged {charged_a}B (own frame {frame_a}B), \
         committer B charged {charged_b}B (own frame {frame_b}B)"
    );
    charged_a == frame_a && charged_b == frame_b
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_thread: u64 = if quick { 100 } else { 300 };

    println!("# commit path microbenchmark: group commit");
    println!(
        "# single-row insert+commit per transaction, modeled flush latency {FLUSH_DELAY_US} us\n"
    );

    println!(
        "{:>8} | {:>10} | {:>12} | {:>16} | {:>14}",
        "threads", "commits/s", "flushes", "flushes/commit", "bytes/commit"
    );
    println!("{}", "-".repeat(72));

    let mut fpc_at_4 = f64::MAX;
    let mut aggregate_exact = true;
    let mut samples_exact = true;
    let mut commits_per_s_at_4 = 0.0;
    let mut metrics_at_4 = None;
    for threads in [1u64, 2, 4, 8] {
        let r = run(threads, per_thread);
        let fpc = r.flushes as f64 / r.commits as f64;
        if threads == 4 {
            fpc_at_4 = fpc;
            commits_per_s_at_4 = r.commits as f64 / r.secs;
            metrics_at_4 = Some(r.metrics.clone());
        }
        // Count exactness: exactly one commit-latency sample per durable
        // commit, at every thread count. Deterministic — counter events,
        // not wall clock.
        if r.commit_samples != r.commits {
            samples_exact = false;
            println!(
                "!! {} commit-latency samples for {} commits at {} threads",
                r.commit_samples, r.commits, threads
            );
        }
        // Every byte the committers logged is charged exactly once: the last
        // commit record is the last record in the log, so its flush covers
        // the whole stream — charged == logged, no double counting, no
        // bystander bytes.
        if r.bytes_written != r.bytes_logged {
            aggregate_exact = false;
            println!(
                "!! charged {}B but logged {}B at {} threads",
                r.bytes_written, r.bytes_logged, threads
            );
        }
        println!(
            "{threads:>8} | {:>10.0} | {:>12} | {:>16.3} | {:>14.1}",
            r.commits as f64 / r.secs,
            r.flushes,
            fpc,
            r.bytes_written as f64 / r.commits as f64
        );
    }
    println!();

    let serial_exact = serial_attribution_exact();
    println!();

    let mut failed = false;
    if fpc_at_4 < 1.0 {
        println!(
            "PASS: {fpc_at_4:.3} flushes per commit at 4 committer threads (< 1.0 — the \
             coalescer engages)"
        );
    } else {
        println!("FAIL: {fpc_at_4:.3} flushes per commit at 4 committer threads (>= 1.0)");
        failed = true;
    }
    if serial_exact && aggregate_exact {
        println!(
            "PASS: log_bytes_written attribution is exact (per-request frames serially, \
             charged == logged in aggregate)"
        );
    } else {
        println!("FAIL: log_bytes_written attribution is inexact");
        failed = true;
    }
    if samples_exact {
        println!("PASS: one commit-latency sample per durable commit at every thread count");
    } else {
        println!("FAIL: commit-latency histogram count diverges from the commit count");
        failed = true;
    }
    if let Some(metrics) = &metrics_at_4 {
        let p95 = metrics
            .hist("commit_latency_us")
            .map(|h| h.p95())
            .unwrap_or(0);
        match rewind_bench::report::write_bench_json(
            "commitbench",
            &[
                ("flushes_per_commit_4t", fpc_at_4),
                ("commits_per_s_4t", commits_per_s_at_4),
                ("commit_p95_us_4t", p95 as f64),
            ],
            metrics,
        ) {
            Ok(path) => println!("wrote {path}"),
            Err(e) => println!("WARN: could not write bench json: {e}"),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
