//! Microbenchmark for the lock-free log read path: concurrent backward
//! chain walks (`PreparePageAsOf`'s access pattern) against the log.
//!
//! Three configurations over the *same* log contents:
//!
//! * **mutex baseline** — every read takes one global mutex and fully
//!   decodes the record to an owned `LogRecord`, reproducing the seed
//!   implementation's `Mutex<LogInner>` + `Vec<u8>`-per-record read path;
//! * **ref walk** — `get_record_ref` + header decode, the snapshot-isolated
//!   path `prepare_page_as_of`/rollback actually execute in production;
//! * **header walk** — `get_record_header`, the borrow-in-place fast path.
//!
//! Reports per-thread-count throughput, the production ref-walk speedup at
//! 4 threads (the acceptance bar is ≥ 2×), and allocations per record on
//! both lock-free walks (the acceptance bar is 0), measured by a counting
//! global allocator.
//!
//! ```text
//! cargo run -p rewind-bench --release --bin logbench [-- --quick]
//! ```

use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
// tidy: allow(std-sync) -- the seed-era mutex read path is the baseline under measurement
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Instant;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus relaxed atomic counting — every
// GlobalAlloc contract obligation is discharged by the system allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr`/`layout` come from `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's arguments unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Build a log with `pages` interleaved per-page chains, `mods` records
/// each — the shape `PreparePageAsOf` walks. Returns the chain heads
/// (each page's most recent LSN).
fn build_log(pages: u64, mods: u64) -> (Arc<LogManager>, Vec<Lsn>) {
    // Cache sized to the walked working set: the benchmark measures the
    // read path in the warm (hits-dominated) regime, not eviction churn.
    let config = LogConfig {
        cache_blocks: 4096,
        ..LogConfig::default()
    };
    let log = Arc::new(LogManager::new(config));
    let mut heads = vec![Lsn::NULL; pages as usize];
    let row = vec![0x5Au8; 48];
    for round in 0..mods {
        for p in 0..pages {
            let rec = LogRecord {
                lsn: Lsn::NULL,
                txn: TxnId(round + 1),
                prev_lsn: Lsn::NULL,
                page: PageId(p + 1),
                prev_page_lsn: heads[p as usize],
                object: ObjectId(1),
                undo_next: Lsn::NULL,
                flags: 0,
                payload: LogPayload::UpdateRecord {
                    slot: 0,
                    old: row.clone(),
                    new: row.clone(),
                },
            };
            heads[p as usize] = log.append(&rec);
        }
    }
    // Filler past the chains so the active segment rolls and every chain
    // record is sealed: the measured walks run entirely on the lock-free
    // snapshot path.
    let filler = vec![0u8; 4096];
    for i in 0..512u64 {
        log.append(&LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: PageId(pages + 2 + i),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: filler.clone(),
            },
        });
    }
    log.flush_to(log.tail_lsn());
    (log, heads)
}

/// Walk every page chain to its root through `get_record_ref` — the path
/// production chain walks take; returns records visited.
fn walk_ref(log: &LogManager, heads: &[Lsn]) -> u64 {
    let mut n = 0u64;
    for &head in heads {
        let mut cur = head;
        while cur.is_valid() {
            let rec = log.get_record_ref(cur).expect("read");
            let header = rec.header().expect("header");
            cur = header.prev_page_lsn;
            n += 1;
        }
    }
    n
}

/// Walk every page chain to its root through the header-only fast path.
fn walk_header(log: &LogManager, heads: &[Lsn]) -> u64 {
    let mut n = 0u64;
    for &head in heads {
        let mut cur = head;
        while cur.is_valid() {
            let header = log.get_record_header(cur).expect("read");
            cur = header.prev_page_lsn;
            n += 1;
        }
    }
    n
}

/// The seed read path: one global mutex around a full owned decode.
fn walk_mutex(log: &Mutex<Arc<LogManager>>, heads: &[Lsn]) -> u64 {
    let mut n = 0u64;
    for &head in heads {
        let mut cur = head;
        while cur.is_valid() {
            let guard = log.lock().unwrap();
            let rec = guard.get_record(cur).expect("read");
            drop(guard);
            cur = rec.prev_page_lsn;
            n += 1;
        }
    }
    n
}

/// Run `threads` workers, each walking its share of the chains `reps`
/// times; returns records/second.
fn bench<F>(threads: usize, heads: &[Lsn], reps: u64, work: F) -> f64
where
    F: Fn(&[Lsn]) -> u64 + Send + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let total = AtomicU64::new(0);
    let chunk = heads.len().div_ceil(threads);
    thread::scope(|scope| {
        for slice in heads.chunks(chunk) {
            scope.spawn(|| {
                barrier.wait();
                let mut n = 0u64;
                for _ in 0..reps {
                    n += work(slice);
                }
                total.fetch_add(n, Ordering::Relaxed);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        let elapsed = start.elapsed();
        total.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (pages, mods, reps) = if quick {
        (32u64, 400u64, 4u64)
    } else {
        (64, 1500, 8)
    };

    println!("# log read path microbenchmark");
    println!("# {pages} pages x {mods} chained records, walked backward to the root\n");

    let (log, heads) = build_log(pages, mods);
    println!(
        "log: {:.1} MiB in {} records",
        log.total_bytes() as f64 / (1 << 20) as f64,
        pages * mods
    );

    // Allocation count per record on both warm lock-free walks.
    let warm = walk_ref(&log, &heads);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let walked = walk_ref(&log, &heads);
    let ref_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(warm, walked);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    walk_header(&log, &heads);
    let header_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    println!(
        "allocations per record, warm: ref walk {:.4} ({ref_allocs}/{walked}), header walk {:.4} ({header_allocs}/{walked})",
        ref_allocs as f64 / walked as f64,
        header_allocs as f64 / walked as f64
    );
    let allocs = ref_allocs + header_allocs;

    let mutexed = Mutex::new(log.clone());
    println!(
        "\n{:>8} | {:>14} | {:>14} | {:>8} | {:>14} | {:>8}",
        "threads", "mutex rec/s", "ref rec/s", "speedup", "header rec/s", "speedup"
    );
    println!("{}", "-".repeat(80));
    let mut ratio_at_4 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let base = bench(threads, &heads, reps, |slice| walk_mutex(&mutexed, slice));
        let refs = bench(threads, &heads, reps, |slice| walk_ref(&log, slice));
        let hdrs = bench(threads, &heads, reps, |slice| walk_header(&log, slice));
        let ref_ratio = refs / base;
        let hdr_ratio = hdrs / base;
        if threads == 4 {
            ratio_at_4 = ref_ratio;
        }
        println!(
            "{threads:>8} | {base:>14.0} | {refs:>14.0} | {ref_ratio:>7.2}x | {hdrs:>14.0} | {hdr_ratio:>7.2}x"
        );
    }

    println!();
    if ratio_at_4 >= 2.0 {
        println!(
            "PASS: 4-thread get_record_ref chain walk is {ratio_at_4:.2}x the mutex baseline (>= 2x)"
        );
    } else {
        println!("WARN: 4-thread speedup {ratio_at_4:.2}x below the 2x target on this machine");
    }
    if allocs == 0 {
        println!("PASS: lock-free chain walks perform zero allocations per record");
    } else {
        println!("WARN: lock-free chain walks allocated {allocs} times");
    }
}
