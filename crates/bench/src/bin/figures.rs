//! Regenerate every table and figure from the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p rewind-bench --release --bin figures -- --all
//! cargo run -p rewind-bench --release --bin figures -- --fig7 --quick
//! ```
//!
//! Flags: `--fig5 --fig6 --fig7 --fig8 --fig9 --fig10 --fig11 --sec63
//! --sec64 --ablations --all --quick`.

use rewind_bench::*;

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = has("--all") || args.iter().all(|a| a == "--quick");
    let effort = if has("--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };

    println!("# rewind — paper figure regeneration");
    println!(
        "# effort: {} warehouses, {} tx/min, {} min history, {} threads\n",
        effort.scale.warehouses, effort.txns_per_minute, effort.history_minutes, effort.threads
    );

    if all || has("--fig5") || has("--fig6") {
        run_fig5_fig6(&effort);
    }

    let need_sweep = all
        || [
            "--fig7", "--fig8", "--fig9", "--fig10", "--fig11", "--sec64",
        ]
        .iter()
        .any(|f| has(f));
    if need_sweep {
        run_fig7_to_11(&effort, all || has("--sec64"));
    }

    if all || has("--sec63") {
        run_sec63(&effort);
    }

    if all || has("--ablations") {
        run_ablations(&effort);
    }
}

fn run_fig5_fig6(effort: &Effort) {
    for (label, checkpoints) in [
        ("no checkpoints", false),
        ("30s-style checkpoint interval", true),
    ] {
        println!("## Figures 5 & 6 — logging overhead vs FPI interval N ({label})");
        println!(
            "{:>6} | {:>12} | {:>10} | {:>12} | {:>11}",
            "N", "tps (real)", "tpmC (sim)", "log MiB", "space ratio"
        );
        println!("{}", "-".repeat(64));
        match fig5_fig6(effort, checkpoints) {
            Ok(rows) => {
                for r in rows {
                    println!(
                        "{:>6} | {:>12.0} | {:>10.0} | {:>12.1} | {:>10.2}x",
                        if r.fpi_interval == 0 {
                            "off".to_string()
                        } else {
                            r.fpi_interval.to_string()
                        },
                        r.tps_real,
                        r.tpm_c,
                        r.log_bytes as f64 / (1 << 20) as f64,
                        r.space_ratio
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }
}

fn run_fig7_to_11(effort: &Effort, with_crossover: bool) {
    println!("## Figures 7-11 — as-of query vs full restore, by rewind distance");
    let exp = match prepare_asof_experiment(effort, 16) {
        Ok(e) => e,
        Err(e) => {
            println!("error preparing experiment: {e}");
            return;
        }
    };
    let max = effort.history_minutes;
    let distances: Vec<u64> = [1u64, 2, 4, 8, 12, 16, 24, 32]
        .iter()
        .copied()
        .filter(|&m| m < max)
        .collect();
    match fig7_to_fig11(&exp, &distances) {
        Ok(rows) => {
            println!("\n### Fig. 7 (SSD) / Fig. 8 (SAS): end-to-end seconds (log scale in paper)");
            println!(
                "{:>8} | {:>14} | {:>14} | {:>14} | {:>14}",
                "min back", "asof SSD (s)", "restore SSD(s)", "asof SAS (s)", "restore SAS(s)"
            );
            println!("{}", "-".repeat(78));
            for r in &rows {
                println!(
                    "{:>8} | {:>14.3} | {:>14.1} | {:>14.3} | {:>14.1}",
                    r.minutes_back,
                    secs(r.create_us_ssd + r.query_us_ssd),
                    secs(r.restore_us_ssd),
                    secs(r.create_us_sas + r.query_us_sas),
                    secs(r.restore_us_sas),
                );
            }

            println!("\n### Fig. 9 (SSD) / Fig. 10 (SAS): snapshot creation vs query seconds");
            println!(
                "{:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {:>10}",
                "min back", "create SSD", "query SSD", "create SAS", "query SAS", "real ms"
            );
            println!("{}", "-".repeat(82));
            for r in &rows {
                println!(
                    "{:>8} | {:>12.3} | {:>12.3} | {:>12.3} | {:>12.3} | {:>10.1}",
                    r.minutes_back,
                    secs(r.create_us_ssd),
                    secs(r.query_us_ssd),
                    secs(r.create_us_sas),
                    secs(r.query_us_sas),
                    (r.create_us_real + r.query_us_real) as f64 / 1e3,
                );
            }

            println!("\n### Fig. 11: estimated undo log I/Os per as-of query");
            println!(
                "{:>8} | {:>12} | {:>14} | {:>14}",
                "min back", "undo IOs", "pages prepared", "records undone"
            );
            println!("{}", "-".repeat(56));
            for r in &rows {
                println!(
                    "{:>8} | {:>12} | {:>14} | {:>14}",
                    r.minutes_back, r.undo_log_ios, r.pages_prepared, r.records_undone
                );
            }
            println!();
        }
        Err(e) => println!("error: {e}"),
    }

    if with_crossover {
        println!("## §6.4 — backup/as-of crossover (SAS media)");
        println!(
            "{:>10} | {:>14} | {:>12} | {:>14} | {:>8}",
            "districts", "pages touched", "asof (s)", "restore (s)", "pick"
        );
        println!("{}", "-".repeat(70));
        match sec64_crossover(&exp, &[1, 4, 16, 40, 80]) {
            Ok(rows) => {
                for r in rows {
                    println!(
                        "{:>10} | {:>14} | {:>12.3} | {:>14.1} | {:>8}",
                        r.districts_queried,
                        r.pages_prepared,
                        secs(r.asof_us_sas),
                        secs(r.restore_us_sas),
                        match r.choice {
                            rewind_backup::PathChoice::AsOfQuery => "as-of",
                            rewind_backup::PathChoice::RestoreRollForward => "restore",
                        }
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }
}

fn run_sec63(effort: &Effort) {
    println!("## §6.3 — concurrent as-of queries during the TPC-C run");
    match sec63_concurrent(effort) {
        Ok(r) => {
            println!("baseline tpmC (real clock) : {:>12.0}", r.tpm_baseline);
            println!("tpmC with as-of loop       : {:>12.0}", r.tpm_with_asof);
            println!(
                "throughput retained        : {:>11.0}%",
                100.0 * r.tpm_with_asof / r.tpm_baseline.max(1e-9)
            );
            println!("snapshots created          : {:>12}", r.snapshots_created);
            println!(
                "avg snapshot creation      : {:>9.1} ms",
                r.avg_create_us as f64 / 1e3
            );
            println!(
                "avg as-of stock level      : {:>9.1} ms",
                r.avg_query_us as f64 / 1e3
            );
        }
        Err(e) => println!("error: {e}"),
    }
    println!();
}

fn run_ablations(effort: &Effort) {
    println!("## Ablation — §6.1 FPI skip on/off (deep rewind)");
    match ablation_fpi(effort) {
        Ok(rows) => {
            println!(
                "{:>6} | {:>14} | {:>10} | {:>10}",
                "N", "records undone", "undo IOs", "query ms"
            );
            println!("{}", "-".repeat(50));
            for r in rows {
                println!(
                    "{:>6} | {:>14} | {:>10} | {:>10.1}",
                    if r.fpi_interval == 0 {
                        "off".to_string()
                    } else {
                        r.fpi_interval.to_string()
                    },
                    r.records_undone,
                    r.undo_log_ios,
                    r.query_us_real as f64 / 1e3
                );
            }
        }
        Err(e) => println!("error: {e}"),
    }

    println!("\n## Ablation — log cache size vs undo stalls (same deep query)");
    match ablation_log_cache(effort) {
        Ok(rows) => {
            println!(
                "{:>12} | {:>10} | {:>10} | {:>12}",
                "cache blocks", "undo IOs", "hits", "query SAS(s)"
            );
            println!("{}", "-".repeat(54));
            for r in rows {
                println!(
                    "{:>12} | {:>10} | {:>10} | {:>12.3}",
                    r.cache_blocks,
                    r.undo_log_ios,
                    r.cache_hits,
                    r.query_us_sas as f64 / 1e6
                );
            }
        }
        Err(e) => println!("error: {e}"),
    }

    println!("\n## Ablation — §7.1 copy-on-write snapshot overhead vs log-only");
    match ablation_cow(effort) {
        Ok(rows) => {
            println!(
                "{:>12} | {:>12} | {:>12} | {:>12}",
                "COW open", "tps (real)", "COW MiB", "log MiB"
            );
            println!("{}", "-".repeat(56));
            for r in rows {
                println!(
                    "{:>12} | {:>12.0} | {:>12.1} | {:>12.1}",
                    r.cow_snapshot_open,
                    r.tps_real,
                    r.cow_bytes as f64 / (1 << 20) as f64,
                    r.log_bytes as f64 / (1 << 20) as f64
                );
            }
        }
        Err(e) => println!("error: {e}"),
    }
    println!();
}
