//! Benchmark for the flashback engine: logical-diff throughput and the
//! concurrent `PreparePageAsOf` fan-out (ROADMAP perf item (c)).
//!
//! A wide table (≥ 64 leaf pages) is damaged by one big batch
//! transaction; the repair's witness snapshot must then prepare every one
//! of those leaves as of the pre-batch split. The bench measures that
//! prepare phase serially and with 2/4 fan-out workers over identical
//! fresh snapshots, reporting measured wall time and **modeled device
//! time** (the repo's standard metric): random log reads dominate prepare
//! cost on real media, a serial walk pays them end to end, and the fan-out
//! pays only the busiest worker's share — so the modeled parallel time is
//! `max(per-worker stalls)`, not the sum.
//!
//! ```text
//! cargo run --release -p rewind-bench --bin repairbench [-- --quick]
//! ```

use rewind_common::{MediaModel, Timestamp};
use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use rewind_repair::{flashback, harvest_log, ConflictPolicy, RepairConfig, RepairTarget};
use std::collections::BTreeSet;
use std::time::Instant;

struct Setup {
    db: Database,
    bad_txn: rewind_common::TxnId,
    rows: u64,
}

fn build(rows: u64) -> Setup {
    let db = Database::create(DbConfig::default()).unwrap();
    let filler = "x".repeat(256);
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "wide",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::Str),
                ],
                &["id"],
            )?,
        )?;
        Ok(())
    })
    .unwrap();
    // Load in chunks so no single transaction dominates the log.
    let chunk = 500u64;
    let mut next = 0u64;
    while next < rows {
        let hi = (next + chunk).min(rows);
        db.with_txn(|txn| {
            for i in next..hi {
                db.insert(txn, "wide", &[Value::U64(i), Value::str(&filler)])?;
            }
            Ok(())
        })
        .unwrap();
        next = hi;
    }
    db.clock().advance_secs(600);
    db.checkpoint().unwrap();

    // The erroneous batch: one transaction rewrites every row.
    let bad = "BAD".repeat(85) + "!";
    let bad_txn = {
        let txn = db.begin();
        for i in 0..rows {
            db.update(&txn, "wide", &[Value::U64(i), Value::str(&bad)])
                .unwrap();
        }
        let id = txn.id();
        db.commit(txn).unwrap();
        id
    };
    db.clock().advance_secs(600);

    // Later work the repair must preserve (kept on a disjoint table).
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "after",
            Schema::new(vec![Column::new("id", DataType::U64)], &["id"])?,
        )?;
        for i in 0..200u64 {
            db.insert(txn, "after", &[Value::U64(i)])?;
        }
        Ok(())
    })
    .unwrap();
    Setup { db, bad_txn, rows }
}

/// One prepare-phase measurement: mount a fresh witness at the repair
/// split, fan the leaf preparation out over `workers` threads.
fn measure_prepare(setup: &Setup, workers: usize) -> (f64, u64, u64, u64, usize) {
    let harvest = harvest_log(
        setup.db.log(),
        &RepairTarget::Txns(BTreeSet::from([setup.bad_txn])),
    )
    .unwrap();
    let name = format!("bench-witness-{workers}");
    let witness = setup
        .db
        .create_snapshot_at_lsn(&name, Timestamp::from_secs(0), harvest.split_lsn)
        .unwrap();
    let info = witness.table("wide").unwrap();
    let store = witness.raw().store();
    let leaves = info.tree().unwrap().unread_leaf_pages(&store).unwrap();
    let t0 = Instant::now();
    let outcome = witness.raw().prepare_pages(&leaves, workers).unwrap();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let prepared = outcome.prepared();
    let total_reads = outcome.log_reads();
    let max_worker_reads = outcome.max_worker_log_reads();
    let leaf_count = leaves.len();
    setup.db.drop_snapshot(&name).unwrap();
    (wall_ms, prepared, total_reads, max_worker_reads, leaf_count)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = if quick { 3_000 } else { 12_000 };
    eprintln!("building: {rows} rows, one bad batch over all of them…");
    let setup = build(rows);
    let sas = MediaModel::sas_hdd();

    println!("== prepare fan-out scaling (fresh witness per run) ==");
    let mut serial_modeled_us = 0u64;
    let mut fanout4_modeled_us = 0u64;
    let mut leaf_count = 0usize;
    for workers in [1usize, 2, 4] {
        let (wall_ms, prepared, total_reads, max_reads, leaves) = measure_prepare(&setup, workers);
        leaf_count = leaves;
        // Modeled prepare time: every log read is a potential random stall;
        // a serial walk pays them all, the pool pays its busiest worker.
        let modeled_us = sas.random_read_time_us(max_reads);
        if workers == 1 {
            serial_modeled_us = modeled_us;
        }
        if workers == 4 {
            fanout4_modeled_us = modeled_us;
        }
        println!(
            "workers={workers}: {leaves} leaves, {prepared} prepared, \
             {total_reads} log reads (busiest worker {max_reads}), \
             wall {wall_ms:.1} ms, modeled(sas) {:.1} ms",
            modeled_us as f64 / 1e3
        );
    }

    println!("\n== flashback end-to-end ==");
    let t0 = Instant::now();
    let report = flashback(
        &setup.db,
        &RepairTarget::Txns(BTreeSet::from([setup.bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 4,
        },
    )
    .unwrap();
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "repaired {} keys in {:.2} s ({:.0} keys/s), {} noops, {} conflicts, \
         {} witness pages prefetched",
        report.applied,
        secs,
        report.applied as f64 / secs,
        report.noops,
        report.skipped_conflicts.len(),
        report.pages_prefetched,
    );
    assert_eq!(
        report.applied as u64, setup.rows,
        "every damaged row reverts"
    );

    let speedup = serial_modeled_us as f64 / fanout4_modeled_us.max(1) as f64;
    let wide_enough = leaf_count >= 64;
    let pass = wide_enough && speedup >= 2.0;
    println!(
        "\nfan-out acceptance: {leaf_count} leaf pages (≥64: {wide_enough}), \
         modeled 4-worker speedup {speedup:.2}x over serial — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    match rewind_bench::report::write_bench_json(
        "repairbench",
        &[
            ("prepare_speedup_modeled_4w", speedup),
            ("repaired_keys_per_s", report.applied as f64 / secs),
            ("leaf_pages", leaf_count as f64),
        ],
        &setup.db.metrics(),
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => println!("WARN: could not write bench json: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
