//! Observability smoke gates: run a small serial workload and check the
//! obs subsystem's **deterministic** invariants — counter and histogram
//! counts, not wall clock:
//!
//! * `obs_events_dropped == 0` at the default ring capacity for this
//!   workload size (the ring is provisioned for real traces);
//! * the commit-latency histogram holds exactly one sample per durable
//!   commit, the flush-stall histogram exactly one per counted log flush,
//!   and the as-of prepare histogram exactly one per `pages_prepared`
//!   increment — the count-exactness invariants that make the histograms
//!   trustworthy denominators;
//! * the event ring's `commit_durable` events match the commit count;
//! * the Prometheus-style exposition round-trips through
//!   [`MetricsSnapshot::parse_text`] and agrees with the snapshot;
//! * a disabled-obs engine ([`ObsConfig::enabled`] = false) runs the same
//!   workload with **bit-identical** log I/O accounting — observability
//!   off means off.
//!
//! Wall clock is printed but never gated (WARN only): this binary must be
//! green on any shared runner.
//!
//! ```text
//! cargo run -p rewind-bench --release --bin obsbench [-- --quick]
//! ```

use rewind_core::{Column, DataType, Database, DbConfig, Schema, Value};
use rewind_obs::{EventKind, MetricsSnapshot};
use std::time::Instant;

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn make_db(obs_enabled: bool) -> Database {
    let mut config = DbConfig {
        checkpoint_interval_bytes: 0, // keep the trace fully serial
        ..DbConfig::default()
    };
    config.log.obs.enabled = obs_enabled;
    Database::create(config).expect("create db")
}

/// The workload: `commits` single-row insert transactions, then a burst of
/// updates and one as-of scan back to before the burst.
fn run_workload(db: &Database, commits: u64) -> u64 {
    db.with_txn(|txn| {
        db.create_table(txn, "t", schema())?;
        Ok(())
    })
    .unwrap();
    for i in 0..commits {
        db.with_txn(|txn| db.insert(txn, "t", &[Value::U64(i), Value::str("obsbench")]))
            .unwrap();
    }
    db.clock().advance_secs(10);
    db.checkpoint().unwrap();
    let t0 = db.clock().now();
    db.clock().advance_secs(10);
    db.with_txn(|txn| {
        for i in (0..commits).step_by(4) {
            db.update(txn, "t", &[Value::U64(i), Value::str("post-split")])?;
        }
        Ok(())
    })
    .unwrap();

    let snap = db.create_snapshot_asof("obsbench", t0).unwrap();
    snap.wait_undo_complete();
    let table = snap.table("t").unwrap();
    let rows = snap.scan_all(&table).unwrap();
    assert_eq!(rows.len() as u64, commits, "as-of scan sees pre-burst rows");
    let prepared = snap.stats().pages_prepared;
    db.drop_snapshot("obsbench").unwrap();
    prepared
}

struct Gate {
    failed: bool,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("PASS: {what}");
        } else {
            println!("FAIL: {what}");
            self.failed = true;
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let commits: u64 = if quick { 150 } else { 400 };
    let started = Instant::now();
    let mut gate = Gate { failed: false };

    println!("# observability smoke: {commits} serial commits + as-of scan\n");

    // ---- enabled engine: count-exactness over a serial trace ----
    let db = make_db(true);
    let obs = db.obs().clone();
    let commit_samples0 = obs.commit_latency().count;
    let flush_samples0 = obs.flush_stall().count;
    let prepare_samples0 = obs.asof_prepare().count;
    let flushes0 = db.log_io().log_flushes;
    let durable0 = obs
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::CommitDurable)
        .count() as u64;

    let prepared = run_workload(&db, commits);

    let commit_samples = obs.commit_latency().count - commit_samples0;
    let flush_samples = obs.flush_stall().count - flush_samples0;
    let prepare_samples = obs.asof_prepare().count - prepare_samples0;
    let flushes = db.log_io().log_flushes - flushes0;
    // `commits` inserts + create-table + update burst = commits + 2
    // durable commits through `Database::commit`.
    let durable_commits = commits + 2;
    let durable_events = obs
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::CommitDurable)
        .count() as u64
        - durable0;

    println!(
        "durable commits {durable_commits}, log flushes {flushes}, pages prepared {prepared}, \
         events recorded {} (dropped {})\n",
        obs.events_recorded(),
        obs.events_dropped()
    );

    gate.check(
        obs.events_dropped() == 0,
        "no events dropped at the default ring capacity",
    );
    gate.check(
        commit_samples == durable_commits,
        "commit-latency histogram count == durable commit count",
    );
    gate.check(
        flush_samples == flushes,
        "flush-stall histogram count == counted log flushes",
    );
    gate.check(
        prepare_samples == prepared,
        "as-of prepare histogram count == pages prepared",
    );
    gate.check(
        durable_events == durable_commits,
        "ring commit_durable events == durable commit count",
    );

    // ---- exposition round-trip ----
    let metrics = db.metrics();
    match MetricsSnapshot::parse_text(&metrics.to_text()) {
        Ok(parsed) => {
            gate.check(true, "text exposition parses");
            gate.check(
                parsed.get("obs_enabled") == Some(&1),
                "exposition reports obs_enabled 1",
            );
            gate.check(
                parsed.get("commit_latency_us_count").copied()
                    == metrics.hist("commit_latency_us").map(|h| h.count),
                "exposition histogram count agrees with the snapshot",
            );
            gate.check(
                parsed.get("io_log_log_flushes").copied()
                    == Some(metrics.get("io_log_log_flushes")),
                "exposition counters agree with the snapshot",
            );
        }
        Err(e) => gate.check(false, &format!("text exposition parses ({e})")),
    }

    // ---- disabled engine: observability off is bit-exact off ----
    let db_off = make_db(false);
    let _ = run_workload(&db_off, commits);
    gate.check(
        !db_off.obs().is_enabled(),
        "disabled engine reports disabled",
    );
    gate.check(
        db_off.obs().events_recorded() == 0 && db_off.obs().commit_latency().count == 0,
        "disabled engine records nothing",
    );
    let on_io = db.log_io();
    let off_io = db_off.log_io();
    gate.check(
        on_io.fields() == off_io.fields(),
        "log I/O accounting is bit-identical with obs on vs off",
    );
    gate.check(
        db.metrics().counters.get("pool_misses") == db_off.metrics().counters.get("pool_misses"),
        "pool accounting is identical with obs on vs off",
    );

    let secs = started.elapsed().as_secs_f64();
    if secs > 60.0 {
        println!("WARN: obsbench took {secs:.1}s (> 60s) — slow runner, not gated");
    } else {
        println!("wall clock {secs:.1}s (informational)");
    }

    match rewind_bench::report::write_bench_json(
        "obsbench",
        &[
            ("durable_commits", durable_commits as f64),
            ("events_recorded", obs.events_recorded() as f64),
            ("events_dropped", obs.events_dropped() as f64),
            ("pages_prepared", prepared as f64),
        ],
        &metrics,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => println!("WARN: could not write bench json: {e}"),
    }

    if gate.failed {
        std::process::exit(1);
    }
    println!("\nall observability gates green");
}
