//! Criterion wrappers over the paper-figure experiments, at quick effort,
//! so `cargo bench` exercises every evaluation code path. The full tables
//! come from the `figures` binary (`cargo run --release --bin figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use rewind_bench::{fig5_fig6, fig7_to_fig11, prepare_asof_experiment, sec64_crossover, Effort};
use std::hint::black_box;

fn bench_fig5_6(c: &mut Criterion) {
    let effort = Effort::quick();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("fig5_6_logging_overhead", |b| {
        b.iter(|| black_box(fig5_fig6(&effort, false).unwrap()));
    });
    group.finish();
}

fn bench_fig7_11(c: &mut Criterion) {
    let effort = Effort::quick();
    let exp = prepare_asof_experiment(&effort, 16).unwrap();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("fig7_11_asof_vs_restore", |b| {
        b.iter(|| black_box(fig7_to_fig11(&exp, &[1, 2]).unwrap()));
    });
    group.bench_function("sec64_crossover", |b| {
        b.iter(|| black_box(sec64_crossover(&exp, &[1, 4]).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig5_6, bench_fig7_11);
criterion_main!(benches);
