//! Criterion micro-benchmarks for the engine's hot paths: slotted pages,
//! codecs, B-Tree operations, log append, and — the core of the paper —
//! `PreparePageAsOf` with and without the FPI skip (§6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewind_access::store::{MemStore, ModKind};
use rewind_access::BTree;
use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_pagestore::{Page, PageType};
use rewind_recovery::prepare_page_as_of;
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::hint::black_box;

fn bench_page_ops(c: &mut Criterion) {
    c.bench_function("page/insert_delete_64B", |b| {
        let mut p = Page::formatted(PageId(1), ObjectId(1), PageType::Heap);
        let rec = vec![7u8; 64];
        b.iter(|| {
            p.insert_record(0, &rec).unwrap();
            p.delete_record(0).unwrap();
        });
    });
    c.bench_function("page/checksum", |b| {
        let mut p = Page::formatted(PageId(1), ObjectId(1), PageType::Heap);
        p.insert_record(0, &vec![3u8; 1000]).unwrap();
        b.iter(|| black_box(p.compute_checksum()));
    });
}

fn bench_codecs(c: &mut Criterion) {
    use rewind_access::keys::encode_key;
    use rewind_access::value::{decode_row, encode_row};
    use rewind_access::Value;
    let row = vec![
        Value::U64(42),
        Value::U64(7),
        Value::str("a customer name"),
        Value::F64(123.45),
        Value::I64(-9),
    ];
    c.bench_function("codec/encode_row", |b| {
        b.iter(|| black_box(encode_row(&row)))
    });
    let bytes = encode_row(&row);
    c.bench_function("codec/decode_row", |b| {
        b.iter(|| black_box(decode_row(&bytes).unwrap()))
    });
    c.bench_function("codec/memcmp_key", |b| {
        b.iter(|| {
            let refs: Vec<&Value> = row.iter().collect();
            black_box(encode_key(&refs).unwrap())
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    let store = MemStore::new(2);
    let tree = BTree::create(&store, ObjectId(1)).unwrap();
    for i in 0..10_000u64 {
        tree.insert(&store, &i.to_be_bytes(), b"value-bytes-here")
            .unwrap();
    }
    c.bench_function("btree/get_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(tree.get(&store, &i.to_be_bytes()).unwrap())
        });
    });
    c.bench_function("btree/insert_delete", |b| {
        let k = 999_999u64.to_be_bytes();
        b.iter(|| {
            tree.insert(&store, &k, b"v").unwrap();
            tree.delete(&store, &k).unwrap();
        });
    });
}

fn bench_log_append(c: &mut Criterion) {
    let log = LogManager::new(LogConfig::default());
    let rec = LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId(1),
        prev_lsn: Lsn::NULL,
        page: PageId(1),
        prev_page_lsn: Lsn::NULL,
        object: ObjectId(1),
        undo_next: Lsn::NULL,
        flags: 0,
        payload: LogPayload::InsertRecord {
            slot: 0,
            bytes: vec![0u8; 100],
        },
    };
    c.bench_function("log/append_100B", |b| {
        b.iter(|| black_box(log.append(&rec)))
    });
}

/// The paper's core primitive: rewind a page with N modifications on its
/// chain, with FPIs off and on (the §6.1 skip).
fn bench_prepare_page(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_page_as_of");
    for &(mods, fpi) in &[(64u32, 0u32), (64, 8), (512, 0), (512, 8)] {
        let log = LogManager::new(LogConfig::default());
        let pid = PageId(5);
        let mut page = Page::formatted(pid, ObjectId(1), PageType::BTreeLeaf);
        page.insert_record(0, b"base").unwrap();
        let mut since_fpi = 0u32;
        let mut first_lsn = Lsn::NULL;
        for i in 0..mods {
            let payload = LogPayload::UpdateRecord {
                slot: 0,
                old: page.record(0).unwrap().to_vec(),
                new: format!("value-{i}").into_bytes(),
            };
            let rec = LogRecord {
                lsn: Lsn::NULL,
                txn: TxnId(1),
                prev_lsn: Lsn::NULL,
                page: pid,
                prev_page_lsn: page.page_lsn(),
                object: ObjectId(1),
                undo_next: Lsn::NULL,
                flags: 0,
                payload: payload.clone(),
            };
            let lsn = log.append(&rec);
            if first_lsn.is_null() {
                first_lsn = lsn;
            }
            payload.redo(&mut page, pid, lsn).unwrap();
            if fpi > 0 {
                since_fpi += 1;
                if since_fpi >= fpi {
                    since_fpi = 0;
                    let fp = LogPayload::FullPageImage {
                        prev_fpi_lsn: page.last_fpi_lsn(),
                        image: Box::new(*page.image()),
                    };
                    let rec = LogRecord {
                        lsn: Lsn::NULL,
                        txn: TxnId::NONE,
                        prev_lsn: Lsn::NULL,
                        page: pid,
                        prev_page_lsn: page.page_lsn(),
                        object: ObjectId(1),
                        undo_next: Lsn::NULL,
                        flags: 0,
                        payload: fp.clone(),
                    };
                    let lsn = log.append(&rec);
                    fp.redo(&mut page, pid, lsn).unwrap();
                }
            }
        }
        group.bench_with_input(
            BenchmarkId::new(format!("fpi_{fpi}"), mods),
            &(page, first_lsn),
            |b, (page, first_lsn)| {
                b.iter(|| {
                    let mut p = page.clone();
                    black_box(prepare_page_as_of(&log, &mut p, pid, *first_lsn).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("alloc/allocate_free_cycle", |b| {
        let store = MemStore::new(4);
        b.iter(|| {
            let pid = rewind_access::allocator::allocate_page(
                &store,
                ObjectId(1),
                PageType::Heap,
                0,
                PageId::INVALID,
                PageId::INVALID,
                ModKind::User,
            )
            .unwrap();
            rewind_access::allocator::free_page(&store, pid, ModKind::User).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_page_ops,
    bench_codecs,
    bench_btree,
    bench_log_append,
    bench_prepare_page,
    bench_allocator
);
criterion_main!(benches);
