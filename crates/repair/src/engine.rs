//! Flashback orchestration: harvest → witness → plan → apply.
//!
//! Apply runs as **one regular logged transaction** through the live DML
//! path: every compensation is redo/undo logged, locks are taken like any
//! user write, secondary indexes are maintained, and the repair itself is
//! therefore (a) undoable, (b) crash-safe, and (c) visible to later as-of
//! queries exactly like any other transaction — including to a later
//! flashback of the repair transaction itself.

use crate::harvest::{self, ConflictInfo, Harvest, RepairTarget, TargetTxn};
use crate::plan::{self, KeyRepair, RepairAction, RepairPlan, UnsupportedNote};
use rewind_common::{Lsn, Result, TxnId};
use rewind_core::Database;
use rewind_obs::EventKind;
use std::sync::atomic::{AtomicU64, Ordering};

/// What to do with a key whose witness restore would destroy a later
/// committed (non-target) write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Leave conflicted keys at their live value; repair the rest. The
    /// report lists every key left behind.
    Skip,
    /// Restore conflicted keys to the witness image anyway (the later
    /// write is consciously sacrificed).
    Overwrite,
    /// Dry run: plan and report everything, change nothing.
    ReportOnly,
}

/// Knobs for one flashback run.
#[derive(Clone, Debug)]
pub struct RepairConfig {
    /// Conflict handling.
    pub policy: ConflictPolicy,
    /// Worker threads preparing witness pages (1 = serial).
    pub prefetch_workers: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 1,
        }
    }
}

/// The outcome of one key at apply time.
#[derive(Clone, Debug)]
pub struct ConflictReport {
    /// The key's planned repair.
    pub entry: KeyRepair,
    /// The later writer that caused the skip (absent for conflicts that
    /// were overwritten or that appeared only at apply time).
    pub later: Option<ConflictInfo>,
}

/// What a flashback run did.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// The transactions reverted.
    pub targets: Vec<TargetTxn>,
    /// The witness split LSN.
    pub witness_split: Lsn,
    /// Keys examined (harvested from the targets' log records).
    pub keys_examined: usize,
    /// Compensations actually applied.
    pub applied: usize,
    /// Keys already at their witness image.
    pub noops: usize,
    /// Conflicted keys left at the live value (policy [`ConflictPolicy::Skip`]).
    pub skipped_conflicts: Vec<ConflictReport>,
    /// Conflicted keys restored anyway (policy [`ConflictPolicy::Overwrite`]).
    pub overwritten_conflicts: usize,
    /// Objects repair could not cover row-by-row.
    pub unsupported: Vec<UnsupportedNote>,
    /// The compensation transaction, when one ran and logged anything.
    pub repair_txn: Option<TxnId>,
    /// Witness leaf pages prepared concurrently.
    pub pages_prefetched: u64,
    /// The full per-key plan (inspect for auditing; [`RepairPlan::entries`]
    /// carries witness and live images per key).
    pub plan: RepairPlan,
}

static WITNESS_SEQ: AtomicU64 = AtomicU64::new(1);

/// Plan a flashback without touching the database: harvest the log, mount
/// the witness, diff, and return the plan plus report skeleton. This is
/// exactly [`flashback`] with [`ConflictPolicy::ReportOnly`].
pub fn plan_flashback(db: &Database, target: &RepairTarget) -> Result<RepairReport> {
    flashback(
        db,
        target,
        &RepairConfig {
            policy: ConflictPolicy::ReportOnly,
            ..RepairConfig::default()
        },
    )
}

/// Surgically revert the effects of the target transactions while
/// preserving all later non-conflicting work.
pub fn flashback(db: &Database, target: &RepairTarget, cfg: &RepairConfig) -> Result<RepairReport> {
    let obs = db.log().obs().clone();
    let harvest_started = obs.now_us();
    let harvest = harvest::harvest(db.log(), target)?;
    obs.record(
        EventKind::RepairHarvest,
        harvest.split_lsn.0,
        harvest.targets.len() as u64,
        obs.now_us().saturating_sub(harvest_started),
    );
    let witness_name = format!(
        "repair-witness@{}#{}",
        harvest.split_lsn,
        WITNESS_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let label = harvest
        .targets
        .first()
        .map(|t| t.commit_at)
        .unwrap_or_default();
    let mut harvest = harvest;
    let witness = db
        .create_snapshot_at_lsn(&witness_name, label, harvest.split_lsn)?
        .with_prefetch_workers(cfg.prefetch_workers.max(1));
    obs.record(EventKind::RepairWitness, harvest.split_lsn.0, 0, 0);
    let result = (|| {
        let plan_started = obs.now_us();
        let mut plan = plan::build_plan(db, &witness, &harvest, cfg.prefetch_workers.max(1))?;
        // Close the harvest→plan window: a transaction that committed
        // while the plan was being built is visible to the plan's live
        // reads but absent from the harvested conflict map — without this
        // refresh the Skip policy would restore over its committed write.
        harvest::refresh_conflicts(db.log(), &mut harvest)?;
        for e in &mut plan.entries {
            if e.action != RepairAction::Noop && e.conflict.is_none() {
                e.conflict = harvest
                    .conflicts
                    .get(&(e.object, e.key_bytes.clone()))
                    .copied();
            }
        }
        obs.record(
            EventKind::RepairDiff,
            harvest.split_lsn.0,
            plan.entries.len() as u64,
            obs.now_us().saturating_sub(plan_started),
        );
        let apply_started = obs.now_us();
        let report = apply(db, &harvest, plan, cfg)?;
        obs.record(
            EventKind::RepairApply,
            harvest.split_lsn.0,
            report.applied as u64,
            obs.now_us().saturating_sub(apply_started),
        );
        Ok(report)
    })();
    // The witness is scratch state; whatever happened above is the outcome
    // that matters. (Dropping a snapshot we created cannot meaningfully
    // fail, and a leaked name must not mask a committed repair.)
    let _ = db.drop_snapshot(&witness_name);
    result
}

fn apply(
    db: &Database,
    harvest: &Harvest,
    plan: RepairPlan,
    cfg: &RepairConfig,
) -> Result<RepairReport> {
    let mut report = RepairReport {
        targets: plan.targets.clone(),
        witness_split: plan.split_lsn,
        keys_examined: harvest.touched.len(),
        unsupported: plan.unsupported.clone(),
        pages_prefetched: plan.pages_prefetched,
        ..RepairReport::default()
    };

    if cfg.policy == ConflictPolicy::ReportOnly {
        report.noops = plan.entries.len() - plan.actionable();
        for e in &plan.entries {
            if let Some(c) = e.conflict {
                report.skipped_conflicts.push(ConflictReport {
                    entry: e.clone(),
                    later: Some(c),
                });
            }
        }
        report.plan = plan;
        return Ok(report);
    }

    let mut applied = 0usize;
    let mut overwritten = 0usize;
    let mut noops = 0usize;
    let mut skipped: Vec<ConflictReport> = Vec::new();
    let txn = db.begin();
    let txn_id = txn.id();
    let result = (|| {
        for e in &plan.entries {
            if e.action == RepairAction::Noop {
                noops += 1;
                continue;
            }
            if e.conflict.is_some() && cfg.policy == ConflictPolicy::Skip {
                skipped.push(ConflictReport {
                    entry: e.clone(),
                    later: e.conflict,
                });
                continue;
            }
            // Revalidate under an X lock: the planner read without locks,
            // so a concurrent writer may have moved the row since.
            let current = db.get_for_update(&txn, &e.table, &e.key)?;
            if current != e.live {
                // The row changed between plan and apply — a conflict that
                // only materialized now. Same policy decision applies.
                if cfg.policy == ConflictPolicy::Skip {
                    skipped.push(ConflictReport {
                        entry: e.clone(),
                        later: None,
                    });
                    continue;
                }
            }
            // Re-derive the action against the locked row so apply never
            // acts on a stale diff.
            let did_apply = match (&e.witness, &current) {
                (None, None) => false,
                (Some(w), Some(l)) if w == l => false,
                (Some(w), Some(_)) => {
                    db.update(&txn, &e.table, w)?;
                    true
                }
                (Some(w), None) => {
                    db.insert(&txn, &e.table, w)?;
                    true
                }
                (None, Some(_)) => {
                    db.delete(&txn, &e.table, &e.key)?;
                    true
                }
            };
            if did_apply {
                applied += 1;
                // Only a restore that actually ran sacrificed a later write.
                if e.conflict.is_some() {
                    overwritten += 1;
                }
            } else {
                noops += 1;
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => db.commit(txn)?,
        Err(e) => {
            let _ = db.rollback(txn);
            return Err(e);
        }
    }
    report.applied = applied;
    report.noops = noops;
    report.overwritten_conflicts = if cfg.policy == ConflictPolicy::Overwrite {
        overwritten
    } else {
        0
    };
    report.skipped_conflicts = skipped;
    report.repair_txn = (applied > 0).then_some(txn_id);
    report.plan = plan;
    Ok(report)
}
