//! `rewind-repair`: log-driven application error recovery (flashback).
//!
//! The paper's §1 motivating failure is an *application* error — a bad
//! batch job, an accidental `DELETE` — and its §1 remedy is to query an
//! as-of snapshot and reconcile. `restore_table_from_snapshot` does that
//! at table granularity, which clobbers every change made *after* the
//! error. This crate is the selective-undo generalization: revert exactly
//! the rows a chosen set of transactions wrote, keep everything else.
//!
//! The pipeline:
//!
//! 1. **Log harvest** ([`harvest`]): one forward pass over the retained
//!    log with the zero-copy header/payload-view decode path collects the
//!    target transactions' record chains, the `(table, key)` set they
//!    touched, and every later committed writer of those keys.
//! 2. **As-of witness**: an [`AsOfSnapshot`]-backed `SnapshotDb` is
//!    mounted at the LSN *just before the earliest target record*
//!    (`Database::create_snapshot_at_lsn`) and serves the pre-images —
//!    prior versions are produced only for the touched pages, the paper's
//!    core economy.
//! 3. **Logical diff + compensation plan** ([`plan`]): witness vs. live,
//!    per key, yields typed compensation DML (re-insert / delete /
//!    restore-update). Keys also written by a later committed non-target
//!    transaction are flagged **conflicted** and resolved by policy:
//!    skip, overwrite, or report-only. Wide repairs fan the witness page
//!    preparation out across a bounded worker pool
//!    (`AsOfSnapshot::prepare_pages`).
//! 4. **Apply** ([`engine`]): the plan executes as one regular logged
//!    transaction through the live DML path — locked, index-maintained,
//!    undoable, and visible to every subsequent as-of query.
//!
//! ```no_run
//! use rewind_core::{Database, DbConfig};
//! use rewind_repair::{flashback, ConflictPolicy, RepairConfig, RepairTarget};
//! # fn demo(db: &Database, bad_txn: rewind_common::TxnId) -> rewind_common::Result<()> {
//! let report = flashback(
//!     db,
//!     &RepairTarget::Txns([bad_txn].into()),
//!     &RepairConfig { policy: ConflictPolicy::Skip, prefetch_workers: 4 },
//! )?;
//! println!("reverted {} rows, {} conflicts skipped",
//!          report.applied, report.skipped_conflicts.len());
//! # Ok(()) }
//! ```
//!
//! [`AsOfSnapshot`]: rewind_core::Database::create_snapshot_asof

pub mod engine;
pub mod harvest;
pub mod plan;

pub use engine::{
    flashback, plan_flashback, ConflictPolicy, ConflictReport, RepairConfig, RepairReport,
};
pub use harvest::{
    harvest as harvest_log, refresh_conflicts, ConflictInfo, Harvest, RepairTarget, TargetTxn,
};
pub use plan::{KeyRepair, RepairAction, RepairPlan, UnsupportedNote};

use rewind_access::Row;
use rewind_common::Result;
use rewind_core::{Database, SnapshotDb};

/// One divergent key of a whole-table diff.
#[derive(Clone, Debug, PartialEq)]
pub struct TableDiff {
    /// The diverging key's values.
    pub key: Row,
    /// The row in the snapshot (`None` = absent there).
    pub snapshot: Option<Row>,
    /// The row in the live database (`None` = absent there).
    pub live: Option<Row>,
}

/// Whole-table logical diff between a snapshot and the live database:
/// every key whose row differs (present on one side only, or with
/// different values). Empty exactly when the table's content is identical
/// on both sides.
pub fn diff_table(db: &Database, snap: &SnapshotDb, table: &str) -> Result<Vec<TableDiff>> {
    use std::collections::BTreeMap;
    let snap_info = snap.table(table)?;
    let live_info = db.table_info(table)?;
    let mut by_key: BTreeMap<Vec<u8>, (Option<Row>, Option<Row>)> = BTreeMap::new();
    for row in snap.scan_all(&snap_info)? {
        let k = snap_info.key_bytes(&row)?;
        by_key.entry(k).or_default().0 = Some(row);
    }
    let txn = db.begin();
    let live_rows = db.scan_all(&txn, table);
    db.commit(txn)?;
    for row in live_rows? {
        let k = live_info.key_bytes(&row)?;
        by_key.entry(k).or_default().1 = Some(row);
    }
    let mut out = Vec::new();
    for (_, (s, l)) in by_key {
        if s != l {
            let Some(row) = s.as_ref().or(l.as_ref()) else {
                continue; // both None would have compared equal
            };
            let key = live_info
                .schema
                .key_values(row)?
                .into_iter()
                .cloned()
                .collect();
            out.push(TableDiff {
                key,
                snapshot: s,
                live: l,
            });
        }
    }
    Ok(out)
}
