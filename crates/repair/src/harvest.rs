//! Log harvest: one forward pass over the retained log that finds the
//! target transactions, the row keys they touched, and every *later*
//! committed writer of those keys.
//!
//! The walk uses the zero-copy `LogRecordHeader`/`LogPayloadView` decode
//! path: headers navigate, and only Insert/Delete/Update payloads have
//! their embedded key bytes inspected (in place, never copied until a key
//! is actually recorded).
//!
//! ## What counts as a write
//!
//! Non-system `InsertRecord`/`DeleteRecord`/`UpdateRecord` records carry a
//! row image whose leading `[u16 klen][key]` prefix identifies the row —
//! the same convention snapshot recovery's lock reacquisition relies on.
//! System (structure-modification) records *move* rows without owning them
//! and are skipped; CLRs count as writes of the key they compensate (the
//! diff against the live state resolves the net effect either way).
//!
//! ## Conflict rule
//!
//! The witness snapshot is split just before the earliest target record.
//! A harvested key is *conflicted* when some non-target transaction that
//! **committed after the split** also wrote it — whether its write LSN
//! falls before or after the target's, its effect is absent from the
//! witness (in-flight transactions are rolled back there), so restoring
//! the witness image would overwrite that transaction's committed work.
//! The planner later downgrades conflicts whose restore action is a no-op.

use rewind_common::{Error, Lsn, ObjectId, Result, Timestamp, TxnId};
use rewind_wal::{LogManager, LogPayloadView, LogRecordHeader, PayloadKind, REC_FLAG_HEAP};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which transactions to flash back.
#[derive(Clone, Debug)]
pub enum RepairTarget {
    /// An explicit set of (committed) transaction ids.
    Txns(BTreeSet<TxnId>),
    /// Every transaction whose commit stamp falls in `[from, to]` — the
    /// "bad batch job ran between 14:02 and 14:05" shape of the paper's §1
    /// scenario.
    TimeWindow {
        /// Start of the window (inclusive).
        from: Timestamp,
        /// End of the window (inclusive).
        to: Timestamp,
    },
}

/// A committed non-target transaction that wrote a harvested key after the
/// witness split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictInfo {
    /// The later writer.
    pub txn: TxnId,
    /// LSN of its commit record.
    pub commit_lsn: Lsn,
    /// Its commit wall-clock stamp.
    pub commit_at: Timestamp,
}

/// One target transaction, fully located in the log.
#[derive(Clone, Copy, Debug)]
pub struct TargetTxn {
    /// The transaction id.
    pub id: TxnId,
    /// Its first retained log record.
    pub first_lsn: Lsn,
    /// Its last log record before the commit.
    pub last_lsn: Lsn,
    /// LSN of its commit record.
    pub commit_lsn: Lsn,
    /// Its commit wall-clock stamp.
    pub commit_at: Timestamp,
}

/// Everything the harvest pass learned.
#[derive(Clone, Debug, Default)]
pub struct Harvest {
    /// The located targets, ascending by id.
    pub targets: Vec<TargetTxn>,
    /// The witness split: just before the earliest target record.
    pub split_lsn: Lsn,
    /// Keys the targets wrote: `(object, key bytes)` → the target's last
    /// write LSN on that key.
    pub touched: BTreeMap<(ObjectId, Vec<u8>), Lsn>,
    /// Harvested keys also written by a later committed non-target txn.
    pub conflicts: HashMap<(ObjectId, Vec<u8>), ConflictInfo>,
    /// Objects the targets touched that row-level repair cannot cover:
    /// heap tables (rows addressed by RID, not key) and catalog trees
    /// (DDL — use `restore_table_from_snapshot` for those).
    pub unsupported: BTreeSet<ObjectId>,
    /// Log records visited by the pass.
    pub records_scanned: u64,
    /// Where the pass stopped (the log tail at harvest time). Conflicts
    /// are complete only up to here; [`refresh_conflicts`] extends them.
    pub scan_end: Lsn,
}

/// A row write observed in the log, buffered per transaction until its
/// commit fate is known.
#[derive(Clone, Debug)]
struct PendingWrite {
    object: ObjectId,
    key: Vec<u8>,
    lsn: Lsn,
    heap: bool,
}

/// Extract the row-key bytes a payload addresses, mirroring the
/// lock-reacquisition convention: leaf records lead with `[u16 klen][key]`.
fn key_of<'a>(view: &LogPayloadView<'a>) -> Option<&'a [u8]> {
    let rec: &[u8] = match *view {
        LogPayloadView::InsertRecord { bytes, .. } => bytes,
        LogPayloadView::DeleteRecord { old, .. } => old,
        LogPayloadView::UpdateRecord { old, .. } => old,
        _ => return None,
    };
    if rec.len() < 2 {
        return None;
    }
    let klen = u16::from_le_bytes([rec[0], rec[1]]) as usize;
    if 2 + klen > rec.len() {
        return None;
    }
    Some(&rec[2..2 + klen])
}

fn is_row_write(header: &LogRecordHeader) -> bool {
    header.txn.is_valid()
        && !header.is_system()
        && matches!(
            header.kind,
            PayloadKind::InsertRecord | PayloadKind::DeleteRecord | PayloadKind::UpdateRecord
        )
}

/// Run the harvest pass over the retained log.
pub fn harvest(log: &LogManager, target: &RepairTarget) -> Result<Harvest> {
    if let RepairTarget::TimeWindow { from, to } = target {
        if from > to {
            return Err(Error::InvalidArg(format!(
                "repair time window is empty ({from} > {to})"
            )));
        }
    }

    // Per-transaction buffers, held until the txn's fate is known.
    #[derive(Default)]
    struct TxnBuf {
        first_lsn: Lsn,
        last_lsn: Lsn,
        writes: Vec<PendingWrite>,
    }
    let mut pending: HashMap<u64, TxnBuf> = HashMap::new();
    // Committed transactions, in commit order: (txn, commit info, writes).
    let mut committed: Vec<(TargetTxn, Vec<PendingWrite>)> = Vec::new();
    let mut scanned = 0u64;

    let scan_end = log.scan_views(log.truncation_point(), Lsn::MAX, |header, view| {
        scanned += 1;
        if !header.txn.is_valid() {
            return Ok(true);
        }
        match header.kind {
            PayloadKind::Commit if !header.is_system() => {
                let at = view.time_stamp().ok_or_else(|| {
                    Error::corruption(format!("commit at {} without stamp", header.lsn))
                })?;
                let buf = pending.remove(&header.txn.0).unwrap_or_default();
                committed.push((
                    TargetTxn {
                        id: header.txn,
                        first_lsn: if buf.first_lsn.is_valid() {
                            buf.first_lsn
                        } else {
                            header.lsn
                        },
                        last_lsn: buf.last_lsn,
                        commit_lsn: header.lsn,
                        commit_at: at,
                    },
                    buf.writes,
                ));
            }
            PayloadKind::End if !header.is_system() => {
                // End without a preceding commit: the txn rolled back; its
                // net effect is nil either way (writes + CLRs cancel). A
                // *system* End (an SMO closing mid-transaction) does NOT
                // terminate the user transaction and falls through below.
                pending.remove(&header.txn.0);
            }
            _ => {
                // Track the chain extent through system records too — the
                // witness must split before *all* of a target's records,
                // structure modifications included.
                let buf = pending.entry(header.txn.0).or_default();
                if !buf.first_lsn.is_valid() {
                    buf.first_lsn = header.lsn;
                }
                buf.last_lsn = header.lsn;
                if is_row_write(header) {
                    if let Some(key) = key_of(view) {
                        buf.writes.push(PendingWrite {
                            object: header.object,
                            key: key.to_vec(),
                            lsn: header.lsn,
                            heap: header.flags & REC_FLAG_HEAP != 0,
                        });
                    }
                }
            }
        }
        Ok(true)
    })?;

    // Classify committed transactions into targets and the rest.
    let is_target = |t: &TargetTxn| match target {
        RepairTarget::Txns(ids) => ids.contains(&t.id),
        RepairTarget::TimeWindow { from, to } => t.commit_at >= *from && t.commit_at <= *to,
    };
    let mut out = Harvest::default();
    let mut others: Vec<(TargetTxn, Vec<PendingWrite>)> = Vec::new();
    for (txn, writes) in committed {
        if is_target(&txn) {
            for w in &writes {
                if w.heap || w.object.is_system() {
                    out.unsupported.insert(w.object);
                    continue;
                }
                let slot = out
                    .touched
                    .entry((w.object, w.key.clone()))
                    .or_insert(w.lsn);
                *slot = (*slot).max(w.lsn);
            }
            out.targets.push(txn);
        } else {
            others.push((txn, writes));
        }
    }
    out.targets.sort_by_key(|t| t.id);
    out.records_scanned = scanned;
    out.scan_end = scan_end;

    match target {
        RepairTarget::Txns(ids) => {
            for id in ids {
                if !out.targets.iter().any(|t| t.id == *id) {
                    return Err(Error::InvalidArg(if pending.contains_key(&id.0) {
                        format!(
                            "transaction {id} is still in flight (or rolled back); \
                             flashback repairs committed transactions only"
                        )
                    } else {
                        format!("transaction {id} has no committed record in the retained log")
                    }));
                }
            }
        }
        RepairTarget::TimeWindow { from, to } => {
            if out.targets.is_empty() {
                return Err(Error::InvalidArg(format!(
                    "no transaction committed in [{from}, {to}]"
                )));
            }
        }
    }

    // The witness splits just before the earliest target record.
    let first = out
        .targets
        .iter()
        .map(|t| t.first_lsn)
        .min()
        .ok_or_else(|| Error::Internal("harvest matched no target transactions".into()))?;
    out.split_lsn = Lsn(first.0.saturating_sub(1));

    // Conflicts: non-target transactions that committed after the split and
    // wrote a harvested key. Earliest such writer wins the report slot.
    for (txn, writes) in &others {
        if txn.commit_lsn <= out.split_lsn {
            continue;
        }
        for w in writes {
            let id = (w.object, w.key.clone());
            if out.touched.contains_key(&id) {
                out.conflicts.entry(id).or_insert(ConflictInfo {
                    txn: txn.id,
                    commit_lsn: txn.commit_lsn,
                    commit_at: txn.commit_at,
                });
            }
        }
    }
    Ok(out)
}

/// Extend a harvest's conflict set with transactions that committed
/// *after* the original pass stopped ([`Harvest::scan_end`]).
///
/// This closes the race between harvesting and the planner's unlocked live
/// reads: a transaction committing in that window is visible to the
/// planner's read (so witness-vs-live diffs against its value) yet absent
/// from the conflict map, and the Skip policy would silently destroy its
/// committed write. Run this after planning, before apply — any commit the
/// planner could have observed lies below the log tail this scan reaches,
/// and any commit after it changes the row again and is caught by apply's
/// under-lock revalidation.
///
/// Each new commit's full chain is walked backward (`prev_lsn`), so writes
/// the transaction made *before* `scan_end` are found too.
pub fn refresh_conflicts(log: &LogManager, harvest: &mut Harvest) -> Result<()> {
    let targets: BTreeSet<TxnId> = harvest.targets.iter().map(|t| t.id).collect();
    let mut commits: Vec<(TxnId, Lsn, Timestamp, Lsn)> = Vec::new();
    let new_end = log.scan_views(harvest.scan_end, Lsn::MAX, |header, view| {
        if header.kind == PayloadKind::Commit
            && !header.is_system()
            && header.txn.is_valid()
            && !targets.contains(&header.txn)
        {
            let at = view.time_stamp().unwrap_or_default();
            commits.push((header.txn, header.lsn, at, header.prev_lsn));
        }
        Ok(true)
    })?;
    for (id, commit_lsn, commit_at, mut cur) in commits {
        while cur.is_valid() {
            let rec = log.get_record_ref(cur)?;
            let (header, view) = rec.view()?;
            if is_row_write(&header) {
                if let Some(key) = key_of(&view) {
                    let kid = (header.object, key.to_vec());
                    if harvest.touched.contains_key(&kid) {
                        harvest.conflicts.entry(kid).or_insert(ConflictInfo {
                            txn: id,
                            commit_lsn,
                            commit_at,
                        });
                    }
                }
            }
            cur = header.prev_lsn;
        }
    }
    harvest.scan_end = new_end;
    Ok(())
}
