//! Logical diff and compensation planning: compare witness pre-images
//! against the live database and decide, per key, how to put the pre-image
//! back.
//!
//! The witness read is the multi-page as-of workload the concurrent
//! prepare fan-out exists for: the planner locates the leaf page of every
//! touched key (reading internal pages only) and fans their preparation
//! out through `SnapshotDb::prefetch_leaves_for_keys` before issuing its
//! point reads — a wide repair prepares pages in parallel instead of
//! paying one serial `PreparePageAsOf` per touched leaf, and a narrow
//! repair of a huge table never prepares beyond the keys it touches.

use crate::harvest::{ConflictInfo, Harvest, TargetTxn};
use rewind_access::value::decode_row;
use rewind_access::Row;
use rewind_common::{Lsn, ObjectId, Result};
use rewind_core::{Database, SnapshotDb, TableInfo, TableKind};
use std::collections::HashMap;
use std::sync::Arc;

/// How one key is put back to its witness state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairAction {
    /// Witness and live already agree; nothing to do.
    Noop,
    /// The target deleted the row (and nobody resurrected it): re-insert
    /// the witness image.
    Reinsert,
    /// The target inserted the row (and nobody else claimed the key):
    /// delete it.
    Delete,
    /// The target updated the row: restore the witness image.
    RestoreUpdate,
}

/// The planned repair of one `(table, key)`.
#[derive(Clone, Debug)]
pub struct KeyRepair {
    /// Live table name.
    pub table: String,
    /// The owning object.
    pub object: ObjectId,
    /// Encoded key bytes (as they appear in the log and the tree).
    pub key_bytes: Vec<u8>,
    /// Decoded key values (empty only for [`RepairAction::Noop`] entries
    /// whose row exists on neither side).
    pub key: Row,
    /// The pre-image read from the witness snapshot, if the row existed.
    pub witness: Option<Row>,
    /// The live row observed at plan time (revalidated under lock at
    /// apply time).
    pub live: Option<Row>,
    /// What apply will do.
    pub action: RepairAction,
    /// The later committed writer, when one exists and the action is not a
    /// no-op.
    pub conflict: Option<ConflictInfo>,
}

/// A table (or object) the planner had to leave alone, with the reason.
#[derive(Clone, Debug)]
pub struct UnsupportedNote {
    /// The object left alone.
    pub object: ObjectId,
    /// Why (heap table, DDL/catalog, dropped table, schema drift).
    pub reason: String,
}

/// The full compensation plan.
#[derive(Clone, Debug, Default)]
pub struct RepairPlan {
    /// The witness split LSN.
    pub split_lsn: Lsn,
    /// The targets being reverted.
    pub targets: Vec<TargetTxn>,
    /// Per-key repairs, grouped by table then key order.
    pub entries: Vec<KeyRepair>,
    /// Objects skipped wholesale.
    pub unsupported: Vec<UnsupportedNote>,
    /// Leaf pages prepared concurrently ahead of the witness reads.
    pub pages_prefetched: u64,
}

impl RepairPlan {
    /// Entries that would change the database (non-noop).
    pub fn actionable(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.action != RepairAction::Noop)
            .count()
    }

    /// Actionable entries flagged as conflicted.
    pub fn conflicted(&self) -> usize {
        self.entries.iter().filter(|e| e.conflict.is_some()).count()
    }
}

fn schemas_agree(a: &TableInfo, b: &TableInfo) -> bool {
    a.kind == b.kind && a.schema == b.schema
}

/// Build the compensation plan: read the witness pre-image and the live row
/// for every harvested key and derive the action. Live reads here are
/// unlocked (the plan is advisory); apply re-reads each row under an X
/// lock and re-derives the action before touching anything.
pub fn build_plan(
    db: &Database,
    witness: &SnapshotDb,
    harvest: &Harvest,
    prefetch_workers: usize,
) -> Result<RepairPlan> {
    let mut plan = RepairPlan {
        split_lsn: harvest.split_lsn,
        targets: harvest.targets.clone(),
        ..RepairPlan::default()
    };
    for obj in &harvest.unsupported {
        plan.unsupported.push(UnsupportedNote {
            object: *obj,
            reason: if obj.is_system() {
                "catalog/DDL change; recover the table with restore_table_from_snapshot".into()
            } else {
                "heap table (rows addressed by RID, not key); \
                 restore it wholesale from the witness snapshot"
                    .into()
            },
        });
    }

    // Resolve live and witness catalogs once.
    let live_tables: HashMap<u64, Arc<TableInfo>> = db
        .list_tables()?
        .into_iter()
        .map(|t| (t.id.0, Arc::new(t)))
        .collect();
    let live_index_ids: std::collections::HashSet<u64> = live_tables
        .values()
        .flat_map(|t| t.indexes.iter().map(|i| i.id.0))
        .collect();
    let witness_tables: HashMap<u64, Arc<TableInfo>> = witness
        .list_tables()?
        .into_iter()
        .map(|t| (t.id.0, Arc::new(t)))
        .collect();
    let witness_index_ids: std::collections::HashSet<u64> = witness_tables
        .values()
        .flat_map(|t| t.indexes.iter().map(|i| i.id.0))
        .collect();

    // Group keys by object so prefetch and skip decisions are per-table.
    let mut by_object: HashMap<ObjectId, Vec<&Vec<u8>>> = HashMap::new();
    for (object, key) in harvest.touched.keys() {
        by_object.entry(*object).or_default().push(key);
    }
    let mut objects: Vec<ObjectId> = by_object.keys().copied().collect();
    objects.sort();

    let txn = db.begin();
    let result: Result<()> = (|| {
        for object in objects {
            let keys = &by_object[&object];
            // Secondary indexes repair themselves through table DML.
            if live_index_ids.contains(&object.0) || witness_index_ids.contains(&object.0) {
                continue;
            }
            let (Some(live_info), Some(wit_info)) =
                (live_tables.get(&object.0), witness_tables.get(&object.0))
            else {
                plan.unsupported.push(UnsupportedNote {
                    object,
                    reason: "table missing from the live or witness catalog (created or \
                             dropped around the target); recover it with \
                             restore_table_from_snapshot"
                        .into(),
                });
                continue;
            };
            if live_info.kind != TableKind::Tree {
                // Heap touches were already diverted by the harvest; this
                // covers a table whose kind itself drifted.
                plan.unsupported.push(UnsupportedNote {
                    object,
                    reason: "not a B-Tree table in the live catalog".into(),
                });
                continue;
            }
            if !schemas_agree(live_info, wit_info) {
                plan.unsupported.push(UnsupportedNote {
                    object,
                    reason: format!(
                        "schema of '{}' drifted between the witness and the live \
                         database; repair refuses to mix row shapes",
                        live_info.name
                    ),
                });
                continue;
            }

            // Fan out the witness page preparation before the point reads —
            // but only over the leaves the touched keys actually live on,
            // so preparation stays proportional to the repair, never to
            // table size.
            if keys.len() >= 8 {
                let key_slices: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                plan.pages_prefetched +=
                    witness.prefetch_leaves_for_keys(wit_info, &key_slices, prefetch_workers)?;
            }

            let store = db.store(&txn);
            for key_bytes in keys {
                let w_bytes = witness.get_value_bytes(wit_info, key_bytes)?;
                let l_bytes = live_info.tree()?.get(&store, key_bytes)?;
                let witness_row = w_bytes.as_deref().map(decode_row).transpose()?;
                let live_row = l_bytes.as_deref().map(decode_row).transpose()?;
                let action = match (&witness_row, &live_row) {
                    (None, None) => RepairAction::Noop,
                    (Some(w), Some(l)) if w == l => RepairAction::Noop,
                    (Some(_), Some(_)) => RepairAction::RestoreUpdate,
                    (Some(_), None) => RepairAction::Reinsert,
                    (None, Some(_)) => RepairAction::Delete,
                };
                let key: Row = match witness_row.as_ref().or(live_row.as_ref()) {
                    Some(row) => live_info
                        .schema
                        .key_values(row)?
                        .into_iter()
                        .cloned()
                        .collect(),
                    None => Row::new(),
                };
                // A conflict only matters when the restore would actually
                // change something: if the later writer happened to leave
                // the row at its witness image (e.g. a previous repair),
                // there is nothing to destroy.
                let conflict = if action == RepairAction::Noop {
                    None
                } else {
                    harvest
                        .conflicts
                        .get(&(object, (*key_bytes).clone()))
                        .copied()
                };
                plan.entries.push(KeyRepair {
                    table: live_info.name.clone(),
                    object,
                    key_bytes: (*key_bytes).clone(),
                    key,
                    witness: witness_row,
                    live: live_row,
                    action,
                    conflict,
                });
            }
        }
        Ok(())
    })();
    // The planning transaction took no locks and logged nothing; commit is
    // the cheap way to retire it.
    db.commit(txn)?;
    result?;
    Ok(plan)
}
