//! Property tests for the flashback engine: a quiet database diffs empty
//! against its own past, and repair is idempotent — flashing the same
//! target back twice never finds more work the second time, under
//! arbitrary interleavings of target and bystander writes.

use proptest::prelude::*;
use rewind_core::{Column, DataType, Database, DbConfig, Schema, SimClock, Timestamp, Value};
use rewind_repair::{diff_table, flashback, ConflictPolicy, RepairConfig, RepairTarget};
use std::collections::BTreeSet;

fn db_with_table(rows: &[(u64, u64)]) -> Database {
    let clock = SimClock::starting_at(Timestamp::from_secs(1_000));
    let db = Database::create_with_clock(DbConfig::default(), clock).unwrap();
    // Duplicate keys in the generated vector: the last value wins, as a
    // sequence of upserts would have it.
    let dedup: std::collections::BTreeMap<u64, u64> = rows.iter().copied().collect();
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "t",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("v", DataType::U64),
                ],
                &["id"],
            )?,
        )?;
        for (&k, &v) in &dedup {
            db.insert(txn, "t", &[Value::U64(k), Value::U64(v)])?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn table_rows(db: &Database) -> Vec<Vec<Value>> {
    let txn = db.begin();
    let rows = db.scan_all(&txn, "t").unwrap();
    db.commit(txn).unwrap();
    rows
}

fn has_key(db: &Database, k: u64) -> bool {
    let txn = db.begin();
    let r = db.get(&txn, "t", &[Value::U64(k)]).unwrap();
    db.commit(txn).unwrap();
    r.is_some()
}

/// Apply a batch of (key, value) intents in one transaction, choosing
/// insert/update/delete by row presence so the sequence always applies.
/// `value == 0` means delete (when present). Returns the txn id, or `None`
/// when every intent was a no-op — an unlogged transaction leaves no
/// commit record and is (correctly) not a flashback target.
fn apply_batch(db: &Database, ops: &[(u64, u64)]) -> Option<rewind_common::TxnId> {
    let txn = db.begin();
    for &(k, v) in ops {
        let present = db
            .get_for_update(&txn, "t", &[Value::U64(k)])
            .unwrap()
            .is_some();
        match (present, v) {
            (true, 0) => db.delete(&txn, "t", &[Value::U64(k)]).unwrap(),
            (true, v) => db
                .update(&txn, "t", &[Value::U64(k), Value::U64(v)])
                .unwrap(),
            (false, 0) => {}
            (false, v) => db
                .insert(&txn, "t", &[Value::U64(k), Value::U64(v)])
                .unwrap(),
        }
    }
    let id = txn.id();
    let logged = txn.last_lsn().is_valid();
    db.commit(txn).unwrap();
    logged.then_some(id)
}

fn key_strategy() -> impl Strategy<Value = u64> {
    1u64..12
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((key_strategy(), 0u64..5), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn diff_against_unchanged_past_is_empty(rows in ops_strategy(10)) {
        let rows: Vec<(u64, u64)> =
            rows.into_iter().filter(|&(_, v)| v != 0).collect();
        let db = db_with_table(&rows);
        db.clock().advance_secs(60);
        db.checkpoint().unwrap();
        let before = db.clock().now();
        db.clock().advance_secs(60);
        let snap = db.create_snapshot_asof("p", before).unwrap();
        prop_assert!(diff_table(&db, &snap, "t").unwrap().is_empty());
        db.drop_snapshot("p").unwrap();
    }

    #[test]
    fn repair_then_repair_is_idempotent(
        initial in ops_strategy(8),
        bad in ops_strategy(8),
        later in ops_strategy(6),
    ) {
        let initial: Vec<(u64, u64)> =
            initial.into_iter().filter(|&(_, v)| v != 0).collect();
        let db = db_with_table(&initial);
        db.clock().advance_secs(10);

        let Some(bad_txn) = apply_batch(&db, &bad) else { return Ok(()); };
        db.clock().advance_secs(10);
        let _later_txn = apply_batch(&db, &later);
        db.clock().advance_secs(10);

        let target = RepairTarget::Txns(BTreeSet::from([bad_txn]));
        let cfg = RepairConfig { policy: ConflictPolicy::Skip, prefetch_workers: 1 };
        let first = flashback(&db, &target, &cfg).unwrap();
        let after_first = table_rows(&db);

        db.clock().advance_secs(10);
        let second = flashback(&db, &target, &cfg).unwrap();
        let after_second = table_rows(&db);

        // Idempotent: the second run changes nothing and applies nothing.
        prop_assert_eq!(second.applied, 0, "first={:?}", first.applied);
        prop_assert_eq!(after_first, after_second);
        // Both runs agree on which keys stay conflicted.
        prop_assert_eq!(
            first.skipped_conflicts.len(),
            second.skipped_conflicts.len()
        );
    }

    #[test]
    fn flashback_restores_untouched_keys_exactly(
        initial in ops_strategy(8),
        bad in ops_strategy(8),
    ) {
        // With no later writers at all, flashback must restore the table to
        // exactly its pre-batch content.
        let initial: Vec<(u64, u64)> =
            initial.into_iter().filter(|&(_, v)| v != 0).collect();
        let db = db_with_table(&initial);
        db.clock().advance_secs(10);
        let pre = table_rows(&db);

        let Some(bad_txn) = apply_batch(&db, &bad) else { return Ok(()); };
        db.clock().advance_secs(10);

        let report = flashback(
            &db,
            &RepairTarget::Txns(BTreeSet::from([bad_txn])),
            &RepairConfig::default(),
        ).unwrap();
        prop_assert!(report.skipped_conflicts.is_empty());
        prop_assert_eq!(pre, table_rows(&db));
        // Sanity on the helper: keys the batch never touched are untouched.
        for k in 1u64..12 {
            if !bad.iter().any(|&(bk, _)| bk == k) {
                let expect = initial.iter().rev().find(|&&(ik, _)| ik == k);
                prop_assert_eq!(has_key(&db, k), expect.is_some());
            }
        }
    }
}
