//! Traditional backup/restore — the baseline the paper measures against.
//!
//! §6.2 compares as-of queries with "the amount of time needed to restore a
//! database backup and replaying transaction logs as this is the cost we are
//! trying to eliminate": a full restore costs *database-size* sequential
//! I/O plus log replay, regardless of how little data is wanted, while the
//! as-of snapshot costs are proportional to the data touched.
//!
//! §6.4 observes the flip side: with enough data accessed or enough
//! modifications to undo, restore wins; a generalized system picks the
//! faster path per request. [`choose_access_path`] implements that picker
//! over the same cost model.

use rewind_common::{Error, IoStats, Lsn, MediaModel, Result, SimClock, Timestamp};
use rewind_core::{Database, DbConfig};
use rewind_pagestore::{FileManager, MemFileManager, Page, PAGE_SIZE};
use rewind_wal::{find_split_lsn_deep, LogManager};
use std::sync::Arc;

/// A full database backup: a page-image copy plus the log position it was
/// taken at.
pub struct FullBackup {
    /// Wall-clock time of the backup.
    pub taken_at: Timestamp,
    /// Log position: restore replays the log from here.
    pub backup_lsn: Lsn,
    /// Bytes in the backup image.
    pub bytes: u64,
    pages: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
}

/// What a restore did; feeds the cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreReport {
    /// Bytes copied back from the backup image (sequential read + write).
    pub restore_bytes: u64,
    /// Log bytes replayed from `backup_lsn` to the split point.
    pub replay_bytes: u64,
    /// Records applied during replay.
    pub records_replayed: u64,
    /// In-flight transactions undone at the split point.
    pub losers_undone: usize,
    /// Log bytes after the split that a real system would need to examine /
    /// initialize ("initialization for the unused portion of transaction
    /// log", §6.2).
    pub unused_log_bytes: u64,
}

impl RestoreReport {
    /// Modeled end-to-end restore time on the given media (data files on
    /// `data`, backup image and log on `log_media`), in microseconds.
    pub fn modeled_micros(&self, data: &MediaModel, log_media: &MediaModel) -> u64 {
        log_media.seq_read_time_us(self.restore_bytes)          // read backup
            + data.seq_write_time_us(self.restore_bytes)        // write db files
            + log_media.seq_read_time_us(self.replay_bytes)     // replay
            + log_media.seq_read_time_us(self.unused_log_bytes) // init unused log
    }
}

/// Take a full backup of `db` (sequential copy of every page, accounted on
/// the database's I/O counters).
pub fn take_full_backup(db: &Database) -> Result<FullBackup> {
    let fm = db
        .mem_file()
        .ok_or_else(|| Error::InvalidArg("backup requires the in-memory file backend".into()))?;
    // Make the file consistent up to "now" (same flush snapshot creation
    // uses), then snapshot the pages.
    db.parts().pool.flush_all()?;
    let backup_lsn = db.log().tail_lsn();
    let pages = fm.clone_contents();
    let bytes = pages.len() as u64 * PAGE_SIZE as u64;
    fm.io_stats().add_seq_data_bytes(bytes);
    Ok(FullBackup {
        taken_at: db.clock().now(),
        backup_lsn,
        bytes,
        pages,
    })
}

/// Restore `backup` and roll the copy forward to wall-clock time `t` using
/// the primary's log (the traditional point-in-time restore sequence from
/// paper §1). Returns the restored, queryable database plus a cost report.
pub fn restore_to_point_in_time(
    backup: &FullBackup,
    log: &Arc<LogManager>,
    t: Timestamp,
    config: DbConfig,
    clock: SimClock,
) -> Result<(Database, RestoreReport)> {
    if t < backup.taken_at {
        return Err(Error::InvalidArg(format!(
            "restore target {t} precedes the backup ({})",
            backup.taken_at
        )));
    }
    let split = find_split_lsn_deep(log, t)?;
    let mut report = RestoreReport::default();

    // 1. Restore the image (sequential copy).
    let fm = Arc::new(MemFileManager::new());
    fm.replace_contents(backup.pages.clone());
    report.restore_bytes = backup.bytes;
    fm.io_stats().add_seq_data_bytes(backup.bytes);

    // 2. Replay the log forward from the backup position to the split.
    let io0 = log.io_stats().snapshot();
    let scan_to = Lsn(split.0 + 1);
    log.scan_deep(backup.backup_lsn, scan_to, |rec| {
        if rec.payload.is_page_op() && rec.page.is_valid() {
            let mut page = fm.read_page(rec.page)?;
            if page.page_lsn() < rec.lsn {
                rec.payload.redo(&mut page, rec.page, rec.lsn)?;
                fm.write_page(rec.page, &page)?;
                report.records_replayed += 1;
            }
        }
        Ok(true)
    })?;
    report.replay_bytes = log.io_stats().snapshot().delta(io0).log_bytes_scanned;
    report.unused_log_bytes = log.tail_lsn().bytes_since(split);

    // 3. Undo transactions in flight at the split (logical undo applied
    //    directly to the restored pages — the copy has its own lifetime, so
    //    no compensation logging is needed).
    let analysis = rewind_recovery::analyze(log, split)?;
    report.losers_undone = analysis.losers.len();
    if !analysis.losers.is_empty() {
        undo_losers_on_restored(&fm, log, &analysis)?;
    }

    // 4. Open it.
    let restored_log = Arc::new(LogManager::new(config.log.clone()));
    let db = Database::open_existing(fm, restored_log, clock, config)?;
    Ok((db, report))
}

/// Undo in-flight transactions directly on restored pages, in a merged
/// descending-LSN sweep (same discipline as snapshot recovery).
fn undo_losers_on_restored(
    fm: &Arc<MemFileManager>,
    log: &Arc<LogManager>,
    analysis: &rewind_recovery::AnalysisResult,
) -> Result<()> {
    use rewind_access::store::{ModKind, Store};
    use rewind_common::{ObjectId, PageId, TxnId};
    use rewind_pagestore::PageType;
    use rewind_wal::LogPayload;

    /// A no-log store over the restored file (the restore copy is
    /// freestanding; compensations need no durability).
    struct RestoreStore<'a> {
        fm: &'a Arc<MemFileManager>,
    }

    impl Store for RestoreStore<'_> {
        fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
            let p = self.fm.read_page(pid)?;
            f(&p)
        }

        fn modify_flagged(
            &self,
            pid: PageId,
            payload: LogPayload,
            _kind: ModKind,
            _extra: u8,
        ) -> Result<Lsn> {
            let mut p = self.fm.read_page(pid)?;
            payload.precheck(&p)?;
            let lsn = p.page_lsn();
            payload.redo(&mut p, pid, lsn)?;
            self.fm.write_page(pid, &p)?;
            Ok(lsn)
        }

        fn allocate(
            &self,
            object: ObjectId,
            ty: PageType,
            level: u16,
            next: PageId,
            prev: PageId,
            _kind: ModKind,
        ) -> Result<PageId> {
            let pid = PageId(self.fm.page_count().max(1) + (1 << 20));
            let mut p = Page::formatted(pid, object, ty);
            p.set_level(level);
            p.set_next_page(next);
            p.set_prev_page(prev);
            self.fm.write_page(pid, &p)?;
            Ok(pid)
        }

        fn free_page(&self, _pid: PageId, _kind: ModKind) -> Result<()> {
            Err(Error::Internal("restore undo never deallocates".into()))
        }

        fn with_object_latch<R>(
            &self,
            _object: ObjectId,
            _exclusive: bool,
            f: impl FnOnce() -> Result<R>,
        ) -> Result<R> {
            f() // restore undo is single-threaded
        }

        fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
            Ok(())
        }

        fn txn_last_lsn(&self) -> Lsn {
            Lsn::NULL
        }

        fn writable(&self) -> bool {
            true
        }
    }

    let store = RestoreStore { fm };
    let sys = rewind_core::catalog::SysTrees::load(&store)?;
    let resolver = |obj: ObjectId| -> Result<rewind_recovery::AccessKind> {
        use rewind_core::catalog;
        use rewind_core::TableKind;
        if obj == ObjectId::SYS_TABLES {
            return Ok(rewind_recovery::AccessKind::Tree(sys.tables));
        }
        if obj == ObjectId::SYS_COLUMNS {
            return Ok(rewind_recovery::AccessKind::Tree(sys.columns));
        }
        if obj == ObjectId::SYS_INDEXES {
            return Ok(rewind_recovery::AccessKind::Tree(sys.indexes));
        }
        if let Some(t) = catalog::read_table_by_id(&store, &sys, obj)? {
            return Ok(match t.kind {
                TableKind::Tree => rewind_recovery::AccessKind::Tree(t.tree()?),
                TableKind::Heap => rewind_recovery::AccessKind::Heap(t.heap()?),
            });
        }
        if let Some((_, idx)) = catalog::read_index_by_id(&store, &sys, obj)? {
            return Ok(rewind_recovery::AccessKind::Tree(idx.tree()));
        }
        Err(Error::ObjectNotFound(obj))
    };

    let mut heap: std::collections::BinaryHeap<(Lsn, TxnId)> =
        analysis.losers.iter().map(|l| (l.last_lsn, l.id)).collect();
    while let Some((lsn, txn)) = heap.pop() {
        let rec = log.get_record_deep(lsn)?;
        let next = if rec.is_clr() {
            rec.undo_next
        } else {
            rewind_recovery::rollback::undo_record(&store, &rec, &resolver)?;
            rec.prev_lsn
        };
        if next.is_valid() {
            heap.push((next, txn));
        }
    }
    Ok(())
}

/// Which mechanism answers a point-in-time request fastest (§6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathChoice {
    /// Create an as-of snapshot and query it (cost ∝ data touched).
    AsOfQuery,
    /// Restore the latest backup and roll forward (cost ∝ database size).
    RestoreRollForward,
}

/// Inputs to the §6.4 picker.
#[derive(Clone, Copy, Debug)]
pub struct PathEstimate {
    /// Pages the query will touch.
    pub pages_accessed: u64,
    /// Average log records to undo per touched page (grows with time
    /// distance).
    pub undo_records_per_page: u64,
    /// Fraction of undo log reads that miss the log cache (0..=1).
    pub log_miss_ratio: f64,
    /// Database size in bytes (restore must copy all of it).
    pub db_bytes: u64,
    /// Log bytes between the backup and the target time (replay cost).
    pub replay_bytes: u64,
    /// Log bytes the as-of snapshot creation must scan (analysis).
    pub analysis_bytes: u64,
}

/// Modeled as-of cost in microseconds.
pub fn estimate_asof_micros(e: &PathEstimate, data: &MediaModel, log: &MediaModel) -> u64 {
    let undo_ios =
        (e.pages_accessed as f64 * e.undo_records_per_page as f64 * e.log_miss_ratio) as u64;
    log.seq_read_time_us(e.analysis_bytes)
        + data.random_read_time_us(e.pages_accessed)
        + log.random_read_time_us(undo_ios)
}

/// Modeled restore cost in microseconds.
pub fn estimate_restore_micros(e: &PathEstimate, data: &MediaModel, log: &MediaModel) -> u64 {
    log.seq_read_time_us(e.db_bytes)
        + data.seq_write_time_us(e.db_bytes)
        + log.seq_read_time_us(e.replay_bytes)
}

/// Pick the faster mechanism under the model (§6.4's generalized system).
pub fn choose_access_path(e: &PathEstimate, data: &MediaModel, log: &MediaModel) -> PathChoice {
    if estimate_asof_micros(e, data, log) <= estimate_restore_micros(e, data, log) {
        PathChoice::AsOfQuery
    } else {
        PathChoice::RestoreRollForward
    }
}

/// Convenience: fresh I/O stats handle (used by benches to cost a restore
/// in isolation).
pub fn fresh_stats() -> Arc<IoStats> {
    Arc::new(IoStats::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picker_crossover_moves_with_pages_accessed() {
        let data = MediaModel::ssd();
        let log = MediaModel::sas_hdd();
        let base = PathEstimate {
            pages_accessed: 10,
            undo_records_per_page: 100,
            log_miss_ratio: 0.5,
            db_bytes: 40 << 30,
            replay_bytes: 10 << 30,
            analysis_bytes: 64 << 20,
        };
        assert_eq!(
            choose_access_path(&base, &data, &log),
            PathChoice::AsOfQuery
        );
        // touching (nearly) the whole database flips the choice
        let big = PathEstimate {
            pages_accessed: 100_000_000,
            ..base
        };
        assert_eq!(
            choose_access_path(&big, &data, &log),
            PathChoice::RestoreRollForward
        );
    }

    #[test]
    fn restore_cost_is_size_dominated() {
        let e = PathEstimate {
            pages_accessed: 1,
            undo_records_per_page: 1,
            log_miss_ratio: 1.0,
            db_bytes: 40 << 30,
            replay_bytes: 0,
            analysis_bytes: 0,
        };
        let sas = MediaModel::sas_hdd();
        let t = estimate_restore_micros(&e, &sas, &sas);
        // 40 GiB at 100 MiB/s read + write ≈ 2 × 410 s
        assert!(t > 600_000_000, "t={t}");
    }
}
