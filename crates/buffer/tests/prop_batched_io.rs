//! Batched-backend accounting oracle: replaying one serial trace — including
//! staged vectored read runs and writeback-pool flushes — must classify every
//! access (hit vs IO), charge every write-back and retry, and leave the same
//! residency at **every I/O batch size** as the fully scalar backend.
//! Batching may only change device-op counts (`vectored_read_ops`,
//! `batched_write_ops`), never per-page accounting — the invariant the
//! ROADMAP's batched-I/O milestone pins.

use proptest::prelude::*;
use rewind_buffer::{BufferPool, PoolIoConfig};
use rewind_common::{Lsn, ObjectId, PageId};
use rewind_pagestore::{FaultInjector, FileManager, MemFileManager, PageType};
use rewind_wal::{LogConfig, LogManager};
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    /// Shared-latch access.
    Read(u64),
    /// Exclusive access that dirties the page at the given LSN offset.
    Write(u64),
    /// Stage a contiguous pid run through the vectored read path, then
    /// consume it — the bulk-scan prefetch shape.
    StageRun(u64, u64),
    /// Flush every dirty frame (scalar loop or writeback pool).
    FlushAll,
    /// Crash simulation: all volatile state vanishes.
    DropCache,
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (1..=pages).prop_map(Op::Read),
        5 => (1..=pages).prop_map(Op::Write),
        4 => ((1..=pages), (1u64..=8)).prop_map(|(s, n)| Op::StageRun(s, n)),
        1 => Just(Op::FlushAll),
        1 => Just(Op::DropCache),
    ]
}

/// Counters a batch size must not change.
#[derive(Debug, PartialEq, Eq)]
struct Accounting {
    hits: u64,
    misses: u64,
    evictions: u64,
    page_reads: u64,
    page_writes: u64,
    io_retries: u64,
    resident: Vec<u64>,
}

fn replay(ops: &[Op], cap: usize, io: PoolIoConfig) -> Accounting {
    let fm = Arc::new(MemFileManager::new());
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let pool = BufferPool::with_io(fm.clone(), log, cap, 4, io);
    let io0 = fm.io_stats().snapshot();
    let mut lsn = 1u64;
    for op in ops {
        match op {
            Op::Read(p) => pool.with_page(PageId(*p), |_| Ok(())).unwrap(),
            Op::Write(p) => pool
                .with_page_mut(PageId(*p), |v| {
                    if v.page().page_type() == PageType::Free {
                        v.page_mut().format(PageId(*p), ObjectId(1), PageType::Heap);
                    }
                    v.page_mut().set_page_lsn(Lsn(lsn));
                    v.mark_dirty(Lsn(lsn));
                    lsn += 1;
                    Ok(())
                })
                .unwrap(),
            Op::StageRun(start, n) => {
                let pids: Vec<PageId> = (*start..*start + *n).map(PageId).collect();
                let mut staged = pool.stage_read_run(&pids);
                for &pid in &pids {
                    let pre = staged
                        .iter()
                        .position(|(p, _)| *p == pid)
                        .map(|i| staged.remove(i).1);
                    let g = pool.read_page_staged_in(pid, None, pre).unwrap();
                    assert!(g.page_id() == pid || g.page_id() == PageId(0));
                }
            }
            Op::FlushAll => pool.flush_all().unwrap(),
            Op::DropCache => {
                // Settle in-flight background writes first, as the engine's
                // own crash path does, so the dropped state is settled.
                pool.quiesce_writeback();
                pool.drop_cache();
            }
        }
    }
    pool.quiesce_writeback();
    let io = fm.io_stats().snapshot().delta(io0);
    let s = pool.stats();
    let mut resident: Vec<u64> = (1..=512u64).filter(|&p| pool.contains(PageId(p))).collect();
    resident.sort_unstable();
    assert_eq!(pool.pinned_frames(), 0, "no lost pins on a serial trace");
    assert_eq!(
        io.page_reads, s.misses,
        "every miss is exactly one per-page read, staged or scalar"
    );
    Accounting {
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
        page_reads: io.page_reads,
        page_writes: io.page_writes,
        io_retries: io.io_retries,
        resident,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// One serial trace, four backends: scalar (batch 1, no writeback) and
    /// batched at 4 and 16 pages with background writeback. Every per-page
    /// counter and the final residency must be bit-identical.
    #[test]
    fn batched_backend_is_accounting_identical_to_scalar(
        ops in proptest::collection::vec(op_strategy(24), 1..160),
        cap in prop_oneof![Just(6usize), Just(16usize)],
    ) {
        let scalar = replay(&ops, cap, PoolIoConfig::default());
        for batch in [1usize, 4, 16] {
            let batched = replay(&ops, cap, PoolIoConfig::batched(batch, 2));
            prop_assert_eq!(&batched, &scalar, "batch size {}", batch);
        }
    }
}

/// Deterministic vectored-op arithmetic: staging 16 fresh contiguous pages
/// at batch 4 must issue exactly 4 vectored device ops (one per chunk) and
/// 16 per-page reads; the scalar pool issues 16 scalar reads and no
/// vectored ops. Classification is identical either way.
#[test]
fn stage_read_run_coalesces_to_exact_vectored_op_count() {
    let run = |batch: usize| {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::with_io(fm.clone(), log, 32, 4, PoolIoConfig::batched(batch, 0));
        let pids: Vec<PageId> = (1..=16).map(PageId).collect();
        let mut staged = pool.stage_read_run(&pids);
        for &pid in &pids {
            let pre = staged
                .iter()
                .position(|(p, _)| *p == pid)
                .map(|i| staged.remove(i).1);
            pool.read_page_staged_in(pid, None, pre).unwrap();
        }
        let io = fm.io_stats().snapshot();
        (io.page_reads, io.vectored_read_ops, pool.stats().misses)
    };
    assert_eq!(run(1), (16, 0, 16), "scalar: no vectored ops");
    assert_eq!(run(4), (16, 4, 16), "batch 4: ceil(16/4) vectored ops");
    assert_eq!(run(16), (16, 1, 16), "batch 16: one vectored op");
}

/// A transient fault on one mid-batch page must cost exactly one retry and
/// one extra scalar read — the same arithmetic as the scalar backend — and
/// only that page's slot of the batch fails over.
#[test]
fn mid_batch_transient_read_costs_exactly_one_retry() {
    let run = |batch: usize| {
        let fi = Arc::new(FaultInjector::new(7));
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::with_io(fi.clone(), log, 16, 4, PoolIoConfig::batched(batch, 0));
        // Second read of the run fails transiently (EIO before accounting).
        fi.arm_eio_reads(2);
        let pids: Vec<PageId> = (10..14).map(PageId).collect();
        let mut staged = pool.stage_read_run(&pids);
        for &pid in &pids {
            let pre = staged
                .iter()
                .position(|(p, _)| *p == pid)
                .map(|i| staged.remove(i).1);
            pool.read_page_staged_in(pid, None, pre).unwrap();
        }
        let io = fi.inner().io_stats().snapshot();
        (io.page_reads, io.io_retries, pool.stats().misses)
    };
    // arm_eio_reads(2) faults the first two read attempts: staged slots 0
    // and 1 fail, each resumes the scalar retry protocol at its own miss.
    assert_eq!(run(1), (4, 2, 4), "scalar: 2 retries, 4 pages read");
    assert_eq!(run(4), (4, 2, 4), "batched: identical retry arithmetic");
}
