//! Serial-trace accounting oracle: the sharded pool must classify every
//! access of a serial trace (hit vs IO), charge every write-back, and evict
//! exactly the frames the pre-shard single-`Mutex<HashMap>` + single-clock
//! pool would have — for **every shard count**. The hit/IO counters are the
//! measured quantities of the paper's Figs. 5–11; this test is the "must
//! not drift" invariant from the ROADMAP, checked by replaying random
//! traces against an in-test reimplementation of the pre-shard algorithm.

use proptest::prelude::*;
use rewind_buffer::BufferPool;
use rewind_common::{Lsn, ObjectId, PageId};
use rewind_pagestore::{FileManager, MemFileManager, PageType};
use rewind_wal::{LogConfig, LogManager};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    /// Shared-latch access.
    Read(u64),
    /// Exclusive access that dirties the page at the given LSN offset.
    Write(u64),
    /// Flush one page if resident and dirty.
    FlushPage(u64),
    /// Flush every dirty frame.
    FlushAll,
    /// Crash simulation: all volatile state vanishes.
    DropCache,
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (1..=pages).prop_map(Op::Read),
        6 => (1..=pages).prop_map(Op::Write),
        1 => (1..=pages).prop_map(Op::FlushPage),
        1 => Just(Op::FlushAll),
        1 => Just(Op::DropCache),
    ]
}

/// The pre-shard pool, reduced to its accounting-relevant state machine:
/// one page table, one clock hand over `cap` frames, used bits, dirty
/// bits. Serially, pins are always zero outside an access, so the victim
/// search needs only the used bit.
struct Oracle {
    cap: usize,
    map: HashMap<u64, usize>,
    frame_pid: Vec<Option<u64>>,
    used: Vec<bool>,
    dirty: Vec<bool>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    page_writes: u64,
}

impl Oracle {
    fn new(cap: usize) -> Oracle {
        Oracle {
            cap,
            map: HashMap::new(),
            frame_pid: vec![None; cap],
            used: vec![false; cap],
            dirty: vec![false; cap],
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            page_writes: 0,
        }
    }

    fn access(&mut self, pid: u64, write: bool) {
        let idx = match self.map.get(&pid) {
            Some(&i) => {
                self.hits += 1;
                i
            }
            None => {
                // Clock sweep, exactly as the pre-shard find_victim: up to
                // two full sweeps, first pass clears used bits.
                let mut victim = None;
                for _ in 0..2 * self.cap + 1 {
                    let i = self.hand % self.cap;
                    self.hand += 1;
                    if self.used[i] {
                        self.used[i] = false;
                        continue;
                    }
                    victim = Some(i);
                    break;
                }
                let i = victim.expect("serial trace can always evict");
                if let Some(old) = self.frame_pid[i] {
                    if self.dirty[i] {
                        self.page_writes += 1;
                        self.dirty[i] = false;
                    }
                    self.map.remove(&old);
                    self.evictions += 1;
                }
                self.misses += 1; // one random page read
                self.frame_pid[i] = Some(pid);
                self.map.insert(pid, i);
                i
            }
        };
        self.used[idx] = true;
        if write {
            self.dirty[idx] = true;
        }
    }

    fn flush_page(&mut self, pid: u64) {
        if let Some(&i) = self.map.get(&pid) {
            if self.dirty[i] {
                self.page_writes += 1;
                self.dirty[i] = false;
            }
        }
    }

    fn flush_all(&mut self) {
        for i in 0..self.cap {
            if self.frame_pid[i].is_some() && self.dirty[i] {
                self.page_writes += 1;
                self.dirty[i] = false;
            }
        }
    }

    fn drop_cache(&mut self) {
        self.map.clear();
        for i in 0..self.cap {
            self.frame_pid[i] = None;
            self.used[i] = false;
            self.dirty[i] = false;
        }
    }
}

fn replay(ops: &[Op], cap: usize, shards: usize) -> (u64, u64, u64, u64, Vec<u64>) {
    let fm = Arc::new(MemFileManager::new());
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let pool = BufferPool::with_shards(fm.clone(), log, cap, shards);
    let io0 = fm.io_stats().snapshot();
    let mut lsn = 1u64;
    for op in ops {
        match op {
            Op::Read(p) => pool
                .with_page(PageId(*p), |page| {
                    // the frame must hold the requested page (or the zeroed
                    // on-disk image of a never-written one)
                    assert!(page.page_id() == PageId(*p) || page.page_id() == PageId(0));
                    Ok(())
                })
                .unwrap(),
            Op::Write(p) => pool
                .with_page_mut(PageId(*p), |v| {
                    if v.page().page_type() == PageType::Free {
                        v.page_mut().format(PageId(*p), ObjectId(1), PageType::Heap);
                    }
                    v.page_mut().set_page_lsn(Lsn(lsn));
                    v.mark_dirty(Lsn(lsn));
                    lsn += 1;
                    Ok(())
                })
                .unwrap(),
            Op::FlushPage(p) => pool.flush_page(PageId(*p)).unwrap(),
            Op::FlushAll => pool.flush_all().unwrap(),
            Op::DropCache => pool.drop_cache(),
        }
    }
    let io = fm.io_stats().snapshot().delta(io0);
    let s = pool.stats();
    let mut resident: Vec<u64> = (1..=512u64).filter(|&p| pool.contains(PageId(p))).collect();
    resident.sort_unstable();
    assert_eq!(pool.pinned_frames(), 0, "no lost pins on a serial trace");
    assert_eq!(
        io.page_reads, s.misses,
        "every miss is exactly one random page read"
    );
    (s.hits, s.misses, s.evictions, io.page_writes, resident)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The default (non-partitioned) read path must stay bit-exact with the
    /// single-clock oracle even though a scan partition *exists* on the
    /// pool, and a partitioned cold sweep afterwards must (a) leave the
    /// phase-1 accounting untouched, (b) still count every cold page as
    /// exactly one miss/read IO, and (c) disturb at most `budget` of the
    /// frames the oracle says were resident.
    #[test]
    fn scan_partition_keeps_default_path_exact_and_bounds_damage(
        ops in proptest::collection::vec(op_strategy(24), 1..120),
        budget in 1usize..6,
        sweep in 24u64..80,
    ) {
        let cap = 16usize;
        // Phase 1 oracle replay (identical to the main property).
        let mut oracle = Oracle::new(cap);
        for op in &ops {
            match op {
                Op::Read(p) => oracle.access(*p, false),
                Op::Write(p) => oracle.access(*p, true),
                Op::FlushPage(p) => oracle.flush_page(*p),
                Op::FlushAll => oracle.flush_all(),
                Op::DropCache => oracle.drop_cache(),
            }
        }

        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::with_shards(fm.clone(), log, cap, 4);
        // The partition exists for the whole run: its mere existence must
        // not perturb default-path accounting.
        let part = pool.scan_partition(budget);
        let mut lsn = 1u64;
        for op in &ops {
            match op {
                Op::Read(p) => pool.with_page(PageId(*p), |_| Ok(())).unwrap(),
                Op::Write(p) => pool
                    .with_page_mut(PageId(*p), |v| {
                        if v.page().page_type() == PageType::Free {
                            v.page_mut().format(PageId(*p), ObjectId(1), PageType::Heap);
                        }
                        v.page_mut().set_page_lsn(Lsn(lsn));
                        v.mark_dirty(Lsn(lsn));
                        lsn += 1;
                        Ok(())
                    })
                    .unwrap(),
                Op::FlushPage(p) => pool.flush_page(PageId(*p)).unwrap(),
                Op::FlushAll => pool.flush_all().unwrap(),
                Op::DropCache => pool.drop_cache(),
            }
        }
        let s1 = pool.stats();
        prop_assert_eq!(s1.hits, oracle.hits, "default-path hits with partition present");
        prop_assert_eq!(s1.misses, oracle.misses, "default-path IOs with partition present");
        prop_assert_eq!(s1.evictions, oracle.evictions, "default-path evictions with partition present");

        // Phase 2: a cold partitioned sweep over pages the trace never
        // touched (pids 1000..). Serially every page is a fresh miss.
        let resident_before: Vec<u64> =
            (1..=512u64).filter(|&p| pool.contains(PageId(p))).collect();
        let io_before = fm.io_stats().snapshot();
        for p in 0..sweep {
            let g = pool.read_page_in(PageId(1000 + p), Some(&part)).unwrap();
            prop_assert_eq!(g.page_id(), PageId(0)); // zeroed fresh page
        }
        let s2 = pool.stats();
        let io = fm.io_stats().snapshot().delta(io_before);
        prop_assert_eq!(s2.misses - s1.misses, sweep, "every cold sweep page is one miss");
        prop_assert_eq!(io.page_reads, sweep, "every cold sweep page is one read IO");
        let still: usize = resident_before
            .iter()
            .filter(|&&p| pool.contains(PageId(p)))
            .count();
        prop_assert!(
            still + budget >= resident_before.len(),
            "sweep of {} pages evicted {} residents, budget {}",
            sweep, resident_before.len() - still, budget
        );
        prop_assert_eq!(pool.pinned_frames(), 0, "no lost pins after sweep");
    }

    #[test]
    fn sharded_pool_matches_single_clock_oracle(
        ops in proptest::collection::vec(op_strategy(24), 1..250),
        cap in prop_oneof![Just(4usize), Just(7usize), Just(16usize)],
    ) {
        // Oracle replay.
        let mut oracle = Oracle::new(cap);
        for op in &ops {
            match op {
                Op::Read(p) => oracle.access(*p, false),
                Op::Write(p) => oracle.access(*p, true),
                Op::FlushPage(p) => oracle.flush_page(*p),
                Op::FlushAll => oracle.flush_all(),
                Op::DropCache => oracle.drop_cache(),
            }
        }
        let mut expect_resident: Vec<u64> = oracle.map.keys().copied().collect();
        expect_resident.sort_unstable();

        // The sharded pool must match at every shard count, including the
        // degenerate single-shard configuration.
        for shards in [1usize, 4, 16] {
            let (hits, misses, evictions, writes, resident) = replay(&ops, cap, shards);
            prop_assert_eq!(hits, oracle.hits, "hits @ {} shards", shards);
            prop_assert_eq!(misses, oracle.misses, "IOs @ {} shards", shards);
            prop_assert_eq!(evictions, oracle.evictions, "evictions @ {} shards", shards);
            prop_assert_eq!(writes, oracle.page_writes, "write-backs @ {} shards", shards);
            prop_assert_eq!(resident, expect_resident.clone(), "residency @ {} shards", shards);
        }
    }
}
