//! The buffer manager.
//!
//! Pages are fetched into fixed frames, latched shared or exclusive for the
//! duration of an access (paper §2.1: "the buffer manager latches the page
//! in shared or exclusive mode based on the intended access"), and written
//! back under the WAL rule: before a dirty page goes to disk, the log is
//! forced up to its `pageLSN`.
//!
//! The pool also supports the recovery-side needs of the engine: the dirty
//! page table for fuzzy checkpoints, `flush_all` for snapshot creation
//! ("perform a checkpoint to make sure that all pages with LSNs less than or
//! equal to SplitLSN are durable", §5.1), and `drop_cache` to simulate a
//! crash (volatile state vanishes, file + log survive).

use parking_lot::{Mutex, RwLock};
use rewind_common::{Error, Lsn, PageId, Result};
use rewind_pagestore::{FileManager, Page};
use rewind_wal::{DptEntry, LogManager};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

struct FrameState {
    pid: PageId,
    page: Page,
    dirty: bool,
    /// Earliest LSN whose effect may not be on disk (ARIES recLSN).
    rec_lsn: Lsn,
    /// Modifications since the last full-page-image record (paper §6.1
    /// cadence counter; volatile by design — a restart merely delays the
    /// next FPI).
    mods_since_fpi: u32,
}

struct Frame {
    state: RwLock<FrameState>,
    pins: AtomicU32,
    used: AtomicBool,
}

/// A mutable view of a latched frame, handed to `with_page_mut` closures.
pub struct FrameView<'a> {
    state: &'a mut FrameState,
}

impl FrameView<'_> {
    /// The page, immutably.
    pub fn page(&self) -> &Page {
        &self.state.page
    }

    /// The page, mutably. Callers must log before modifying (WAL).
    pub fn page_mut(&mut self) -> &mut Page {
        &mut self.state.page
    }

    /// Mark the frame dirty; `lsn` is the record that dirtied it (recLSN is
    /// kept at the *first* such record since the page was last clean).
    pub fn mark_dirty(&mut self, lsn: Lsn) {
        if !self.state.dirty {
            self.state.dirty = true;
            self.state.rec_lsn = lsn;
        }
    }

    /// Bump and read the FPI cadence counter.
    pub fn bump_fpi_counter(&mut self) -> u32 {
        self.state.mods_since_fpi += 1;
        self.state.mods_since_fpi
    }

    /// Reset the FPI cadence counter (after an FPI was logged).
    pub fn reset_fpi_counter(&mut self) {
        self.state.mods_since_fpi = 0;
    }
}

/// The buffer pool. Thread-safe; shared via `Arc`.
pub struct BufferPool {
    frames: Vec<Frame>,
    map: Mutex<HashMap<u64, usize>>,
    hand: AtomicUsize,
    fm: Arc<dyn FileManager>,
    log: Arc<LogManager>,
}

impl BufferPool {
    /// A pool of `capacity` frames over `fm`, flushing through `log` (WAL
    /// rule).
    pub fn new(fm: Arc<dyn FileManager>, log: Arc<LogManager>, capacity: usize) -> Self {
        assert!(capacity >= 4, "buffer pool needs at least 4 frames");
        let frames = (0..capacity)
            .map(|_| Frame {
                state: RwLock::new(FrameState {
                    pid: PageId::INVALID,
                    page: Page::zeroed(),
                    dirty: false,
                    rec_lsn: Lsn::NULL,
                    mods_since_fpi: 0,
                }),
                pins: AtomicU32::new(0),
                used: AtomicBool::new(false),
            })
            .collect();
        BufferPool {
            frames,
            map: Mutex::new(HashMap::new()),
            hand: AtomicUsize::new(0),
            fm,
            log,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The underlying file manager.
    pub fn file_manager(&self) -> &Arc<dyn FileManager> {
        &self.fm
    }

    /// The log manager used for WAL-rule flushes.
    pub fn log_manager(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// Pin the frame holding `pid`, loading (and possibly evicting) as
    /// needed. The caller must unpin.
    fn fetch_pin(&self, pid: PageId) -> Result<usize> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        let mut map = self.map.lock();
        if let Some(&idx) = map.get(&pid.0) {
            self.frames[idx].pins.fetch_add(1, Ordering::AcqRel);
            self.frames[idx].used.store(true, Ordering::Relaxed);
            return Ok(idx);
        }
        // Miss: pick a victim with the clock algorithm.
        let idx = self.find_victim()?;
        {
            // Exclusive access is guaranteed: pins == 0 and we hold the map
            // lock, so no one can find this frame.
            let mut st = self.frames[idx].state.write();
            if st.dirty {
                self.log.flush_to(st.page.page_lsn());
                self.fm.write_page(st.pid, &st.page)?;
                st.dirty = false;
            }
            if st.pid.is_valid() {
                map.remove(&st.pid.0);
            }
            st.page = self.fm.read_page(pid)?;
            st.pid = pid;
            st.rec_lsn = Lsn::NULL;
            st.mods_since_fpi = 0;
        }
        map.insert(pid.0, idx);
        self.frames[idx].pins.fetch_add(1, Ordering::AcqRel);
        self.frames[idx].used.store(true, Ordering::Relaxed);
        Ok(idx)
    }

    fn find_victim(&self) -> Result<usize> {
        let n = self.frames.len();
        // Up to two full sweeps: the first clears used bits, the second takes
        // any unpinned frame.
        for _ in 0..2 * n + 1 {
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % n;
            let f = &self.frames[i];
            if f.pins.load(Ordering::Acquire) != 0 {
                continue;
            }
            if f.used.swap(false, Ordering::Relaxed) {
                continue;
            }
            // pins==0 under the map lock means nobody can be latching it, but
            // be defensive against latch holders.
            if f.state.try_write().is_some() {
                return Ok(i);
            }
        }
        Err(Error::Internal(
            "buffer pool exhausted: all frames pinned".into(),
        ))
    }

    fn unpin(&self, idx: usize) {
        self.frames[idx].pins.fetch_sub(1, Ordering::AcqRel);
    }

    /// Run `f` with a shared latch on page `pid`.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let idx = self.fetch_pin(pid)?;
        let res = {
            let st = self.frames[idx].state.read();
            debug_assert_eq!(st.pid, pid);
            f(&st.page)
        };
        self.unpin(idx);
        res
    }

    /// Run `f` with an exclusive latch on page `pid`.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut FrameView<'_>) -> Result<R>,
    ) -> Result<R> {
        let idx = self.fetch_pin(pid)?;
        let res = {
            let mut st = self.frames[idx].state.write();
            debug_assert_eq!(st.pid, pid);
            f(&mut FrameView { state: &mut st })
        };
        self.unpin(idx);
        res
    }

    /// Whether `pid` is currently resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.map.lock().contains_key(&pid.0)
    }

    /// Flush one page if resident and dirty.
    pub fn flush_page(&self, pid: PageId) -> Result<()> {
        let idx = {
            let map = self.map.lock();
            match map.get(&pid.0) {
                Some(&i) => i,
                None => return Ok(()),
            }
        };
        let mut st = self.frames[idx].state.write();
        if st.pid == pid && st.dirty {
            self.log.flush_to(st.page.page_lsn());
            self.fm.write_page(st.pid, &st.page)?;
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
        }
        Ok(())
    }

    /// Flush every dirty page (blocking on in-flight latches). After this,
    /// every logged change up to the flush point is durable in the file —
    /// the property as-of snapshot creation needs (§5.1).
    pub fn flush_all(&self) -> Result<()> {
        for frame in &self.frames {
            let mut st = frame.state.write();
            if st.pid.is_valid() && st.dirty {
                self.log.flush_to(st.page.page_lsn());
                self.fm.write_page(st.pid, &st.page)?;
                st.dirty = false;
                st.rec_lsn = Lsn::NULL;
            }
        }
        Ok(())
    }

    /// The ARIES dirty-page table: (page, recLSN) for every dirty frame.
    pub fn dirty_page_table(&self) -> Vec<DptEntry> {
        let mut dpt = Vec::new();
        for frame in &self.frames {
            let st = frame.state.read();
            if st.pid.is_valid() && st.dirty {
                dpt.push(DptEntry {
                    page: st.pid,
                    rec_lsn: st.rec_lsn,
                });
            }
        }
        dpt.sort_by_key(|e| e.page);
        dpt
    }

    /// Throw away all cached state *without* flushing — simulates a crash:
    /// buffer contents are volatile; the file and the flushed log survive.
    pub fn drop_cache(&self) {
        let mut map = self.map.lock();
        map.clear();
        for frame in &self.frames {
            let mut st = frame.state.write();
            st.pid = PageId::INVALID;
            st.page = Page::zeroed();
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
            st.mods_since_fpi = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_common::{ObjectId, TxnId};
    use rewind_pagestore::{MemFileManager, PageType};
    use rewind_wal::{LogConfig, LogPayload, LogRecord};

    fn setup(cap: usize) -> (Arc<MemFileManager>, Arc<LogManager>, BufferPool) {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm.clone(), log.clone(), cap);
        (fm, log, pool)
    }

    fn format_on(pool: &BufferPool, pid: PageId, lsn: Lsn) {
        pool.with_page_mut(pid, |v| {
            v.page_mut().format(pid, ObjectId(1), PageType::Heap);
            v.page_mut().set_page_lsn(lsn);
            v.mark_dirty(lsn);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn read_through_and_write_back() {
        let (fm, _log, pool) = setup(8);
        format_on(&pool, PageId(3), Lsn(10));
        pool.with_page(PageId(3), |p| {
            assert_eq!(p.page_type(), PageType::Heap);
            Ok(())
        })
        .unwrap();
        // not yet on disk
        assert_eq!(fm.read_page(PageId(3)).unwrap().page_type(), PageType::Free);
        pool.flush_all().unwrap();
        assert_eq!(fm.read_page(PageId(3)).unwrap().page_type(), PageType::Heap);
    }

    #[test]
    fn wal_rule_forces_log_before_page_write() {
        let (_fm, log, pool) = setup(8);
        // Append a record but do not flush the log.
        let lsn = log.append(&LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: PageId(3),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![1],
            },
        });
        assert!(log.flushed_lsn() <= lsn);
        format_on(&pool, PageId(3), lsn);
        pool.flush_page(PageId(3)).unwrap();
        assert!(
            log.flushed_lsn() > lsn,
            "log must be forced up to pageLSN before page write"
        );
    }

    #[test]
    fn eviction_respects_capacity_and_persists_dirty_pages() {
        let (fm, _log, pool) = setup(4);
        for i in 1..=20u64 {
            format_on(&pool, PageId(i), Lsn(i));
        }
        // every page readable back with its content (dirty evictions flushed)
        for i in 1..=20u64 {
            pool.with_page(PageId(i), |p| {
                assert_eq!(p.page_id(), PageId(i));
                assert_eq!(p.page_type(), PageType::Heap);
                Ok(())
            })
            .unwrap();
        }
        assert!(fm.page_count() >= 20);
    }

    #[test]
    fn dirty_page_table_tracks_first_dirtier() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(2), Lsn(5));
        // second modification must not advance recLSN
        pool.with_page_mut(PageId(2), |v| {
            v.page_mut().set_page_lsn(Lsn(9));
            v.mark_dirty(Lsn(9));
            Ok(())
        })
        .unwrap();
        let dpt = pool.dirty_page_table();
        assert_eq!(dpt.len(), 1);
        assert_eq!(dpt[0].page, PageId(2));
        assert_eq!(dpt[0].rec_lsn, Lsn(5));
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
    }

    #[test]
    fn drop_cache_loses_unflushed_state() {
        let (fm, _log, pool) = setup(8);
        format_on(&pool, PageId(7), Lsn(3));
        pool.drop_cache();
        assert!(!pool.contains(PageId(7)));
        // the file never saw the page
        assert_eq!(fm.read_page(PageId(7)).unwrap().page_type(), PageType::Free);
        // and a fresh read loads the (empty) disk version
        pool.with_page(PageId(7), |p| {
            assert_eq!(p.page_type(), PageType::Free);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn fpi_counter_is_per_frame() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(1), Lsn(1));
        pool.with_page_mut(PageId(1), |v| {
            assert_eq!(v.bump_fpi_counter(), 1);
            assert_eq!(v.bump_fpi_counter(), 2);
            v.reset_fpi_counter();
            assert_eq!(v.bump_fpi_counter(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (_fm, _log, pool) = setup(16);
        let pool = Arc::new(pool);
        for i in 1..=8u64 {
            format_on(&pool, PageId(i), Lsn(i));
        }
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for round in 0..200u64 {
                        let pid = PageId(1 + (t as u64 + round) % 8);
                        if round % 3 == 0 {
                            pool.with_page_mut(pid, |v| {
                                let lsn = Lsn(1000 + round);
                                v.page_mut().set_page_lsn(lsn);
                                v.mark_dirty(lsn);
                                Ok(())
                            })
                            .unwrap();
                        } else {
                            pool.with_page(pid, |p| {
                                assert_eq!(p.page_id(), pid);
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn invalid_page_rejected() {
        let (_fm, _log, pool) = setup(4);
        assert!(pool.with_page(PageId::INVALID, |_| Ok(())).is_err());
    }
}
