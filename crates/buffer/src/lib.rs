//! The buffer manager.
//!
//! Pages are fetched into fixed frames, latched shared or exclusive for the
//! duration of an access (paper §2.1: "the buffer manager latches the page
//! in shared or exclusive mode based on the intended access"), and written
//! back under the WAL rule: before a dirty page goes to disk, the log is
//! forced up to its `pageLSN`.
//!
//! The pool also supports the recovery-side needs of the engine: the dirty
//! page table for fuzzy checkpoints, `flush_all` for snapshot creation
//! ("perform a checkpoint to make sure that all pages with LSNs less than or
//! equal to SplitLSN are durable", §5.1), and `drop_cache` to simulate a
//! crash (volatile state vanishes, file + log survive).
//!
//! # Sharded page table and the frame claim protocol
//!
//! The page table is split into pid-hashed shards, each a
//! `RwLock<HashMap<pid, frame>>`. Concurrent readers of *different* pages
//! touch different shards; readers of the *same* shard still proceed in
//! parallel because a resident-page hit needs only the shard lock in
//! **shared** mode: look the frame up, pin it with an atomic increment, set
//! the clock-reference bit, release. No page access — live or as-of —
//! blocks behind another reader, and an as-of reader never blocks behind a
//! live writer's exclusive *frame* latch on an unrelated shard, because the
//! shard lock is dropped before the frame latch is taken.
//!
//! Frames themselves stay global, as does the clock hand, so **eviction
//! order is exactly the pre-shard single-clock order**: the hit/IO/eviction
//! classification of any serial access sequence is bit-identical to the old
//! single-`Mutex<HashMap>` pool (the Figs. 5–11 "must not drift" invariant;
//! enforced by the trace-replay property test in `tests/prop_pool.rs`).
//!
//! A miss claims a victim frame by CAS-ing its pin count from `0` to the
//! [`EVICT_CLAIM`] sentinel. A claimed frame cannot be pinned: a racing
//! fast-path reader that observes a pin count at or above the sentinel
//! backs out and retries. The claimant then (1) flushes the victim if dirty
//! (WAL rule first), (2) unmaps the victim's old pid under its home shard's
//! write lock, (3) waits for transient back-off pins to drain, (4) loads
//! the new page while holding the frame latch exclusively, and (5) under
//! the target shard's write lock either publishes the mapping and converts
//! the claim into the caller's pin, or — if a racer published the pid first
//! — releases the frame and pins the racer's. At most one shard lock is
//! held at any point and never together with a frame latch, so there is no
//! lock-order cycle.
//!
//! `drop_cache` (crash simulation) is the one operation that invalidates
//! frames *without* owning their pins, so `with_page`/`with_page_mut`
//! revalidate the frame's pid after latching and retry (removing any stale
//! mapping) on mismatch. Pin counts are never reset: an in-flight accessor
//! always unpins the frame it pinned.
//!
//! # Read guards and the unified `PageRead`
//!
//! [`BufferPool::read_page`] returns a [`PageReadGuard`]: a pinned,
//! shared-latched, revalidated view of one page that dereferences to
//! [`Page`] and releases latch + pin on drop. `with_page` is now sugar over
//! it. [`PageRead`] unifies the two ways a borrowed page reaches a reader
//! in this system — a pool-frame latch ([`PageRead::Frame`]) or an
//! immutable side-file image ([`PageRead::Image`], an `Arc` clone) — so
//! snapshot read paths hand out borrowed pages with zero copies regardless
//! of where the bytes live. The §5.3 step (b) primary read hands the
//! preparer a `Frame` guard: the one 8 KiB copy on a cold as-of miss is the
//! copy *into* the prepared image, nothing else.
//!
//! # Scan partitions (scan-resistant bulk reads)
//!
//! A cold stream larger than the pool (a bulk as-of preparation sweeping a
//! whole table, ROADMAP item (h)) would march the clock over every frame
//! and evict the live working set. [`BufferPool::scan_partition`] creates a
//! pin-limited partition: misses taken through
//! [`BufferPool::read_page_in`] reuse the partition's **own** frames
//! ring-style once its bounded budget is reached, so a scan of any length
//! dirties at most `budget` frames of the shared pool. Partition loads
//! publish their frames with the reference bit clear, making them the
//! clock's preferred victims if the live side needs memory — the scan
//! yields, never the working set. *Hits* are untouched: a scan read of a
//! resident page pins it exactly like any other reader, and the default
//! (non-partitioned) path is byte-for-byte the same algorithm as before —
//! the serial hit/IO/eviction oracle in `tests/prop_pool.rs` proves its
//! accounting stays bit-exact.
//!
//! # Media hardening: salvage and bounded retry
//!
//! A miss read that fails page verification (checksum mismatch or torn
//! write) does not kill the access: the pool rebuilds the page from its
//! per-page log chain ([`salvage::salvage_page`]), writes the repaired
//! image back (repair-on-read), and serves it — counted in
//! [`rewind_common::IoStats`] as a page salvage. Transient I/O errors
//! (`Error::is_transient`) on the miss-read and dirty write-back paths get
//! a bounded exponential-backoff retry before surfacing, each attempt
//! counted as an I/O retry.
//!
//! Invariants enforced by tests (`tests/buffer_torture.rs`,
//! `tests/prop_pool.rs` in the workspace root and `crates/buffer/tests/`):
//!
//! * **No lost pins** — after all accessors finish, every frame's pin count
//!   is zero ([`BufferPool::pinned_frames`]).
//! * **No torn access** — a `with_page*` closure only ever sees the frame
//!   latched and holding exactly the requested page.
//! * **recLSN ≤ pageLSN** while dirty, and recLSN is pinned to the *first*
//!   dirtying record since the page was last clean.
//! * **Serial-trace accounting** — hits, IOs (reads and write-backs) and
//!   evictions for a serial trace equal the pre-shard single-clock oracle,
//!   for every shard count.

pub mod salvage;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use rewind_common::{CorruptionKind, Error, Lsn, PageId, Result, StripedCounters};
use rewind_obs::{EventKind, Obs};
use rewind_pagestore::{IoBackend, Page, PageImage, WritebackPool};
use rewind_wal::{DptEntry, LogManager};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pin-count sentinel marking a frame claimed for eviction/reload. Real pin
/// counts stay far below this; a fast-path reader whose increment lands on a
/// claimed frame sees `prev >= EVICT_CLAIM`, backs out and retries.
const EVICT_CLAIM: u32 = 1 << 30;

/// Default number of page-table shards (power of two).
const DEFAULT_SHARDS: usize = 16;

/// Retry budget for transient I/O failures on the miss-read and write-back
/// paths. Mirrors the log-flush retry bound: enough attempts for a device
/// hiccup, small enough that a dead device fails in well under a second.
const MAX_IO_RETRIES: u32 = 8;

/// Raw tag value of a frame that holds no page.
const TAG_FREE: u64 = u64::MAX;

struct FrameState {
    pid: PageId,
    page: Page,
    dirty: bool,
    /// Earliest LSN whose effect may not be on disk (ARIES recLSN).
    rec_lsn: Lsn,
    /// Modifications since the last full-page-image record (paper §6.1
    /// cadence counter; volatile by design — a restart merely delays the
    /// next FPI).
    mods_since_fpi: u32,
}

struct Frame {
    state: RwLock<FrameState>,
    pins: AtomicU32,
    used: AtomicBool,
    /// Mirror of `state.pid` readable without the frame latch: the victim
    /// search uses it to find a candidate's home shard, and the stale-entry
    /// sweep uses it to recognize mappings orphaned by `drop_cache`.
    /// Updated only while the frame is claimed (or by `drop_cache`, which
    /// holds the frame latch).
    tag: AtomicU64,
}

/// A mutable view of a latched frame, handed to `with_page_mut` closures.
pub struct FrameView<'a> {
    state: &'a mut FrameState,
}

impl FrameView<'_> {
    /// The page, immutably.
    pub fn page(&self) -> &Page {
        &self.state.page
    }

    /// The page, mutably. Callers must log before modifying (WAL).
    pub fn page_mut(&mut self) -> &mut Page {
        &mut self.state.page
    }

    /// Mark the frame dirty; `lsn` is the record that dirtied it (recLSN is
    /// kept at the *first* such record since the page was last clean).
    pub fn mark_dirty(&mut self, lsn: Lsn) {
        if !self.state.dirty {
            self.state.dirty = true;
            self.state.rec_lsn = lsn;
        }
    }

    /// Bump and read the FPI cadence counter.
    pub fn bump_fpi_counter(&mut self) -> u32 {
        self.state.mods_since_fpi += 1;
        self.state.mods_since_fpi
    }

    /// Reset the FPI cadence counter (after an FPI was logged).
    pub fn reset_fpi_counter(&mut self) {
        self.state.mods_since_fpi = 0;
    }
}

struct Shard {
    map: RwLock<HashMap<u64, usize>>,
}

// Pool counter indices into the striped array. The counters are a
// `rewind_common::StripedCounters` — the same cache-padded, thread-striped,
// exact-on-sum discipline as `IoStats`, extracted into the shared helper so
// the idiom is written once (ROADMAP item (i)).
const PS_HITS: usize = 0;
const PS_MISSES: usize = 1;
const PS_EVICTIONS: usize = 2;
const PS_MAP_CONTENDED: usize = 3;
const POOL_COUNTERS: usize = 4;

/// Pool access counters (all monotonically increasing), striped per thread.
type PoolStats = StripedCounters<POOL_COUNTERS>;

/// A point-in-time copy of the pool's access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStatsView {
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Accesses that read the page from the file (one random page read
    /// each — the IO term of the paper's figures).
    pub misses: u64,
    /// Victim frames that held a valid page when reclaimed.
    pub evictions: u64,
    /// Shard-lock acquisitions that could not be granted immediately
    /// (contention probe; `snapbench` reports this).
    pub map_contended: u64,
}

impl PoolStatsView {
    /// Counter-wise `self - earlier` (saturating).
    pub fn delta(self, earlier: PoolStatsView) -> PoolStatsView {
        PoolStatsView {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            map_contended: self.map_contended.saturating_sub(earlier.map_contended),
        }
    }
}

/// A pin-limited partition of the pool for cold bulk streams (bulk as-of
/// preparation, large scans). Created by [`BufferPool::scan_partition`];
/// passed to [`BufferPool::read_page_in`].
///
/// The partition tracks the frames *it* loaded in a bounded ring. Until the
/// ring reaches its budget, misses claim victims from the global clock like
/// any other access (the partition's total claim on the shared pool); once
/// at budget, the oldest ring frame is reused for the next cold page, so a
/// stream of any length occupies at most `budget` frames. Ring entries lost
/// to recycling (the global clock taking a scan frame back for live
/// traffic, or `drop_cache`) or to transient pins are simply dropped — the
/// partition never evicts a frame it cannot prove is still its own.
///
/// The damage bound assumes ring reuse can usually succeed: a miss whose
/// ring entries are *all* transiently pinned falls back to the global
/// clock. Callers sharing a partition across N concurrent readers should
/// therefore budget at least two frames per reader (the snapshot layer's
/// `prepare_pages_budgeted` enforces exactly that floor).
///
/// Shareable across the threads of one fan-out (`Sync`); the ring lock is
/// taken only on misses, which pay an I/O anyway.
pub struct ScanPartition {
    budget: usize,
    /// (frame index, pid loaded into it) in load order, oldest first.
    ring: Mutex<VecDeque<(usize, u64)>>,
    /// Ring frames popped for reuse whose reload has not been recorded yet.
    /// A reuse holds its budget slot for the whole miss I/O — without this,
    /// a concurrent worker would see the ring transiently below budget and
    /// take a fresh global victim, silently exceeding the damage bound.
    in_flight: AtomicUsize,
}

impl ScanPartition {
    /// The bounded frame budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Frames the partition currently holds: recorded ring entries plus
    /// reuses in flight (≤ budget at rest; diagnostics).
    pub fn frames_held(&self) -> usize {
        self.ring.lock().len() + self.in_flight.load(Ordering::Relaxed)
    }

    /// A popped-for-reuse frame was abandoned (racer adopted, read fault):
    /// its budget slot frees up.
    fn end_reuse(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    fn record_load(&self, idx: usize, pid: u64, reused: bool) {
        let mut ring = self.ring.lock();
        if reused {
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        ring.push_back((idx, pid));
        // Over-budget entries (possible when claims fell back to the global
        // clock) are forgotten, not evicted: their frames stay resident with
        // the reference bit clear, first in line for the global clock.
        while ring.len() > self.budget {
            ring.pop_front();
        }
    }
}

/// Outcome of asking a [`ScanPartition`] for a victim frame.
enum RingClaim {
    /// Below budget: a fill slot was reserved (charged to `in_flight`);
    /// the caller claims a fresh global victim under it.
    Fresh,
    /// A ring frame was claimed for reuse (charged to `in_flight`).
    Reused(usize),
    /// Every ring entry was stale or transiently pinned: fall back to an
    /// *uncharged* global claim so the scan stays live.
    Fallback,
}

/// A pinned, shared-latched, revalidated read view of one pool page.
/// Dereferences to [`Page`]; releases the latch and the pin on drop.
///
/// Holding a guard keeps the frame's content stable (writers need the
/// exclusive latch) and the frame unreclaimable (the pin). Guards must not
/// be held across a re-entrant access of the same page — frame latches are
/// not re-entrant — and should not be held across I/O the caller performs.
pub struct PageReadGuard<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: Option<RwLockReadGuard<'a, FrameState>>,
}

impl std::ops::Deref for PageReadGuard<'_> {
    type Target = Page;

    #[inline]
    fn deref(&self) -> &Page {
        // tidy: allow(no-panic) -- Option is Some from construction until Drop takes it
        &self.guard.as_ref().expect("guard live until drop").page
    }
}

impl Drop for PageReadGuard<'_> {
    fn drop(&mut self) {
        // Latch first, then pin — the frame must still be unreclaimable
        // while the latch is being released.
        drop(self.guard.take());
        self.pool.unpin(self.idx);
    }
}

/// A borrowed page, wherever its bytes live: a latched pool frame or an
/// immutable `Arc`-shared image. The unified currency of every read path —
/// callers consume `&Page` through [`std::ops::Deref`] without knowing (or
/// copying) the source. Warm snapshot reads are `Image`s (an `Arc` clone,
/// zero page bytes moved); primary reads are `Frame`s (pin + shared latch,
/// zero page bytes moved).
pub enum PageRead<'a> {
    /// A latched, pinned buffer-pool frame.
    Frame(PageReadGuard<'a>),
    /// An immutable shared page image (side file, prepared snapshot page).
    Image(PageImage),
}

impl std::ops::Deref for PageRead<'_> {
    type Target = Page;

    #[inline]
    fn deref(&self) -> &Page {
        match self {
            PageRead::Frame(g) => g,
            PageRead::Image(img) => img,
        }
    }
}

impl<'a> From<PageReadGuard<'a>> for PageRead<'a> {
    fn from(g: PageReadGuard<'a>) -> Self {
        PageRead::Frame(g)
    }
}

impl From<PageImage> for PageRead<'_> {
    fn from(img: PageImage) -> Self {
        PageRead::Image(img)
    }
}

impl PageRead<'_> {
    /// Whether this read holds a pool latch (as opposed to a free-standing
    /// image). Latched reads should be dropped promptly.
    pub fn is_latched(&self) -> bool {
        matches!(self, PageRead::Frame(_))
    }
}

/// Batched-I/O knobs for a [`BufferPool`] — how misses are vector-read and
/// how flushes are written back. The default is fully scalar (batch size 1,
/// no writeback threads), so a plain `BufferPool::new` pool behaves — and
/// accounts — exactly as before the batched backend existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolIoConfig {
    /// Maximum pages per staged vectored read (`IoBackend::read_pages`) and
    /// per writeback batch. `0` or `1` means scalar.
    pub io_batch_pages: usize,
    /// Background writeback threads for `flush_all`/`flush_older_than`.
    /// `0` keeps flushes synchronous per-page (the scalar path).
    pub writeback_workers: usize,
    /// Bound of the writeback queue, in batches; `submit` applies
    /// backpressure beyond it.
    pub writeback_queue_batches: usize,
}

impl Default for PoolIoConfig {
    fn default() -> Self {
        PoolIoConfig {
            io_batch_pages: 1,
            writeback_workers: 0,
            writeback_queue_batches: 64,
        }
    }
}

impl PoolIoConfig {
    /// A batched configuration: vectored reads of up to `batch` pages and
    /// `workers` background writeback threads.
    pub fn batched(batch: usize, workers: usize) -> Self {
        PoolIoConfig {
            io_batch_pages: batch.max(1),
            writeback_workers: workers,
            writeback_queue_batches: 64,
        }
    }
}

/// The buffer pool. Thread-safe; shared via `Arc`.
pub struct BufferPool {
    frames: Vec<Frame>,
    shards: Vec<Shard>,
    shard_mask: usize,
    hand: AtomicUsize,
    stats: PoolStats,
    fm: Arc<dyn IoBackend>,
    log: Arc<LogManager>,
    /// The engine's observability handle, shared from the log manager.
    obs: Arc<Obs>,
    io: PoolIoConfig,
    /// Background writeback workers (batched flush mode only).
    writeback: Option<WritebackPool>,
    /// Serializes batched flushes so one flush's drained outcomes can never
    /// be consumed by a concurrent flush (per-page outcomes decide which
    /// dirty bits clear).
    flush_gate: Mutex<()>,
}

impl BufferPool {
    /// A pool of `capacity` frames over `fm`, flushing through `log` (WAL
    /// rule), with the default shard count.
    pub fn new(fm: Arc<dyn IoBackend>, log: Arc<LogManager>, capacity: usize) -> Self {
        Self::with_shards(fm, log, capacity, DEFAULT_SHARDS)
    }

    /// A pool with an explicit page-table shard count (rounded up to a
    /// power of two). `shards == 1` reproduces a single-table pool — useful
    /// as a baseline; accounting is identical for serial traces at *every*
    /// shard count.
    pub fn with_shards(
        fm: Arc<dyn IoBackend>,
        log: Arc<LogManager>,
        capacity: usize,
        shards: usize,
    ) -> Self {
        Self::with_io(fm, log, capacity, shards, PoolIoConfig::default())
    }

    /// A pool with explicit shard count *and* batched-I/O configuration.
    /// Per-page hit/miss/eviction accounting of any serial trace is
    /// bit-identical at every `io` setting; only device-op counts (and
    /// which thread performs flush writes) change.
    pub fn with_io(
        fm: Arc<dyn IoBackend>,
        log: Arc<LogManager>,
        capacity: usize,
        shards: usize,
        io: PoolIoConfig,
    ) -> Self {
        assert!(capacity >= 4, "buffer pool needs at least 4 frames");
        let shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .clamp(1, 1024)
            .next_power_of_two();
        let frames = (0..capacity)
            .map(|_| Frame {
                state: RwLock::new(FrameState {
                    pid: PageId::INVALID,
                    page: Page::zeroed(),
                    dirty: false,
                    rec_lsn: Lsn::NULL,
                    mods_since_fpi: 0,
                }),
                pins: AtomicU32::new(0),
                used: AtomicBool::new(false),
                tag: AtomicU64::new(TAG_FREE),
            })
            .collect();
        let writeback = if io.writeback_workers > 0 {
            Some(WritebackPool::new(
                Arc::clone(&fm),
                io.writeback_workers,
                io.writeback_queue_batches.max(1),
            ))
        } else {
            None
        };
        BufferPool {
            frames,
            shards: (0..shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                })
                .collect(),
            shard_mask: shards - 1,
            hand: AtomicUsize::new(0),
            stats: PoolStats::default(),
            fm,
            obs: log.obs().clone(),
            log,
            io,
            writeback,
            flush_gate: Mutex::new(()),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of page-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying I/O backend (a [`rewind_pagestore::FileManager`] with
    /// vectored extensions; upcast freely where only the scalar surface is
    /// needed).
    pub fn file_manager(&self) -> &Arc<dyn IoBackend> {
        &self.fm
    }

    /// The configured read/writeback batch size (`>= 1`).
    pub fn io_batch_pages(&self) -> usize {
        self.io.io_batch_pages.max(1)
    }

    /// Whether flushes run through the background writeback pool.
    pub fn has_writeback(&self) -> bool {
        self.writeback.is_some()
    }

    /// Wait until no background writeback work is queued or in flight.
    /// Every flush drains its own submissions before returning, so this is
    /// a cheap no-op unless a flush is concurrently mid-submit; crash
    /// simulation calls it (after stopping the checkpointer) to guarantee
    /// no background write lands after the crash point.
    pub fn quiesce_writeback(&self) {
        if let Some(wb) = &self.writeback {
            // Taking the flush gate first means an in-flight batched flush
            // finishes (and consumes its own outcomes) before we drain, so
            // quiescing can never steal a flush's per-page results.
            let _gate = self.flush_gate.lock();
            let _ = wb.drain();
        }
    }

    /// The log manager used for WAL-rule flushes.
    pub fn log_manager(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// Access counters (hits, misses, evictions, shard contention).
    pub fn stats(&self) -> PoolStatsView {
        let s = self.stats.sums();
        PoolStatsView {
            hits: s[PS_HITS],
            misses: s[PS_MISSES],
            evictions: s[PS_EVICTIONS],
            map_contended: s[PS_MAP_CONTENDED],
        }
    }

    /// Frames currently pinned (diagnostics: must be 0 when no access is in
    /// flight — the "no lost pins" invariant the torture test checks).
    pub fn pinned_frames(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.pins.load(Ordering::Acquire) != 0)
            .count()
    }

    #[inline]
    fn shard_of_raw(&self, raw: u64) -> &Shard {
        &self.shards[rewind_common::shard_index(raw, self.shard_mask + 1)]
    }

    /// Shared shard-map acquisition with a contention probe.
    #[inline]
    fn read_map<'a>(&self, shard: &'a Shard) -> RwLockReadGuard<'a, HashMap<u64, usize>> {
        match shard.map.try_read() {
            Some(g) => g,
            None => {
                self.stats.incr(PS_MAP_CONTENDED);
                shard.map.read()
            }
        }
    }

    /// Continue a bounded transient-retry loop from an already-obtained
    /// `first` attempt: while the result is transient
    /// ([`Error::is_transient`]) and attempts remain, count an I/O retry,
    /// back off exponentially, and re-run `op`. Corruption and structural
    /// errors are never retried — re-reading bad bytes returns the same bad
    /// bytes. Seeding the loop with an external first attempt is what lets
    /// a page's slot of a *vectored* batch resume the retry protocol with
    /// accounting bit-identical to a fully scalar access.
    fn retry_from<T>(&self, first: Result<T>, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        let mut res = first;
        loop {
            match res {
                Err(e) if e.is_transient() && attempt < MAX_IO_RETRIES => {
                    attempt += 1;
                    self.fm.io_stats().add_io_retry();
                    std::thread::sleep(std::time::Duration::from_micros(10u64 << attempt.min(6)));
                    res = op();
                }
                other => return other,
            }
        }
    }

    /// Run `op`, retrying transient I/O failures up to [`MAX_IO_RETRIES`]
    /// times (see [`BufferPool::retry_from`]).
    fn with_io_retry<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let first = op();
        self.retry_from(first, &mut op)
    }

    /// The hardening protocol, resumed from an already-obtained first read
    /// attempt — either a scalar `read_page` or this page's slot of a
    /// vectored `read_pages` batch. Transient failures retry (scalar, the
    /// page is alone at fault), then checksum/torn failures salvage from the
    /// per-page log chain with a repair-on-read write-back. Every counter
    /// (`page_reads`, `io_retries`, `page_salvages`) moves exactly as it
    /// would on the fully scalar path.
    fn hardened_from(&self, pid: PageId, first: Result<Page>) -> Result<Page> {
        match self.retry_from(first, || self.fm.read_page(pid)) {
            Ok(page) => Ok(page),
            Err(cause)
                if matches!(
                    cause.corruption_kind(),
                    Some(CorruptionKind::PageChecksum | CorruptionKind::TornPage)
                ) =>
            {
                let page = salvage::salvage_page(&self.log, pid, &cause)?;
                // Repair on read: overwrite the damaged on-media image so
                // the next miss does not pay the salvage again. The chain
                // only reaches flushed records, so the WAL rule holds by
                // construction; the flush_to is a cheap no-op guard.
                self.log.flush_to(page.page_lsn());
                self.with_io_retry(|| self.fm.write_page(pid, &page))?;
                self.fm.io_stats().add_page_salvage();
                self.obs
                    .record(EventKind::PageSalvage, page.page_lsn().0, pid.0, 0);
                Ok(page)
            }
            Err(e) => Err(e),
        }
    }

    /// Pin the frame holding `pid`, loading (and possibly evicting) as
    /// needed — optionally routing the *miss* path through a
    /// [`ScanPartition`] and/or consuming a *staged* first read
    /// attempt — this page's slot of an earlier vectored batch
    /// ([`BufferPool::stage_read_run`]). A miss consumes the staged result
    /// in place of its device read; hit/miss classification, victim choice
    /// and eviction order are untouched, because staging replaces only the
    /// *read* inside the miss protocol, never the protocol itself. The
    /// staged result is consumed at most once; claim-race retries fall back
    /// to scalar reads.
    fn fetch_pin_staged_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
        mut staged: Option<Result<Page>>,
    ) -> Result<usize> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        loop {
            // Optimistic fast path: shard lock shared, pin via atomics.
            {
                let shard = self.shard_of_raw(pid.0);
                let map = self.read_map(shard);
                if let Some(&idx) = map.get(&pid.0) {
                    let f = &self.frames[idx];
                    let prev = f.pins.fetch_add(1, Ordering::AcqRel);
                    if prev >= EVICT_CLAIM {
                        // Claimed for eviction between our lookup and pin:
                        // back out; the claimant drains exactly these
                        // transient pins before reusing the frame.
                        f.pins.fetch_sub(1, Ordering::AcqRel);
                        drop(map);
                        std::thread::yield_now();
                        continue;
                    }
                    f.used.store(true, Ordering::Relaxed);
                    self.stats.incr(PS_HITS);
                    return Ok(idx);
                }
            }
            if let Some(idx) = self.load_miss_in(pid, scan, staged.take())? {
                return Ok(idx);
            }
            // Lost a race; retry from the fast path.
        }
    }

    /// Claim a victim frame: on return its pin count is `EVICT_CLAIM`, its
    /// old mapping (if any) is gone, and no other thread can see it.
    ///
    /// Concurrency note: unlike the seed pool, the sweep does not run under
    /// a global lock, so a probe bound of `2n+1` is no longer exact —
    /// concurrent hits re-set used bits and transient back-out pins defeat
    /// individual probes without the pool being full. "Exhausted" is
    /// reported after several *complete* sweeps in which every frame was
    /// pinned; sweeps that saw an unpinned frame but lost it to churn go
    /// around again with escalating backoff, but only up to a fixed total
    /// round budget — otherwise long-lived latch holders plus fast-path pin
    /// flicker (a back-out pin transiently reading 0) could keep resetting
    /// progress and livelock the claimant forever.
    fn claim_victim(&self) -> Result<usize> {
        let n = self.frames.len();
        const MAX_ROUNDS: usize = 256;
        let mut fully_pinned_sweeps = 0;
        let mut rounds = 0;
        while fully_pinned_sweeps < 3 && rounds < MAX_ROUNDS {
            rounds += 1;
            let mut saw_unpinned = false;
            // Up to two full sweeps per round: the first clears used bits,
            // the second takes any unpinned frame (the serial bound).
            for _ in 0..2 * n + 1 {
                let i = self.hand.fetch_add(1, Ordering::Relaxed) % n;
                let f = &self.frames[i];
                if f.pins.load(Ordering::Acquire) != 0 {
                    continue;
                }
                saw_unpinned = true;
                if f.used.swap(false, Ordering::Relaxed) {
                    continue;
                }
                if f.pins
                    .compare_exchange(0, EVICT_CLAIM, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                self.evict_claimed(i)?;
                return Ok(i);
            }
            if saw_unpinned {
                // Lost every candidate to concurrent traffic; go again,
                // backing off harder as rounds accumulate so competing
                // claimants and latch holders can drain.
                if rounds > 16 {
                    std::thread::sleep(std::time::Duration::from_micros((rounds as u64).min(500)));
                } else {
                    std::thread::yield_now();
                }
            } else {
                fully_pinned_sweeps += 1;
            }
        }
        Err(Error::Internal(
            "buffer pool exhausted: no evictable frame (all pinned or lost to churn)".into(),
        ))
    }

    /// Finish evicting a frame the caller has just claimed (its pin count
    /// is `EVICT_CLAIM`): write back a dirty victim *before* unmapping it
    /// (WAL rule first; a flush failure leaves the page reachable and
    /// consistent, with the claim released), drop its old mapping, and
    /// drain fast-path readers that pinned before the unmapping.
    fn evict_claimed(&self, idx: usize) -> Result<()> {
        let f = &self.frames[idx];
        let tag = f.tag.load(Ordering::Acquire);
        if tag == TAG_FREE {
            return Ok(());
        }
        {
            let mut st = f.state.write();
            if st.dirty {
                // tidy: allow(lock-across-io) -- frame latch must cover WAL-first flush of the victim
                self.log.flush_to(st.page.page_lsn());
                // tidy: allow(lock-across-io) -- writeback under the frame latch; pool-level locks are not held
                if let Err(e) = self.with_io_retry(|| self.fm.write_page(st.pid, &st.page)) {
                    drop(st);
                    // The victim is still mapped, so transient fast-path
                    // pins may be in flight: release the claim
                    // arithmetically, never by store.
                    f.pins.fetch_sub(EVICT_CLAIM, Ordering::AcqRel);
                    return Err(e);
                }
                st.dirty = false;
                st.rec_lsn = Lsn::NULL;
            }
        }
        {
            let mut map = self.shard_of_raw(tag).map.write();
            if map.get(&tag) == Some(&idx) {
                map.remove(&tag);
            }
        }
        // Drain fast-path readers that pinned before the unmapping.
        while f.pins.load(Ordering::Acquire) != EVICT_CLAIM {
            std::thread::yield_now();
        }
        self.stats.incr(PS_EVICTIONS);
        self.obs.record(EventKind::BufferEvict, 0, tag, 0);
        Ok(())
    }

    /// Release a claimed frame back to the free state.
    ///
    /// The claim is dropped with `fetch_sub`, not a store: a stale mapping
    /// orphaned by `drop_cache` can still point at this frame, so a
    /// fast-path reader may have a transient `fetch_add`/`fetch_sub`
    /// back-out pair in flight — a store between the two would wrap the
    /// pin count.
    fn release_claim(&self, idx: usize) {
        let f = &self.frames[idx];
        {
            let mut st = f.state.write();
            st.pid = PageId::INVALID;
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
            st.mods_since_fpi = 0;
            f.tag.store(TAG_FREE, Ordering::Release);
        }
        f.pins.fetch_sub(EVICT_CLAIM, Ordering::AcqRel);
    }

    /// Claim a victim frame from `part`'s own ring instead of the global
    /// clock, or reserve a budget slot for a fresh global claim.
    fn claim_from_ring(&self, part: &ScanPartition) -> Result<RingClaim> {
        let mut ring = part.ring.lock();
        // In-flight loads (ring reuses AND pending fresh fills) still own
        // their budget slots. Reserving the fill slot *under the ring lock*
        // is what makes the bound hold under concurrency: without it, N
        // workers could each see the ring one below budget and claim N
        // fresh global victims.
        if ring.len() + part.in_flight.load(Ordering::Relaxed) < part.budget {
            part.in_flight.fetch_add(1, Ordering::Relaxed);
            return Ok(RingClaim::Fresh);
        }
        for _ in 0..ring.len() {
            let Some((idx, old_pid)) = ring.pop_front() else {
                break; // rotation never grows the ring past its scan length
            };
            let f = &self.frames[idx];
            if f.tag.load(Ordering::Acquire) != old_pid {
                // The global clock (or drop_cache) recycled this frame for
                // other traffic since the scan loaded it; the entry is
                // dead. Do NOT victimize whatever lives there now — that
                // would be exactly the working-set damage the partition
                // exists to prevent.
                continue;
            }
            if f.pins
                .compare_exchange(0, EVICT_CLAIM, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                // Transiently pinned (another scan worker, or a live reader
                // that found the page useful): rotate to the back, try the
                // next-oldest.
                ring.push_back((idx, old_pid));
                continue;
            }
            // Re-verify ownership now that the claim blocks recycling: the
            // global clock may have evicted our page and a live reload may
            // have landed between the tag check and the CAS. Backing out
            // drops only the claim (arithmetic — transient back-out pins
            // may be in flight), leaving the live page untouched; the
            // entry is dead either way. Only `drop_cache` can change the
            // tag from here on, and `evict_claimed` copes with that.
            if f.tag.load(Ordering::Acquire) != old_pid {
                f.pins.fetch_sub(EVICT_CLAIM, Ordering::AcqRel);
                continue;
            }
            // The popped slot stays charged to the partition until the
            // reload is recorded (or abandoned).
            part.in_flight.fetch_add(1, Ordering::Relaxed);
            drop(ring);
            if let Err(e) = self.evict_claimed(idx) {
                part.end_reuse();
                return Err(e);
            }
            return Ok(RingClaim::Reused(idx));
        }
        // Every entry was stale or transiently pinned: an *uncharged*
        // global fallback keeps the scan live. With the two-frames-per-
        // reader floor the snapshot layer enforces, an all-pinned ring is
        // not a sustained state, so fallbacks stay rare.
        Ok(RingClaim::Fallback)
    }

    /// Miss path: claim a victim, load `pid` into it, publish the mapping.
    /// Returns `None` when a racer published `pid` between our fast-path
    /// miss and the publish step *and* we could not adopt its frame.
    ///
    /// With a [`ScanPartition`], the victim comes from the partition's own
    /// ring once it is at budget, and the loaded frame is published with
    /// the reference bit **clear** — cold scan pages are the global clock's
    /// preferred victims, never its protected residents.
    fn load_miss_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
        staged: Option<Result<Page>>,
    ) -> Result<Option<usize>> {
        let (idx, charged) = match scan {
            Some(part) => match self.claim_from_ring(part)? {
                RingClaim::Reused(i) => (i, true),
                RingClaim::Fresh => match self.claim_victim() {
                    Ok(i) => (i, true),
                    Err(e) => {
                        part.end_reuse();
                        return Err(e);
                    }
                },
                RingClaim::Fallback => (self.claim_victim()?, false),
            },
            None => (self.claim_victim()?, false),
        };
        // A charged claim (ring reuse or reserved fresh fill) keeps its
        // budget slot until its load is recorded; abandoning it must
        // release the slot.
        let abandon_claim = || {
            if let (true, Some(part)) = (charged, scan) {
                part.end_reuse();
            }
        };
        // A racer may have published `pid` while we were claiming (and
        // possibly writing back) the victim: re-probe before paying the
        // read I/O, handing the claimed frame back free on a hit.
        {
            let map = self.read_map(self.shard_of_raw(pid.0));
            if map.contains_key(&pid.0) {
                drop(map);
                self.release_claim(idx);
                abandon_claim();
                return Ok(None);
            }
        }
        let f = &self.frames[idx];
        let fill_started = self.obs.now_us();
        {
            // Exclusive by construction: the frame is claimed and unmapped,
            // so only crash simulation can race this latch.
            let mut st = f.state.write();
            let first = match staged {
                // The staged slot of a vectored batch replaces the device
                // read; hardening (retry, salvage) resumes from it exactly
                // as if `fm.read_page` had just returned it.
                Some(r) => r,
                // tidy: allow(lock-across-io) -- miss fill reads under the claimed frame's latch; no pool-level locks are held
                None => self.fm.read_page(pid),
            };
            match self.hardened_from(pid, first) {
                Ok(page) => st.page = page,
                Err(e) => {
                    drop(st);
                    self.release_claim(idx);
                    abandon_claim();
                    return Err(e);
                }
            }
            st.pid = pid;
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
            st.mods_since_fpi = 0;
            f.tag.store(pid.0, Ordering::Release);
        }
        self.stats.incr(PS_MISSES);
        self.obs.record(
            EventKind::BufferMiss,
            0,
            pid.0,
            self.obs.now_us().saturating_sub(fill_started),
        );
        let shard = self.shard_of_raw(pid.0);
        let mut map = shard.map.write();
        if let Some(&other) = map.get(&pid.0) {
            // A racer loaded the page first. Try to adopt its frame — but
            // it may itself already be claimed for eviction (the claim CAS
            // happens before the evictor reaches this shard's lock), and
            // our own image may predate a write-back of that frame, so on
            // a claimed racer we discard everything and retry from the
            // fast path instead.
            let of = &self.frames[other];
            let prev = of.pins.fetch_add(1, Ordering::AcqRel);
            if prev >= EVICT_CLAIM {
                of.pins.fetch_sub(1, Ordering::AcqRel);
                drop(map);
                self.release_claim(idx);
                abandon_claim();
                std::thread::yield_now();
                return Ok(None);
            }
            of.used.store(true, Ordering::Relaxed);
            drop(map);
            self.release_claim(idx);
            abandon_claim();
            return Ok(Some(other));
        }
        // Publish: convert the claim into the caller's pin *before* the
        // mapping becomes visible. Arithmetic, not a store: a stale
        // drop_cache-orphaned mapping may still aim transient back-out
        // pins at this frame. Partition loads leave the reference bit
        // clear — a use-once scan page must not earn clock protection just
        // by arriving.
        f.pins.fetch_sub(EVICT_CLAIM - 1, Ordering::AcqRel);
        f.used.store(scan.is_none(), Ordering::Relaxed);
        map.insert(pid.0, idx);
        drop(map);
        if let Some(part) = scan {
            part.record_load(idx, pid.0, charged);
        }
        Ok(Some(idx))
    }

    fn unpin(&self, idx: usize) {
        self.frames[idx].pins.fetch_sub(1, Ordering::AcqRel);
    }

    /// Drop a mapping that points at a frame no longer holding `pid`
    /// (orphaned by `drop_cache`), so retries make progress.
    fn forget_stale(&self, pid: PageId, idx: usize) {
        let shard = self.shard_of_raw(pid.0);
        let mut map = shard.map.write();
        if map.get(&pid.0) == Some(&idx) && self.frames[idx].tag.load(Ordering::Acquire) != pid.0 {
            map.remove(&pid.0);
        }
    }

    /// Create a pin-limited [`ScanPartition`] over this pool. `budget` is
    /// clamped to `[1, capacity/2]` — a partition may never monopolize the
    /// pool it is supposed to protect.
    pub fn scan_partition(&self, budget: usize) -> ScanPartition {
        let cap = self.frames.len();
        ScanPartition {
            budget: budget.clamp(1, (cap / 2).max(1)),
            ring: Mutex::new(VecDeque::new()),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Acquire a shared, revalidated read guard on page `pid`. The guard
    /// dereferences to [`Page`] and releases latch + pin on drop.
    pub fn read_page(&self, pid: PageId) -> Result<PageReadGuard<'_>> {
        self.read_page_in(pid, None)
    }

    /// [`BufferPool::read_page`], with cold misses optionally routed
    /// through a [`ScanPartition`] (bounded frame budget, ring reuse).
    /// Hits — and therefore hit/IO accounting of anything resident — are
    /// identical to the default path.
    pub fn read_page_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
    ) -> Result<PageReadGuard<'_>> {
        self.read_page_staged_in(pid, scan, None)
    }

    /// [`BufferPool::read_page_in`] with an optional staged first read
    /// attempt from [`BufferPool::stage_read_run`]. A cold miss consumes
    /// the staged result instead of issuing its own device read; everything
    /// else — hit classification, victim choice, eviction accounting,
    /// retry/salvage hardening — is bit-identical to the unstaged path.
    pub fn read_page_staged_in(
        &self,
        pid: PageId,
        scan: Option<&ScanPartition>,
        staged: Option<Result<Page>>,
    ) -> Result<PageReadGuard<'_>> {
        let mut staged = staged;
        loop {
            let idx = self.fetch_pin_staged_in(pid, scan, staged.take())?;
            let st = self.frames[idx].state.read();
            if st.pid == pid {
                return Ok(PageReadGuard {
                    pool: self,
                    idx,
                    guard: Some(st),
                });
            }
            // Invalidated under our pin (crash simulation): clean up, retry.
            drop(st);
            self.unpin(idx);
            self.forget_stale(pid, idx);
        }
    }

    /// Vector-read the non-resident pages of `pids` through the backend's
    /// [`IoBackend::read_pages`], in chunks of at most
    /// [`BufferPool::io_batch_pages`] pages, and return the staged per-page
    /// results for consumption by [`BufferPool::read_page_staged_in`].
    ///
    /// Resident pages are skipped (a scalar trace would not have read them
    /// — it would have *hit*), so for a serial trace every staged read
    /// corresponds to exactly one subsequent miss and per-page accounting
    /// stays bit-identical to the scalar backend; contiguous ids inside a
    /// chunk coalesce into single device ops. With batch size 1 (or an
    /// empty filter result) this degenerates to exactly the scalar path.
    pub fn stage_read_run(&self, pids: &[PageId]) -> Vec<(PageId, Result<Page>)> {
        let batch = self.io_batch_pages();
        if batch <= 1 {
            // Scalar configuration: nothing to stage; callers fall through
            // to plain per-page reads.
            return Vec::new();
        }
        let wanted: Vec<PageId> = pids
            .iter()
            .copied()
            .filter(|&pid| pid.is_valid() && !self.contains(pid))
            .collect();
        let mut out = Vec::with_capacity(wanted.len());
        for chunk in wanted.chunks(batch) {
            let results = self.fm.read_pages(chunk);
            out.extend(chunk.iter().copied().zip(results));
        }
        out
    }

    /// Run `f` with a shared latch on page `pid` (sugar over
    /// [`BufferPool::read_page`]).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let guard = self.read_page(pid)?;
        f(&guard)
    }

    /// Run `f` with an exclusive latch on page `pid`.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut FrameView<'_>) -> Result<R>,
    ) -> Result<R> {
        self.with_page_mut_staged(pid, None, f)
    }

    /// [`BufferPool::with_page_mut`] with an optional staged first read for
    /// `pid` (one slot of a [`BufferPool::stage_read_run`] batch). A miss
    /// consumes the staged result instead of issuing its own device read;
    /// classification and accounting are untouched. Callers must ensure the
    /// staged bytes are still current — i.e. nothing can have written `pid`
    /// since the batch was staged (restart's redo partitioning guarantees
    /// this: one worker owns all records of a page).
    pub fn with_page_mut_staged<R>(
        &self,
        pid: PageId,
        staged: Option<Result<Page>>,
        f: impl FnOnce(&mut FrameView<'_>) -> Result<R>,
    ) -> Result<R> {
        let mut staged = staged;
        loop {
            let idx = self.fetch_pin_staged_in(pid, None, staged.take())?;
            let frame = &self.frames[idx];
            let mut st = frame.state.write();
            if st.pid == pid {
                let res = f(&mut FrameView { state: &mut st });
                debug_assert!(
                    !st.dirty || st.rec_lsn <= st.page.page_lsn(),
                    "recLSN must never pass pageLSN"
                );
                drop(st);
                self.unpin(idx);
                return res;
            }
            drop(st);
            self.unpin(idx);
            self.forget_stale(pid, idx);
        }
    }

    /// Whether `pid` is currently resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.read_map(self.shard_of_raw(pid.0)).contains_key(&pid.0)
    }

    /// Flush one page if resident and dirty.
    pub fn flush_page(&self, pid: PageId) -> Result<()> {
        let idx = {
            let map = self.read_map(self.shard_of_raw(pid.0));
            match map.get(&pid.0) {
                Some(&i) => i,
                None => return Ok(()),
            }
        };
        let mut st = self.frames[idx].state.write();
        if st.pid == pid && st.dirty {
            // tidy: allow(lock-across-io) -- frame latch must cover WAL-first flush of this page
            self.log.flush_to(st.page.page_lsn());
            // tidy: allow(lock-across-io) -- writeback under the frame latch; pool-level locks are not held
            self.with_io_retry(|| self.fm.write_page(st.pid, &st.page))?;
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
        }
        Ok(())
    }

    /// Flush every dirty page (blocking on in-flight latches). After this,
    /// every logged change up to the flush point is durable in the file —
    /// the property as-of snapshot creation needs (§5.1).
    pub fn flush_all(&self) -> Result<()> {
        self.flush_matching(Lsn::MAX)
    }

    /// Flush dirty pages whose recLSN is older than `before` (blocking on
    /// in-flight latches). The incremental half of fuzzy checkpointing:
    /// after this, every page first dirtied before `before` is durable, so
    /// the dirty-page table a subsequent checkpoint captures has
    /// `recLSN >= before` — which is what bounds the crash-redo window to
    /// the checkpoint cadence instead of the whole log.
    pub fn flush_older_than(&self, before: Lsn) -> Result<()> {
        self.flush_matching(before)
    }

    /// Flush dirty pages with `recLSN < before` (`Lsn::MAX` = all), scalar
    /// or through the background writeback pool per the pool's
    /// [`PoolIoConfig`].
    fn flush_matching(&self, before: Lsn) -> Result<()> {
        match &self.writeback {
            Some(wb) => self.flush_matching_batched(wb, before),
            None => self.flush_matching_scalar(before),
        }
    }

    fn flush_matching_scalar(&self, before: Lsn) -> Result<()> {
        for frame in &self.frames {
            let mut st = frame.state.write();
            if st.pid.is_valid() && st.dirty && st.rec_lsn < before {
                // tidy: allow(lock-across-io) -- frame latch must cover WAL-first flush of this page
                self.log.flush_to(st.page.page_lsn());
                // tidy: allow(lock-across-io) -- writeback under the frame latch; pool-level locks are not held
                self.with_io_retry(|| self.fm.write_page(st.pid, &st.page))?;
                st.dirty = false;
                st.rec_lsn = Lsn::NULL;
            }
        }
        Ok(())
    }

    /// Batched flush: clone qualifying dirty pages under their (shared)
    /// latches, force the log once per submitted batch (WAL rule — the log
    /// is ahead of every clone before its batch can be written), hand
    /// contiguous runs to the writeback pool, and only after draining clear
    /// the dirty bit of pages whose write landed *and* whose content is
    /// unchanged since the clone. Pages that failed — or were re-dirtied
    /// mid-flight — stay dirty, so a deferred writeback error can degrade
    /// checkpoint progress but never durability. The checkpointer daemon
    /// thereby stops serializing on per-page `write_page`: it pays clone
    /// cost up front and the device time lands on writeback threads.
    fn flush_matching_batched(&self, wb: &WritebackPool, before: Lsn) -> Result<()> {
        // One batched flush at a time: drained per-page outcomes belong to
        // exactly one flush.
        let _gate = self.flush_gate.lock();
        // Pass 1: snapshot qualifying dirty pages (pid, clone, pageLSN).
        let mut candidates: Vec<(PageId, Page, Lsn)> = Vec::new();
        for frame in &self.frames {
            let st = frame.state.read();
            if st.pid.is_valid() && st.dirty && st.rec_lsn < before {
                candidates.push((st.pid, st.page.clone(), st.page.page_lsn()));
            }
        }
        if candidates.is_empty() {
            return Ok(());
        }
        // Sort by pid so physically adjacent pages land in the same batch
        // and coalesce into single device ops.
        candidates.sort_by_key(|(pid, _, _)| *pid);
        let batch = self.io_batch_pages();
        for chunk in candidates.chunks(batch) {
            let mut high = Lsn::NULL;
            for (_, _, lsn) in chunk {
                high = high.max(*lsn);
            }
            // WAL rule, once per batch: the log covers every clone in the
            // batch before any of its pages can reach the device.
            // tidy: allow(lock-across-io) -- flush serialization gate, not a data lock; WAL-first ordering requires it held
            self.log.flush_to(high);
            wb.submit(chunk.iter().map(|(p, pg, _)| (*p, pg.clone())).collect());
        }
        let (succeeded, failed) = wb.drain();
        // Pass 2: clear dirty bits only for pages that landed unchanged.
        for pid in succeeded {
            let idx = {
                let map = self.read_map(self.shard_of_raw(pid.0));
                match map.get(&pid.0) {
                    Some(&i) => i,
                    None => continue, // evicted mid-flight (already clean)
                }
            };
            let cloned_lsn = candidates
                .binary_search_by_key(&pid, |(p, _, _)| *p)
                .ok()
                .map(|i| candidates[i].2);
            let mut st = self.frames[idx].state.write();
            if st.pid == pid && st.dirty && Some(st.page.page_lsn()) == cloned_lsn {
                st.dirty = false;
                st.rec_lsn = Lsn::NULL;
            }
            // A page re-dirtied since its clone keeps its dirty bit and
            // recLSN: the clone that landed is consistent but stale, and
            // the next flush owes the device the newer version.
        }
        if let Some((_pid, e)) = failed.into_iter().next() {
            // Surface one failure (the page stays dirty and reachable);
            // the checkpointer defers it like any background error.
            return Err(e);
        }
        Ok(())
    }

    /// The ARIES dirty-page table: (page, recLSN) for every dirty frame.
    pub fn dirty_page_table(&self) -> Vec<DptEntry> {
        let mut dpt = Vec::new();
        for frame in &self.frames {
            let st = frame.state.read();
            if st.pid.is_valid() && st.dirty {
                dpt.push(DptEntry {
                    page: st.pid,
                    rec_lsn: st.rec_lsn,
                });
            }
        }
        dpt.sort_by_key(|e| e.page);
        dpt
    }

    /// Throw away all cached state *without* flushing — simulates a crash:
    /// buffer contents are volatile; the file and the flushed log survive.
    ///
    /// Pin counts are deliberately left alone (they belong to in-flight
    /// accessors, which revalidate and retry); any mapping published by a
    /// racing load is either cleared here or swept lazily by the stale-entry
    /// path.
    pub fn drop_cache(&self) {
        for shard in &self.shards {
            shard.map.write().clear();
        }
        for frame in &self.frames {
            let mut st = frame.state.write();
            st.pid = PageId::INVALID;
            st.page = Page::zeroed();
            st.dirty = false;
            st.rec_lsn = Lsn::NULL;
            st.mods_since_fpi = 0;
            frame.tag.store(TAG_FREE, Ordering::Release);
            frame.used.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_common::{ObjectId, TxnId};
    use rewind_pagestore::{FileManager, MemFileManager, PageType};
    use rewind_wal::{LogConfig, LogPayload, LogRecord};

    fn setup(cap: usize) -> (Arc<MemFileManager>, Arc<LogManager>, BufferPool) {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm.clone(), log.clone(), cap);
        (fm, log, pool)
    }

    fn format_on(pool: &BufferPool, pid: PageId, lsn: Lsn) {
        pool.with_page_mut(pid, |v| {
            v.page_mut().format(pid, ObjectId(1), PageType::Heap);
            v.page_mut().set_page_lsn(lsn);
            v.mark_dirty(lsn);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn read_through_and_write_back() {
        let (fm, _log, pool) = setup(8);
        format_on(&pool, PageId(3), Lsn(10));
        pool.with_page(PageId(3), |p| {
            assert_eq!(p.page_type(), PageType::Heap);
            Ok(())
        })
        .unwrap();
        // not yet on disk
        assert_eq!(fm.read_page(PageId(3)).unwrap().page_type(), PageType::Free);
        pool.flush_all().unwrap();
        assert_eq!(fm.read_page(PageId(3)).unwrap().page_type(), PageType::Heap);
    }

    #[test]
    fn wal_rule_forces_log_before_page_write() {
        let (_fm, log, pool) = setup(8);
        // Append a record but do not flush the log.
        let lsn = log.append(&LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: PageId(3),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![1],
            },
        });
        assert!(log.flushed_lsn() <= lsn);
        format_on(&pool, PageId(3), lsn);
        pool.flush_page(PageId(3)).unwrap();
        assert!(
            log.flushed_lsn() > lsn,
            "log must be forced up to pageLSN before page write"
        );
    }

    #[test]
    fn eviction_respects_capacity_and_persists_dirty_pages() {
        let (fm, _log, pool) = setup(4);
        for i in 1..=20u64 {
            format_on(&pool, PageId(i), Lsn(i));
        }
        // every page readable back with its content (dirty evictions flushed)
        for i in 1..=20u64 {
            pool.with_page(PageId(i), |p| {
                assert_eq!(p.page_id(), PageId(i));
                assert_eq!(p.page_type(), PageType::Heap);
                Ok(())
            })
            .unwrap();
        }
        assert!(fm.page_count() >= 20);
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn dirty_page_table_tracks_first_dirtier() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(2), Lsn(5));
        // second modification must not advance recLSN
        pool.with_page_mut(PageId(2), |v| {
            v.page_mut().set_page_lsn(Lsn(9));
            v.mark_dirty(Lsn(9));
            Ok(())
        })
        .unwrap();
        let dpt = pool.dirty_page_table();
        assert_eq!(dpt.len(), 1);
        assert_eq!(dpt[0].page, PageId(2));
        assert_eq!(dpt[0].rec_lsn, Lsn(5));
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
    }

    #[test]
    fn drop_cache_loses_unflushed_state() {
        let (fm, _log, pool) = setup(8);
        format_on(&pool, PageId(7), Lsn(3));
        pool.drop_cache();
        assert!(!pool.contains(PageId(7)));
        // the file never saw the page
        assert_eq!(fm.read_page(PageId(7)).unwrap().page_type(), PageType::Free);
        // and a fresh read loads the (empty) disk version
        pool.with_page(PageId(7), |p| {
            assert_eq!(p.page_type(), PageType::Free);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn fpi_counter_is_per_frame() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(1), Lsn(1));
        pool.with_page_mut(PageId(1), |v| {
            assert_eq!(v.bump_fpi_counter(), 1);
            assert_eq!(v.bump_fpi_counter(), 2);
            v.reset_fpi_counter();
            assert_eq!(v.bump_fpi_counter(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (_fm, _log, pool) = setup(16);
        let pool = Arc::new(pool);
        for i in 1..=8u64 {
            format_on(&pool, PageId(i), Lsn(i));
        }
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for round in 0..200u64 {
                        let pid = PageId(1 + (t as u64 + round) % 8);
                        if round % 3 == 0 {
                            pool.with_page_mut(pid, |v| {
                                let lsn = Lsn(1000 + round);
                                v.page_mut().set_page_lsn(lsn);
                                v.mark_dirty(lsn);
                                Ok(())
                            })
                            .unwrap();
                        } else {
                            pool.with_page(pid, |p| {
                                assert_eq!(p.page_id(), pid);
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(pool.pinned_frames(), 0, "no lost pins");
    }

    #[test]
    fn invalid_page_rejected() {
        let (_fm, _log, pool) = setup(4);
        assert!(pool.with_page(PageId::INVALID, |_| Ok(())).is_err());
    }

    #[test]
    fn read_guard_pins_then_releases() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(3), Lsn(4));
        {
            let g = pool.read_page(PageId(3)).unwrap();
            assert_eq!(g.page_id(), PageId(3));
            assert_eq!(g.page_lsn(), Lsn(4));
            assert_eq!(pool.pinned_frames(), 1, "guard holds the pin");
            // a second reader shares the latch
            let g2 = pool.read_page(PageId(3)).unwrap();
            assert_eq!(g2.page_lsn(), Lsn(4));
        }
        assert_eq!(pool.pinned_frames(), 0, "drop releases latch and pin");
    }

    #[test]
    fn page_read_unifies_frame_and_image() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(5), Lsn(9));
        let frame: PageRead<'_> = pool.read_page(PageId(5)).unwrap().into();
        assert!(frame.is_latched());
        assert_eq!(frame.page_lsn(), Lsn(9));
        let image: PageRead<'_> = PageImage::new(frame.clone()).into();
        drop(frame);
        assert!(!image.is_latched());
        assert_eq!(image.page_lsn(), Lsn(9));
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn scan_partition_bounds_cold_stream_damage() {
        let (_fm, _log, pool) = setup(32);
        // Establish a live working set filling most of the pool.
        let working: Vec<PageId> = (1..=24u64).map(PageId).collect();
        for &pid in &working {
            pool.with_page(pid, |_| Ok(())).unwrap();
        }
        // Re-touch so every working frame has its reference bit set.
        for &pid in &working {
            pool.with_page(pid, |_| Ok(())).unwrap();
        }
        // Cold stream 4x the pool size through a 4-frame partition.
        let part = pool.scan_partition(4);
        for pid in 100..=228u64 {
            let g = pool.read_page_in(PageId(pid), Some(&part)).unwrap();
            assert_eq!(g.page_id(), PageId(0), "fresh pages read as zeroed");
        }
        assert!(part.frames_held() <= part.budget());
        // The stream may claim at most its budget from the working set
        // (initial fills come from the global clock until the ring is at
        // budget; everything after reuses the ring).
        let still_resident = working.iter().filter(|&&p| pool.contains(p)).count();
        assert!(
            still_resident >= working.len() - part.budget(),
            "scan evicted more than its budget: {} of {} resident",
            still_resident,
            working.len()
        );
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn scan_partition_budget_is_clamped() {
        let (_fm, _log, pool) = setup(8);
        assert_eq!(pool.scan_partition(0).budget(), 1);
        assert_eq!(pool.scan_partition(100).budget(), 4, "at most capacity/2");
    }

    #[test]
    fn unpartitioned_path_unaffected_by_partition_existence() {
        let (_fm, _log, pool) = setup(8);
        let _part = pool.scan_partition(2);
        format_on(&pool, PageId(1), Lsn(1)); // miss
        pool.with_page(PageId(1), |_| Ok(())).unwrap(); // hit
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn hit_miss_counters_track_serial_accesses() {
        let (_fm, _log, pool) = setup(8);
        format_on(&pool, PageId(1), Lsn(1)); // miss
        pool.with_page(PageId(1), |_| Ok(())).unwrap(); // hit
        pool.with_page(PageId(2), |_| Ok(())).unwrap(); // miss
        let s = pool.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn shard_count_is_power_of_two_and_single_shard_works() {
        let fm = Arc::new(MemFileManager::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::with_shards(fm, log, 8, 3);
        assert_eq!(pool.shard_count(), 4);
        format_on(&pool, PageId(9), Lsn(1));
        pool.with_page(PageId(9), |p| {
            assert_eq!(p.page_id(), PageId(9));
            Ok(())
        })
        .unwrap();
    }

    /// A file manager that fails the next N reads/writes — exercises the
    /// claim-release error paths that `MemFileManager` can never reach.
    struct FaultyFm {
        inner: MemFileManager,
        fail_reads: AtomicU32,
        fail_writes: AtomicU32,
    }

    impl FaultyFm {
        fn new() -> Self {
            FaultyFm {
                inner: MemFileManager::new(),
                fail_reads: AtomicU32::new(0),
                fail_writes: AtomicU32::new(0),
            }
        }

        fn trip(counter: &AtomicU32) -> bool {
            counter
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok()
        }
    }

    impl rewind_pagestore::FileManager for FaultyFm {
        fn read_page(&self, pid: PageId) -> Result<Page> {
            if Self::trip(&self.fail_reads) {
                return Err(Error::Internal("injected read fault".into()));
            }
            self.inner.read_page(pid)
        }
        fn read_page_seq(&self, pid: PageId) -> Result<Page> {
            self.inner.read_page_seq(pid)
        }
        fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
            if Self::trip(&self.fail_writes) {
                return Err(Error::Internal("injected write fault".into()));
            }
            self.inner.write_page(pid, page)
        }
        fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()> {
            self.inner.write_page_seq(pid, page)
        }
        fn page_count(&self) -> u64 {
            self.inner.page_count()
        }
        fn grow_to(&self, count: u64) -> Result<()> {
            self.inner.grow_to(count)
        }
        fn sync(&self) -> Result<()> {
            self.inner.sync()
        }
        fn io_stats(&self) -> &Arc<rewind_common::IoStats> {
            self.inner.io_stats()
        }
    }

    // Default (scalar-delegating) batched methods suffice for these tests.
    impl rewind_pagestore::IoBackend for FaultyFm {}

    #[test]
    fn read_fault_on_miss_releases_claim_and_pool_recovers() {
        let fm = Arc::new(FaultyFm::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm.clone(), log, 4);
        fm.fail_reads.store(1, Ordering::Release);
        assert!(pool.with_page(PageId(1), |_| Ok(())).is_err());
        // The claimed frame was handed back: no pins, and the same access
        // succeeds once the device recovers.
        assert_eq!(pool.pinned_frames(), 0);
        pool.with_page(PageId(1), |_| Ok(())).unwrap();
        for i in 2..=10u64 {
            pool.with_page(PageId(i), |_| Ok(())).unwrap();
        }
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn write_fault_on_dirty_eviction_keeps_victim_reachable() {
        let fm = Arc::new(FaultyFm::new());
        let log = Arc::new(LogManager::new(LogConfig::default()));
        let pool = BufferPool::new(fm.clone(), log, 4);
        format_on(&pool, PageId(1), Lsn(1));
        for i in 2..=4u64 {
            pool.with_page(PageId(i), |_| Ok(())).unwrap();
        }
        // Keep faulting misses in until the one that has to evict the
        // (sole) dirty frame trips the injected write failure.
        fm.fail_writes.store(1, Ordering::Release);
        let mut tripped = false;
        for i in 5..=20u64 {
            if pool.with_page(PageId(i), |_| Ok(())).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "eviction write-back fault must surface");
        assert_eq!(pool.pinned_frames(), 0, "claim released on write fault");
        // The dirty victim stayed mapped with its content intact...
        assert!(pool.contains(PageId(1)));
        pool.with_page(PageId(1), |p| {
            assert_eq!(p.page_type(), PageType::Heap);
            Ok(())
        })
        .unwrap();
        // ...and once the device recovers, eviction proceeds and the page
        // lands on disk.
        for i in 5..=12u64 {
            pool.with_page(PageId(i), |_| Ok(())).unwrap();
        }
        pool.flush_all().unwrap();
        assert_eq!(
            fm.read_page(PageId(1)).unwrap().page_type(),
            PageType::Heap,
            "dirty page survived the injected fault"
        );
    }

    #[test]
    fn readers_race_drop_cache_without_lost_pins() {
        let (_fm, _log, pool) = setup(8);
        let pool = Arc::new(pool);
        for i in 1..=6u64 {
            format_on(&pool, PageId(i), Lsn(i));
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for round in 0..300u64 {
                        let pid = PageId(1 + (t + round) % 6);
                        pool.with_page(pid, |p| {
                            // never torn: the latched frame holds exactly
                            // the requested (or zeroed-on-disk) page
                            assert!(
                                p.page_id() == pid || p.page_id() == PageId(0),
                                "torn frame: wanted {pid:?} got {:?}",
                                p.page_id()
                            );
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
            let pool = pool.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    pool.drop_cache();
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(pool.pinned_frames(), 0, "no lost pins after crash races");
    }
}
