//! Page salvage: rebuild a checksum-bad page from its per-page log chain.
//!
//! When a page image fails verification at buffer-pool miss time (bit rot,
//! torn write), the on-media copy is worthless — but the log retains every
//! modification the page ever took within the retention window, threaded on
//! the `prev_page_lsn` chain the paper's `PreparePageAsOf` walks (§4). The
//! salvage path runs that machinery *forward* at "now" instead of backward
//! to a point in time:
//!
//! 1. scan the retained log for the newest record touching the page (the
//!    chain tip — the on-media copy can never be newer than the durable
//!    log, because the WAL rule flushes the log before every page write);
//! 2. walk `prev_page_lsn` backward to a rebuild origin: the newest full
//!    page image, or the page's birth (`Format`/`Preformat`,
//!    `prev_page_lsn = NULL`) if no FPI survives;
//! 3. redo the chain forward from a zeroed frame.
//!
//! The result is exactly the durable prefix of the page — the same state
//! crash recovery would produce. Salvage fails (typed
//! [`Error::Corruption`]) only when the chain itself is damaged: truncated
//! below the rebuild origin, or the log frames are themselves corrupt.

use rewind_common::{CorruptionKind, Error, Lsn, PageId, Result};
use rewind_pagestore::Page;
use rewind_wal::{LogManager, LogPayloadView};

/// Rebuild `pid` to its durable tip purely from the log. `cause` is the
/// verification error that triggered the salvage, carried into the failure
/// detail when the chain cannot deliver.
pub fn salvage_page(log: &LogManager, pid: PageId, cause: &Error) -> Result<Page> {
    let fail = |why: String| {
        Error::page_corruption(
            cause
                .corruption_kind()
                .unwrap_or(CorruptionKind::PageChecksum),
            pid,
            format!("page unsalvageable ({why}); original damage: {cause}"),
        )
    };

    // 1. Chain tip: newest page-op for `pid` in the retained, durable log.
    // Only flushed records participate — an unflushed tail record never
    // reached any on-media page image (WAL rule), and after a crash it is
    // discarded anyway.
    let mut tip = Lsn::NULL;
    log.scan_views(log.earliest_available_lsn(), log.flushed_lsn(), |h, _| {
        if h.page == pid && h.kind.is_page_op() {
            tip = h.lsn;
        }
        Ok(true)
    })
    .map_err(|e| fail(format!("log scan failed: {e}")))?;
    if !tip.is_valid() {
        return Err(fail("no log history for page in retention window".into()));
    }

    // 2. Walk backward to the rebuild origin, retaining each record ref —
    // the forward pass replays the retained refs instead of re-fetching
    // every chain LSN from the log (one log read per chain record, not
    // two; the refs pin their frames' bytes, so the rebuild window is read
    // in a single batch-shaped pass).
    let mut chain = Vec::new();
    let mut cur = tip;
    loop {
        let rec = log
            .get_record_ref(cur)
            .map_err(|e| fail(format!("page chain damaged at {cur}: {e}")))?;
        let (header, view) = rec
            .view()
            .map_err(|e| fail(format!("page chain damaged at {cur}: {e}")))?;
        if header.page != pid {
            return Err(fail(format!(
                "page chain reached record for {:?} at {cur}",
                header.page
            )));
        }
        let origin = matches!(view, LogPayloadView::FullPageImage { .. }) // newest FPI: everything older is redundant
            || !header.prev_page_lsn.is_valid(); // page birth: complete from a zeroed frame
        let prev = header.prev_page_lsn;
        chain.push((cur, rec));
        if origin {
            break;
        }
        cur = prev;
    }

    // 3. Redo forward from a zeroed frame (or the FPI, which is itself
    // restored by its own redo).
    let mut page = Page::zeroed();
    for (lsn, rec) in chain.iter().rev() {
        let view = rec
            .view()
            .map_err(|e| fail(format!("page chain damaged at {lsn}: {e}")))?
            .1;
        view.redo(&mut page, pid, *lsn)
            .map_err(|e| fail(format!("redo of {lsn} failed: {e}")))?;
    }
    Ok(page)
}
