//! Property tests: the slotted page against a `Vec<Vec<u8>>` shadow model,
//! and allocation-map bit operations against a boolean-array model.

use proptest::prelude::*;
use rewind_common::{ObjectId, PageId};
use rewind_pagestore::alloc::{
    count_allocated, find_free, format_map_page, get_state, set_state, PageState,
};
use rewind_pagestore::{Page, PageType};

#[derive(Clone, Debug)]
enum PageOp {
    Insert(u16, Vec<u8>),
    Delete(u16),
    Update(u16, Vec<u8>),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(s, b)| PageOp::Insert(s, b)),
        any::<u16>().prop_map(PageOp::Delete),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(s, b)| PageOp::Update(s, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn slotted_page_matches_shadow(ops in proptest::collection::vec(page_op(), 1..200)) {
        let mut page = Page::formatted(PageId(1), ObjectId(1), PageType::Heap);
        let mut shadow: Vec<Vec<u8>> = Vec::new();
        for op in ops {
            match op {
                PageOp::Insert(slot, bytes) => {
                    let slot = (slot as usize) % (shadow.len() + 1);
                    match page.insert_record(slot, &bytes) {
                        Ok(()) => shadow.insert(slot, bytes),
                        Err(_) => {
                            // only legitimate rejection: no room
                            prop_assert!(!page.can_insert(bytes.len()));
                        }
                    }
                }
                PageOp::Delete(slot) => {
                    if shadow.is_empty() { continue; }
                    let slot = (slot as usize) % shadow.len();
                    let old = page.delete_record(slot).unwrap();
                    prop_assert_eq!(&old, &shadow.remove(slot));
                }
                PageOp::Update(slot, bytes) => {
                    if shadow.is_empty() { continue; }
                    let slot = (slot as usize) % shadow.len();
                    match page.update_record(slot, &bytes) {
                        Ok(old) => {
                            prop_assert_eq!(&old, &shadow[slot]);
                            shadow[slot] = bytes;
                        }
                        Err(_) => {
                            prop_assert!(bytes.len() > shadow[slot].len());
                        }
                    }
                }
            }
            // invariant: every slot readable and equal to the shadow
            prop_assert_eq!(page.slot_count() as usize, shadow.len());
            for (i, expect) in shadow.iter().enumerate() {
                prop_assert_eq!(page.record(i).unwrap(), &expect[..]);
            }
        }
        // image roundtrip preserves everything
        let img = *page.image();
        let back = Page::from_image(&img).unwrap();
        for (i, expect) in shadow.iter().enumerate() {
            prop_assert_eq!(back.record(i).unwrap(), &expect[..]);
        }
    }

    #[test]
    fn alloc_bitmap_matches_model(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..300)) {
        let mut map = format_map_page(PageId(1));
        // model[i] = (allocated, ever)
        let mut model = vec![(false, false); 4096];
        model[0] = (true, true);
        model[1] = (true, true);
        for (idx, alloc) in ops {
            let idx = (idx as usize) % 4096;
            if idx <= 1 { continue; }
            let st = PageState { allocated: alloc, ever_allocated: alloc || model[idx].1 };
            set_state(&mut map, idx, st).unwrap();
            model[idx] = (st.allocated, st.ever_allocated);
        }
        for (idx, &(a, e)) in model.iter().enumerate() {
            let st = get_state(&map, idx).unwrap();
            prop_assert_eq!((st.allocated, st.ever_allocated), (a, e), "bit {}", idx);
        }
        let expect_count = model.iter().filter(|&&(a, _)| a).count();
        prop_assert_eq!(count_allocated(&map), expect_count);
        // find_free returns the first unallocated index
        let expect_free = model.iter().position(|&(a, _)| !a);
        prop_assert_eq!(find_free(&map, 0), expect_free);
    }
}
