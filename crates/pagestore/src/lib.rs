//! Pages and page storage for the `rewind` engine.
//!
//! This crate owns the on-"disk" representation layer:
//!
//! * [`Page`] — the 8 KiB slotted page, with the header fields the paper's
//!   mechanism relies on: `pageLSN` (§2.1) and `lastFpiLSN` (the full-page-
//!   image chain anchor, §6.1),
//! * [`alloc`] — the allocation-map page layout with *allocated* and
//!   *ever-allocated* bits (the latter lets first allocations skip preformat
//!   logging, §4.2),
//! * [`FileManager`] — random page I/O with accounting, in-memory and on-disk
//!   implementations,
//! * [`IoBackend`] — the batched extension of [`FileManager`]: vectored
//!   multi-page reads, batched writes, and the background [`WritebackPool`]
//!   (see the [`io`] module docs for the batching cost model),
//! * [`PageImage`] — an immutable, `Arc`-shared page image: the zero-copy
//!   currency of the snapshot read path,
//! * [`SideFile`] — the NTFS-sparse-file substitute backing database
//!   snapshots (§2.2, §5.3), a sharded store of [`PageImage`]s.

pub mod alloc;
pub mod fault;
pub mod file;
pub mod image;
pub mod io;
pub mod page;
pub mod side;

pub use fault::FaultInjector;
pub use file::{DiskFileManager, FileManager, MemFileManager};
pub use image::PageImage;
pub use io::{contiguous_runs, contiguous_runs_by, IoBackend, WritebackPool};
pub use page::{Page, PageType, HEADER_SIZE, PAGE_SIZE};
pub use side::SideFile;

// The shared counting allocator's "large allocation" threshold is sized to
// the page: every 8 KiB page clone must land in its large-alloc counter.
const _: () = assert!(PAGE_SIZE == rewind_common::testalloc::LARGE_ALLOC_MIN);
