//! [`PageImage`] — an immutable, `Arc`-shared page image.
//!
//! The snapshot read path serves the same prepared page version to many
//! concurrent readers (paper §5.3: once a page has been unwound to the
//! SplitLSN it is cached in the side file and every later access is a hit).
//! Cloning an 8 KiB [`Page`] per hit made the side file scale its *locking*
//! but not its *bytes*; a `PageImage` is the fix: one heap allocation,
//! shared by reference count, **immutable by construction** — the type
//! exposes no `&mut Page` access, so an image can be handed to any number
//! of readers without copies or latches.
//!
//! Invariants:
//!
//! * **Image immutability** — the wrapped `Page` is never modified after
//!   construction. Code that needs to derive a new version clones the
//!   underlying page ([`PageImage::to_page`]) and wraps the result in a
//!   *new* image (copy-on-write at page granularity).
//! * **Epoch stability** — because overwriting a side-file entry swaps the
//!   `Arc` rather than editing bytes, a reader holding an image keeps
//!   exactly the version it fetched, even while background logical undo
//!   replaces the stored entry (the split-consistency property the
//!   concurrency torture suite checks).
//!
//! `PageImage` lives here, next to [`Page`], rather than in `rewind-common`:
//! the page format is pagestore's, and `rewind-common` sits below it in the
//! crate graph (it hosts the generic striping/sharding helpers instead).

use crate::page::Page;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted page image. Cheap to clone (an `Arc`
/// bump); dereferences to [`Page`] for all read accessors.
#[derive(Clone, Debug)]
pub struct PageImage(Arc<Page>);

impl PageImage {
    /// Freeze `page` into an immutable shared image. Takes ownership — no
    /// copy is made; the page's allocation becomes the shared one.
    pub fn new(page: Page) -> PageImage {
        PageImage(Arc::new(page))
    }

    /// A mutable private copy of the image (one 8 KiB copy). This is the
    /// only way "out" of immutability: derive, then freeze the result into
    /// a new image.
    pub fn to_page(&self) -> Page {
        (*self.0).clone()
    }

    /// Whether two images are the same allocation (same version, not merely
    /// equal bytes).
    pub fn same_as(&self, other: &PageImage) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<Page> for PageImage {
    fn from(page: Page) -> PageImage {
        PageImage::new(page)
    }
}

impl Deref for PageImage {
    type Target = Page;

    #[inline]
    fn deref(&self) -> &Page {
        &self.0
    }
}

impl AsRef<Page> for PageImage {
    #[inline]
    fn as_ref(&self) -> &Page {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use rewind_common::{Lsn, ObjectId, PageId};

    #[test]
    fn image_shares_without_copying() {
        let mut p = Page::formatted(PageId(3), ObjectId(1), PageType::Heap);
        p.set_page_lsn(Lsn(9));
        let img = PageImage::new(p);
        let also = img.clone();
        assert!(img.same_as(&also));
        assert_eq!(also.page_lsn(), Lsn(9));
        assert_eq!(img.page_id(), PageId(3));
    }

    #[test]
    fn to_page_is_a_private_copy() {
        let img = PageImage::new(Page::formatted(PageId(1), ObjectId(1), PageType::Heap));
        let mut copy = img.to_page();
        copy.set_page_lsn(Lsn(77));
        // the shared image is untouched
        assert_eq!(img.page_lsn(), Lsn::NULL);
        let derived = PageImage::new(copy);
        assert!(!derived.same_as(&img));
        assert_eq!(derived.page_lsn(), Lsn(77));
    }
}
