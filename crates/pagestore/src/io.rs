//! Batched I/O backend: vectored multi-page reads and background writeback.
//!
//! [`FileManager`] is a strictly per-page surface: every read and write is
//! one call, and — under a modeled device — one device round trip. That is
//! faithful to the paper's cost model but leaves batch-shaped work (cold
//! as-of scan prefetch, fuzzy-checkpoint flushes, redo-window fetches) paying
//! one modeled seek per page even when the pages are physically contiguous.
//! [`IoBackend`] extends the surface with two batch operations:
//!
//! * [`IoBackend::read_pages`] — read a batch of pages, returning one
//!   `Result` per page. Backends coalesce maximal *contiguous ascending
//!   runs* of page ids into one device op each (counted in
//!   [`IoStats::add_vectored_read_ops`](rewind_common::IoStats::add_vectored_read_ops)).
//! * [`IoBackend::write_pages`] — write a batch, again with per-page
//!   results and per-run device ops
//!   ([`IoStats::add_batched_write_ops`](rewind_common::IoStats::add_batched_write_ops)).
//!
//! # Why the modeled stall is charged per batch
//!
//! A spinning disk pays one seek + rotation to reach a run and then streams
//! it; an NVMe device amortizes one submission/completion round trip over
//! the whole vectored request. Charging the modeled device latency (see
//! `MemFileManager::set_device_delay_us`, the page-side analogue of
//! `LogConfig::flush_delay_us`) once per contiguous run — not once per page
//! — is what makes batching *observable* in modeled time while leaving the
//! per-page transfer accounting untouched: `page_reads`/`page_writes` are
//! still incremented once per page, checksums are still verified per page,
//! and every per-page failure is reported in that page's slot of the result
//! vector (a fault inside a batch fails only that page, never the batch).
//! Only the *device-op* count changes, which is exactly the quantity the
//! `vectored_read_ops`/`batched_write_ops` counters expose and snapbench
//! gates on.
//!
//! # Why background writeback errors defer
//!
//! [`WritebackPool`] runs batched writes on background threads so fuzzy
//! checkpoints stop serializing the checkpointer (and stealing commit-path
//! time) on per-page `write_page` calls. A background thread has no caller
//! to return an error to at the moment the device fails, so failures are
//! *deferred*: workers retry transient errors with the same bounded backoff
//! as the foreground path (counting
//! [`IoStats::add_io_retry`](rewind_common::IoStats::add_io_retry) per
//! failed attempt), and whatever still fails is parked until the flushing
//! caller calls [`WritebackPool::drain`] — the same "hold it until someone
//! can observe it" contract as `Database::take_background_errors`. The
//! flusher then leaves failed pages dirty, so no acknowledged state is ever
//! lost: a deferred write error degrades checkpoint progress, never
//! durability.
//!
//! Shutdown is deterministic: dropping the pool signals the workers, lets
//! them finish *already queued* batches, and joins them — after `drop`
//! returns no background write can land, which is what crash simulation
//! (`Database::simulate_crash`) relies on to capture a stable media image.

use crate::file::FileManager;
use crate::page::Page;
use parking_lot::{Condvar, Mutex};
use rewind_common::{Error, PageId, Result};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Split `items` into maximal runs whose page ids ascend by exactly one —
/// the unit a backend turns into a single device op.
pub fn contiguous_runs_by<T>(items: &[T], pid_of: impl Fn(&T) -> PageId) -> Vec<&[T]> {
    let mut runs = Vec::new();
    if items.is_empty() {
        return runs;
    }
    let mut start = 0;
    for i in 1..items.len() {
        if pid_of(&items[i]).0 != pid_of(&items[i - 1]).0.wrapping_add(1) {
            runs.push(&items[start..i]);
            start = i;
        }
    }
    runs.push(&items[start..]);
    runs
}

/// [`contiguous_runs_by`] specialized to a plain page-id slice.
pub fn contiguous_runs(pids: &[PageId]) -> Vec<&[PageId]> {
    contiguous_runs_by(pids, |p| *p)
}

/// A [`FileManager`] that can additionally read and write *batches* of
/// pages, coalescing contiguous runs into single modeled device ops.
///
/// The default method bodies are plain scalar loops, so any `FileManager`
/// can opt in with `impl IoBackend for T {}` and behave exactly as before
/// (no vectored ops are counted); the real backends override them with
/// run-coalescing implementations. Per-page accounting (`page_reads`,
/// `page_writes`, corruption detection, fault-token consumption) is
/// identical between the scalar and batched entry points — callers may mix
/// them freely without skewing any gated counter.
pub trait IoBackend: FileManager {
    /// Read every page in `pids`, returning one result per requested page,
    /// in order. A failed page occupies only its own slot; the rest of the
    /// batch still succeeds (partial-batch results).
    fn read_pages(&self, pids: &[PageId]) -> Vec<Result<Page>> {
        pids.iter().map(|&pid| self.read_page(pid)).collect()
    }

    /// Write every `(page id, page)` pair in `batch`, returning one result
    /// per page, in order. Like [`IoBackend::read_pages`], failures are
    /// per-page.
    fn write_pages(&self, batch: &[(PageId, Page)]) -> Vec<Result<()>> {
        batch
            .iter()
            .map(|(pid, page)| self.write_page(*pid, page))
            .collect()
    }
}

/// Bounded retry for transiently-failing background writes, mirroring the
/// buffer pool's foreground `with_io_retry` loop (same attempt bound, same
/// `add_io_retry` accounting per failed transient attempt).
const MAX_WRITE_RETRIES: u32 = 8;

#[derive(Default)]
struct WbState {
    queue: VecDeque<Vec<(PageId, Page)>>,
    /// Batches popped from the queue but not yet written back.
    in_flight: usize,
    /// Pages whose background write landed since the last [`WritebackPool::drain`].
    succeeded: Vec<PageId>,
    /// Pages whose background write failed permanently since the last drain.
    failed: Vec<(PageId, Error)>,
    shutdown: bool,
}

struct WbShared {
    backend: Arc<dyn IoBackend>,
    state: Mutex<WbState>,
    /// Workers wait here for queued batches (or shutdown).
    work_cv: Condvar,
    /// Submitters (queue full) and drainers wait here for progress.
    done_cv: Condvar,
    /// Queue bound, in batches; `submit` blocks when it is reached so a
    /// fast flusher cannot buffer unbounded dirty-page copies.
    capacity: usize,
}

/// A background writeback thread pool over an [`IoBackend`].
///
/// `submit` enqueues a batch of dirty-page copies (blocking when the
/// bounded queue is full), workers drain the queue through
/// [`IoBackend::write_pages`], and `drain` waits for quiescence and hands
/// back which pages landed and which failed — see the module docs for why
/// errors defer. Dropping the pool finishes queued work and joins the
/// workers deterministically.
pub struct WritebackPool {
    shared: Arc<WbShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WritebackPool {
    /// Start `workers` background writers over `backend` with a queue bound
    /// of `queue_batches` batches. Both bounds are clamped to at least 1.
    pub fn new(backend: Arc<dyn IoBackend>, workers: usize, queue_batches: usize) -> WritebackPool {
        let shared = Arc::new(WbShared {
            backend,
            state: Mutex::new(WbState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            capacity: queue_batches.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WritebackPool { shared, workers }
    }

    /// Enqueue one batch of page copies for background writeback. Blocks
    /// while the queue is at capacity (backpressure). If the pool is already
    /// shutting down the batch is written synchronously instead, so no
    /// submitted work is ever silently dropped.
    pub fn submit(&self, batch: Vec<(PageId, Page)>) {
        if batch.is_empty() {
            return;
        }
        let shutdown = {
            let mut st = self.shared.state.lock();
            while st.queue.len() >= self.shared.capacity && !st.shutdown {
                self.shared.done_cv.wait(&mut st);
            }
            if !st.shutdown {
                st.queue.push_back(batch);
                self.shared.work_cv.notify_one();
                return;
            }
            true
        };
        if shutdown {
            let outcomes = write_batch_with_retry(&*self.shared.backend, &batch);
            let mut st = self.shared.state.lock();
            record_outcomes(&mut st, outcomes);
            self.shared.done_cv.notify_all();
        }
    }

    /// Wait until every submitted batch has been written back, then return
    /// `(succeeded, failed)` page outcomes accumulated since the previous
    /// drain. Callers clear dirty bits only for `succeeded` pages and leave
    /// `failed` ones dirty for a later flush.
    pub fn drain(&self) -> (Vec<PageId>, Vec<(PageId, Error)>) {
        let mut st = self.shared.state.lock();
        while !st.queue.is_empty() || st.in_flight > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        (
            std::mem::take(&mut st.succeeded),
            std::mem::take(&mut st.failed),
        )
    }

    /// The number of worker threads (for tests and metrics).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WritebackPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        // Workers finish batches already queued, then exit; joining them
        // here is what makes "no background write after drop" deterministic.
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

fn record_outcomes(st: &mut WbState, outcomes: Vec<(PageId, Result<()>)>) {
    for (pid, res) in outcomes {
        match res {
            Ok(()) => st.succeeded.push(pid),
            Err(e) => st.failed.push((pid, e)),
        }
    }
}

fn worker_loop(shared: &WbShared) {
    loop {
        let batch = {
            let mut st = shared.state.lock();
            loop {
                if let Some(b) = st.queue.pop_front() {
                    st.in_flight += 1;
                    // A queue slot freed: unblock a backpressured submitter.
                    shared.done_cv.notify_all();
                    break b;
                }
                if st.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut st);
            }
        };
        let outcomes = write_batch_with_retry(&*shared.backend, &batch);
        let mut st = shared.state.lock();
        record_outcomes(&mut st, outcomes);
        st.in_flight -= 1;
        shared.done_cv.notify_all();
    }
}

fn write_batch_with_retry(
    backend: &dyn IoBackend,
    batch: &[(PageId, Page)],
) -> Vec<(PageId, Result<()>)> {
    let first = backend.write_pages(batch);
    let mut out = Vec::with_capacity(batch.len());
    for ((pid, page), mut res) in batch.iter().zip(first) {
        let mut attempt = 0u32;
        while let Err(e) = &res {
            if !e.is_transient() || attempt >= MAX_WRITE_RETRIES {
                break;
            }
            attempt += 1;
            backend.io_stats().add_io_retry();
            std::thread::sleep(std::time::Duration::from_micros(10u64 << attempt.min(6)));
            // Retries are scalar: one already-failed page, one device op.
            res = backend.write_page(*pid, page);
        }
        out.push((*pid, res));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFileManager;
    use crate::page::PageType;
    use crate::FaultInjector;
    use rewind_common::{Lsn, ObjectId};

    fn sample_page(pid: PageId) -> Page {
        let mut p = Page::formatted(pid, ObjectId(7), PageType::Heap);
        p.set_page_lsn(Lsn(4096));
        p.insert_record(0, b"batched").unwrap();
        p
    }

    #[test]
    fn runs_split_on_gaps() {
        let pids: Vec<PageId> = [1u64, 2, 3, 7, 8, 10].into_iter().map(PageId).collect();
        let runs = contiguous_runs(&pids);
        let lens: Vec<usize> = runs.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 2, 1]);
        assert_eq!(runs[0][0], PageId(1));
        assert_eq!(runs[2][0], PageId(10));
        assert!(contiguous_runs(&[]).is_empty());
        assert_eq!(contiguous_runs(&[PageId(5)]).len(), 1);
    }

    #[test]
    fn vectored_read_coalesces_runs_and_keeps_per_page_accounting() {
        let fm = MemFileManager::new();
        for pid in [1u64, 2, 3, 7, 8] {
            fm.write_page(PageId(pid), &sample_page(PageId(pid)))
                .unwrap();
        }
        let before = fm.io_stats().snapshot();
        let pids: Vec<PageId> = [1u64, 2, 3, 7, 8].into_iter().map(PageId).collect();
        let got = fm.read_pages(&pids);
        assert_eq!(got.len(), 5);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().page_id(), pids[i]);
        }
        let d = fm.io_stats().snapshot().delta(before);
        assert_eq!(d.page_reads, 5, "per-page reads unchanged");
        assert_eq!(d.vectored_read_ops, 2, "two contiguous runs, two ops");
    }

    #[test]
    fn batched_write_coalesces_and_reads_back() {
        let fm = MemFileManager::new();
        let batch: Vec<(PageId, Page)> = [4u64, 5, 6, 9]
            .into_iter()
            .map(|p| (PageId(p), sample_page(PageId(p))))
            .collect();
        let before = fm.io_stats().snapshot();
        assert!(fm.write_pages(&batch).into_iter().all(|r| r.is_ok()));
        let d = fm.io_stats().snapshot().delta(before);
        assert_eq!(d.page_writes, 4);
        assert_eq!(d.batched_write_ops, 2);
        assert_eq!(
            fm.read_page(PageId(6)).unwrap().record(0).unwrap(),
            b"batched"
        );
    }

    #[test]
    fn mid_batch_fault_fails_only_that_page() {
        let fi = FaultInjector::new(11);
        for pid in 1u64..=4 {
            fi.write_page(PageId(pid), &sample_page(PageId(pid)))
                .unwrap();
        }
        fi.arm_eio_reads(1);
        let pids: Vec<PageId> = (1u64..=4).map(PageId).collect();
        let got = fi.read_pages(&pids);
        assert!(got[0].is_err(), "first token hits the first page");
        assert!(got[0].as_ref().err().unwrap().is_transient());
        assert!(got[1..].iter().all(|r| r.is_ok()), "rest of batch survives");
    }

    #[test]
    fn writeback_pool_lands_batches_and_drains_clean() {
        let fm: Arc<dyn IoBackend> = Arc::new(MemFileManager::new());
        let pool = WritebackPool::new(Arc::clone(&fm), 2, 4);
        for base in [10u64, 20, 30] {
            let batch: Vec<(PageId, Page)> = (base..base + 3)
                .map(|p| (PageId(p), sample_page(PageId(p))))
                .collect();
            pool.submit(batch);
        }
        let (ok, failed) = pool.drain();
        assert_eq!(ok.len(), 9);
        assert!(failed.is_empty());
        assert_eq!(fm.io_stats().snapshot().page_writes, 9);
        assert!(fm.read_page(PageId(31)).unwrap().record(0).is_ok());
        // A second drain with no new work returns empty immediately.
        let (ok2, failed2) = pool.drain();
        assert!(ok2.is_empty() && failed2.is_empty());
    }

    #[test]
    fn writeback_retries_transient_and_defers_nothing_on_recovery() {
        let fi = Arc::new(FaultInjector::new(5));
        let backend: Arc<dyn IoBackend> = fi.clone();
        let pool = WritebackPool::new(backend, 1, 4);
        fi.arm_eio_writes(2);
        pool.submit(vec![(PageId(3), sample_page(PageId(3)))]);
        let (ok, failed) = pool.drain();
        assert_eq!(ok, vec![PageId(3)], "bounded retry rides out the EIOs");
        assert!(failed.is_empty());
        assert_eq!(fi.io_stats().snapshot().io_retries, 2);
    }

    #[test]
    fn drop_joins_workers_after_finishing_queued_work() {
        let fm = Arc::new(MemFileManager::new());
        let backend: Arc<dyn IoBackend> = fm.clone();
        {
            let pool = WritebackPool::new(backend, 1, 8);
            for pid in 1u64..=16 {
                pool.submit(vec![(PageId(pid), sample_page(PageId(pid)))]);
            }
            // No drain: drop must finish the queue before returning.
        }
        assert_eq!(fm.io_stats().snapshot().page_writes, 16);
        let after = fm.io_stats().snapshot().page_writes;
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            fm.io_stats().snapshot().page_writes,
            after,
            "no background write lands after drop returns"
        );
    }
}
