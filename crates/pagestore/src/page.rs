//! The 8 KiB slotted data page.
//!
//! Layout:
//!
//! ```text
//! +--------------------------------------------------------------+ 0
//! | header (64 bytes): pageLSN, lastFpiLSN, id, object, type,    |
//! |                    ..., checksum (CRC-32C)                   |
//! +--------------------------------------------------------------+ 64
//! | record data, growing upward                                  |
//! |                     ...free space...                         |
//! | slot directory (4 bytes per slot), growing downward          |
//! +--------------------------------------------------------------+ 8188
//! | torn-write trailer (4 bytes): low 32 bits of pageLSN         |
//! +--------------------------------------------------------------+ 8192
//! ```
//!
//! The header carries the two LSN fields the paper's undo machinery needs:
//! `pageLSN` — the LSN of the last record that modified the page (§2.1), the
//! entry point of the per-page backward chain — and `lastFpiLSN` — the LSN of
//! the most recent full-page-image record, the entry point of the FPI chain
//! used by the §6.1 skip optimization.
//!
//! Slot operations are *physiological*: log records say "insert these bytes
//! at slot 3", and redo/undo reproduce logically identical pages even though
//! physical byte placement may differ after compaction.

use rewind_common::codec::{read_u16_at, read_u64_at, write_u16_at, write_u32_at, write_u64_at};
use rewind_common::{crc32c_append, CorruptionKind, Error, Lsn, ObjectId, PageId, Result};

/// Size of every database page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Size of the fixed page header in bytes.
pub const HEADER_SIZE: usize = 64;
/// Bytes of the torn-write trailer at the very end of the page: a mirror of
/// the low 32 bits of the header's pageLSN. Header and trailer sit in
/// different 512 B sectors, so a torn 8 KiB write (only a prefix of sectors
/// reaching the media) makes them disagree — the InnoDB FIL-trailer idea.
pub const TRAILER_SIZE: usize = 4;
/// Bytes consumed by one slot-directory entry (offset + length).
pub const SLOT_ENTRY_SIZE: usize = 4;
/// Largest record payload a page can hold (one record, one slot entry).
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - TRAILER_SIZE - SLOT_ENTRY_SIZE;

// Header field offsets.
const OFF_PAGE_LSN: usize = 0;
const OFF_LAST_FPI_LSN: usize = 8;
const OFF_PAGE_ID: usize = 16;
const OFF_OBJECT_ID: usize = 24;
const OFF_PAGE_TYPE: usize = 32;
const OFF_FLAGS: usize = 34;
const OFF_SLOT_COUNT: usize = 36;
const OFF_FREE_PTR: usize = 38;
const OFF_NEXT_PAGE: usize = 40;
const OFF_PREV_PAGE: usize = 48;
const OFF_LEVEL: usize = 56;
const OFF_GARBAGE: usize = 58;
const OFF_CHECKSUM: usize = 60;
/// Offset of the torn-write trailer (the last 4 bytes of the page).
const OFF_TRAILER: usize = PAGE_SIZE - TRAILER_SIZE;

/// What kind of data a page holds. Stored in the header; determines how the
/// record area is interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum PageType {
    /// Never formatted, or deallocated content left in place.
    Free = 0,
    /// The boot page (page 0): database-wide metadata.
    Boot = 1,
    /// Allocation map: 2 bits per covered page in the record area.
    AllocMap = 2,
    /// B-Tree leaf: slots hold key/value records in key order.
    BTreeLeaf = 3,
    /// B-Tree internal node: slots hold separator-key/child records.
    BTreeInternal = 4,
    /// Heap page: slots hold rows in arrival order.
    Heap = 5,
}

impl PageType {
    /// Decode from the on-page representation.
    pub fn from_u16(v: u16) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::Boot,
            2 => PageType::AllocMap,
            3 => PageType::BTreeLeaf,
            4 => PageType::BTreeInternal,
            5 => PageType::Heap,
            other => return Err(Error::corruption(format!("unknown page type {other}"))),
        })
    }
}

/// An in-memory 8 KiB page image.
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            buf: Box::new(*self.buf),
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.page_id())
            .field("type", &self.page_type())
            .field("lsn", &self.page_lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl Page {
    /// An all-zero page (header reads as `Free`, null LSNs).
    pub fn zeroed() -> Page {
        Page {
            buf: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// A freshly formatted page of the given type, with an empty record area.
    pub fn formatted(id: PageId, object: ObjectId, ty: PageType) -> Page {
        let mut p = Page::zeroed();
        p.format(id, object, ty);
        p
    }

    /// Reset this page to a freshly formatted state (everything zeroed, then
    /// identity fields set). This is what applying a `Format` log record does.
    pub fn format(&mut self, id: PageId, object: ObjectId, ty: PageType) {
        self.buf.fill(0);
        write_u64_at(&mut self.buf[..], OFF_PAGE_ID, id.0);
        write_u64_at(&mut self.buf[..], OFF_OBJECT_ID, object.0);
        write_u16_at(&mut self.buf[..], OFF_PAGE_TYPE, ty as u16);
        write_u16_at(&mut self.buf[..], OFF_FREE_PTR, HEADER_SIZE as u16);
        write_u64_at(&mut self.buf[..], OFF_NEXT_PAGE, PageId::INVALID.0);
        write_u64_at(&mut self.buf[..], OFF_PREV_PAGE, PageId::INVALID.0);
    }

    /// Construct from a raw image (e.g. read from a file or a log record).
    pub fn from_image(image: &[u8]) -> Result<Page> {
        if image.len() != PAGE_SIZE {
            return Err(Error::corruption(format!(
                "page image of {} bytes",
                image.len()
            )));
        }
        let mut p = Page::zeroed();
        p.buf.copy_from_slice(image);
        Ok(p)
    }

    /// The full raw image of the page.
    #[inline]
    pub fn image(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Replace the entire page with `image` (preformat undo, FPI restore).
    pub fn restore_image(&mut self, image: &[u8; PAGE_SIZE]) {
        self.buf.copy_from_slice(image);
    }

    // ---- header accessors ------------------------------------------------

    /// LSN of the last log record that modified this page.
    #[inline]
    pub fn page_lsn(&self) -> Lsn {
        Lsn(read_u64_at(&self.buf[..], OFF_PAGE_LSN))
    }

    /// Set the pageLSN (done by every logged modification).
    #[inline]
    pub fn set_page_lsn(&mut self, lsn: Lsn) {
        write_u64_at(&mut self.buf[..], OFF_PAGE_LSN, lsn.0);
    }

    /// LSN of the most recent full-page-image record for this page, or null.
    #[inline]
    pub fn last_fpi_lsn(&self) -> Lsn {
        Lsn(read_u64_at(&self.buf[..], OFF_LAST_FPI_LSN))
    }

    /// Set the FPI-chain anchor.
    #[inline]
    pub fn set_last_fpi_lsn(&mut self, lsn: Lsn) {
        write_u64_at(&mut self.buf[..], OFF_LAST_FPI_LSN, lsn.0);
    }

    /// The page's own id, for integrity checking.
    #[inline]
    pub fn page_id(&self) -> PageId {
        PageId(read_u64_at(&self.buf[..], OFF_PAGE_ID))
    }

    /// The catalog object owning this page.
    #[inline]
    pub fn object_id(&self) -> ObjectId {
        ObjectId(read_u64_at(&self.buf[..], OFF_OBJECT_ID))
    }

    /// Change the owning object (used when reformatting).
    #[inline]
    pub fn set_object_id(&mut self, o: ObjectId) {
        write_u64_at(&mut self.buf[..], OFF_OBJECT_ID, o.0);
    }

    /// The page type.
    pub fn page_type(&self) -> PageType {
        PageType::from_u16(read_u16_at(&self.buf[..], OFF_PAGE_TYPE)).unwrap_or(PageType::Free)
    }

    /// The page type, failing on corrupt values.
    pub fn try_page_type(&self) -> Result<PageType> {
        PageType::from_u16(read_u16_at(&self.buf[..], OFF_PAGE_TYPE))
    }

    /// Right sibling in a chain (B-Tree leaves), or [`PageId::INVALID`].
    #[inline]
    pub fn next_page(&self) -> PageId {
        PageId(read_u64_at(&self.buf[..], OFF_NEXT_PAGE))
    }

    /// Set the right sibling.
    #[inline]
    pub fn set_next_page(&mut self, p: PageId) {
        write_u64_at(&mut self.buf[..], OFF_NEXT_PAGE, p.0);
    }

    /// Left sibling in a chain, or [`PageId::INVALID`].
    #[inline]
    pub fn prev_page(&self) -> PageId {
        PageId(read_u64_at(&self.buf[..], OFF_PREV_PAGE))
    }

    /// Set the left sibling.
    #[inline]
    pub fn set_prev_page(&mut self, p: PageId) {
        write_u64_at(&mut self.buf[..], OFF_PREV_PAGE, p.0);
    }

    /// B-Tree level (0 = leaf).
    #[inline]
    pub fn level(&self) -> u16 {
        read_u16_at(&self.buf[..], OFF_LEVEL)
    }

    /// Set the B-Tree level.
    #[inline]
    pub fn set_level(&mut self, l: u16) {
        write_u16_at(&mut self.buf[..], OFF_LEVEL, l);
    }

    /// Number of record slots on the page.
    #[inline]
    pub fn slot_count(&self) -> u16 {
        read_u16_at(&self.buf[..], OFF_SLOT_COUNT)
    }

    fn set_slot_count(&mut self, n: u16) {
        write_u16_at(&mut self.buf[..], OFF_SLOT_COUNT, n);
    }

    fn free_ptr(&self) -> usize {
        read_u16_at(&self.buf[..], OFF_FREE_PTR) as usize
    }

    fn set_free_ptr(&mut self, p: usize) {
        write_u16_at(&mut self.buf[..], OFF_FREE_PTR, p as u16);
    }

    fn garbage(&self) -> usize {
        read_u16_at(&self.buf[..], OFF_GARBAGE) as usize
    }

    fn set_garbage(&mut self, g: usize) {
        write_u16_at(&mut self.buf[..], OFF_GARBAGE, g as u16);
    }

    /// Page flags (reserved for future use).
    #[inline]
    pub fn flags(&self) -> u16 {
        read_u16_at(&self.buf[..], OFF_FLAGS)
    }

    /// Set page flags.
    #[inline]
    pub fn set_flags(&mut self, f: u16) {
        write_u16_at(&mut self.buf[..], OFF_FLAGS, f);
    }

    // ---- checksums & torn-write trailer ------------------------------------

    /// Compute the page checksum: CRC-32C over the image with the checksum
    /// field zeroed (the trailer IS covered — a stale trailer is a checksum
    /// mismatch, which the torn-write classifier then inspects).
    pub fn compute_checksum(&self) -> u32 {
        let c = crc32c_append(0, &self.buf[..OFF_CHECKSUM]);
        let c = crc32c_append(c, &[0u8; 4]);
        crc32c_append(c, &self.buf[OFF_CHECKSUM + 4..])
    }

    /// Stamp the checksum field (done by file managers before writing,
    /// after [`Page::stamp_trailer`] so the checksum covers the trailer).
    pub fn stamp_checksum(&mut self) {
        let c = self.compute_checksum();
        write_u32_at(&mut self.buf[..], OFF_CHECKSUM, c);
    }

    /// Stamp the torn-write trailer: mirror the low 32 bits of the
    /// header's pageLSN into the last 4 bytes of the page.
    pub fn stamp_trailer(&mut self) {
        let low = self.page_lsn().0 as u32;
        write_u32_at(&mut self.buf[..], OFF_TRAILER, low);
    }

    /// Whether the trailer agrees with the header pageLSN. On a
    /// checksum-failing page this is the torn-write discriminator: a
    /// consistent trailer means the whole image is suspect (bit rot); an
    /// inconsistent one means only part of the write reached the media.
    pub fn trailer_consistent(&self) -> bool {
        rewind_common::codec::read_u32_at(&self.buf[..], OFF_TRAILER) == self.page_lsn().0 as u32
    }

    /// Verify the checksum field; all-zero pages (never written) pass.
    /// A mismatch is classified via the trailer as
    /// [`CorruptionKind::TornPage`] or [`CorruptionKind::PageChecksum`].
    pub fn verify_checksum(&self) -> Result<()> {
        let stored = rewind_common::codec::read_u32_at(&self.buf[..], OFF_CHECKSUM);
        if stored == 0 && self.buf.iter().all(|&b| b == 0) {
            return Ok(());
        }
        let actual = self.compute_checksum();
        if stored != actual {
            let (kind, what) = if self.trailer_consistent() {
                (CorruptionKind::PageChecksum, "checksum mismatch")
            } else {
                (
                    CorruptionKind::TornPage,
                    "torn write (trailer/pageLSN mismatch)",
                )
            };
            return Err(Error::page_corruption(
                kind,
                self.page_id(),
                format!(
                    "{what} on {:?}: stored {stored:#x}, computed {actual:#x}",
                    self.page_id()
                ),
            ));
        }
        Ok(())
    }

    // ---- slotted record area ----------------------------------------------

    // The slot directory grows downward from the trailer, not the page end.
    fn slot_dir_start(&self) -> usize {
        OFF_TRAILER - SLOT_ENTRY_SIZE * self.slot_count() as usize
    }

    fn slot_entry_off(&self, idx: usize) -> usize {
        OFF_TRAILER - SLOT_ENTRY_SIZE * (idx + 1)
    }

    fn slot_entry(&self, idx: usize) -> (usize, usize) {
        let off = self.slot_entry_off(idx);
        (
            read_u16_at(&self.buf[..], off) as usize,
            read_u16_at(&self.buf[..], off + 2) as usize,
        )
    }

    fn set_slot_entry(&mut self, idx: usize, data_off: usize, len: usize) {
        let off = self.slot_entry_off(idx);
        write_u16_at(&mut self.buf[..], off, data_off as u16);
        write_u16_at(&mut self.buf[..], off + 2, len as u16);
    }

    /// Contiguous free bytes between the record area and the slot directory.
    pub fn contiguous_free(&self) -> usize {
        self.slot_dir_start().saturating_sub(self.free_ptr())
    }

    /// Total reclaimable free bytes (contiguous + garbage from deletions).
    pub fn free_space(&self) -> usize {
        self.contiguous_free() + self.garbage()
    }

    /// Whether a record of `len` bytes can be inserted (possibly after
    /// compaction).
    pub fn can_insert(&self, len: usize) -> bool {
        len <= MAX_RECORD_SIZE && self.free_space() >= len + SLOT_ENTRY_SIZE
    }

    /// Read the record in slot `idx`.
    pub fn record(&self, idx: usize) -> Result<&[u8]> {
        if idx >= self.slot_count() as usize {
            return Err(Error::corruption(format!(
                "slot {idx} out of range on {:?} ({} slots)",
                self.page_id(),
                self.slot_count()
            )));
        }
        let (off, len) = self.slot_entry(idx);
        if off < HEADER_SIZE || off + len > OFF_TRAILER {
            return Err(Error::corruption(format!("slot {idx} points outside page")));
        }
        Ok(&self.buf[off..off + len])
    }

    /// Rewrite the record area keeping only live records, eliminating
    /// garbage. Slot order is preserved.
    fn compact(&mut self) {
        let n = self.slot_count() as usize;
        let mut records: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
        for i in 0..n {
            let (off, len) = self.slot_entry(i);
            records.push((i, self.buf[off..off + len].to_vec()));
        }
        let mut ptr = HEADER_SIZE;
        for (i, rec) in records {
            self.buf[ptr..ptr + rec.len()].copy_from_slice(&rec);
            self.set_slot_entry(i, ptr, rec.len());
            ptr += rec.len();
        }
        self.set_free_ptr(ptr);
        self.set_garbage(0);
    }

    /// Insert `rec` as a new slot at index `idx`, shifting later slots up.
    ///
    /// `idx` may equal the current slot count (append). Fails with
    /// [`Error::RecordTooLarge`] when the record cannot fit even after
    /// compaction.
    pub fn insert_record(&mut self, idx: usize, rec: &[u8]) -> Result<()> {
        let n = self.slot_count() as usize;
        if idx > n {
            return Err(Error::Internal(format!(
                "insert at slot {idx} past end ({n} slots)"
            )));
        }
        if !self.can_insert(rec.len()) {
            return Err(Error::RecordTooLarge {
                size: rec.len(),
                max: self.free_space().saturating_sub(SLOT_ENTRY_SIZE),
            });
        }
        if self.contiguous_free() < rec.len() + SLOT_ENTRY_SIZE {
            self.compact();
        }
        // Grow directory by one and shift entries for slots >= idx.
        // Directory grows downward, so "shifting up" means moving the tail
        // entries (idx..n) one entry lower in memory.
        self.set_slot_count((n + 1) as u16);
        for i in (idx..n).rev() {
            let (o, l) = self.slot_entry(i);
            self.set_slot_entry(i + 1, o, l);
        }
        let ptr = self.free_ptr();
        self.buf[ptr..ptr + rec.len()].copy_from_slice(rec);
        self.set_slot_entry(idx, ptr, rec.len());
        self.set_free_ptr(ptr + rec.len());
        Ok(())
    }

    /// Delete slot `idx`, shifting later slots down. Returns the old record.
    pub fn delete_record(&mut self, idx: usize) -> Result<Vec<u8>> {
        let old = self.record(idx)?.to_vec();
        self.remove_record(idx)?;
        Ok(old)
    }

    /// Delete slot `idx` without materializing the old record — the
    /// allocation-free variant redo/undo chain walks use (the log record
    /// already carries the undo bytes).
    pub fn remove_record(&mut self, idx: usize) -> Result<()> {
        let n = self.slot_count() as usize;
        self.record(idx)?;
        let (_, len) = self.slot_entry(idx);
        for i in idx + 1..n {
            let (o, l) = self.slot_entry(i);
            self.set_slot_entry(i - 1, o, l);
        }
        self.set_slot_count((n - 1) as u16);
        self.set_garbage(self.garbage() + len);
        Ok(())
    }

    /// Replace the record in slot `idx` with `rec`. Returns the old record.
    pub fn update_record(&mut self, idx: usize, rec: &[u8]) -> Result<Vec<u8>> {
        let old = self.record(idx)?.to_vec();
        self.replace_record(idx, rec)?;
        Ok(old)
    }

    /// Replace the record in slot `idx` with `rec` without materializing the
    /// old record — the allocation-free variant redo/undo chain walks use.
    pub fn replace_record(&mut self, idx: usize, rec: &[u8]) -> Result<()> {
        self.record(idx)?;
        let (off, len) = self.slot_entry(idx);
        if rec.len() == len {
            self.buf[off..off + len].copy_from_slice(rec);
            return Ok(());
        }
        if rec.len() < len {
            self.buf[off..off + rec.len()].copy_from_slice(rec);
            self.set_slot_entry(idx, off, rec.len());
            self.set_garbage(self.garbage() + (len - rec.len()));
            return Ok(());
        }
        // Grows: free old space, place at end (compacting if needed).
        let needed = rec.len();
        if self.contiguous_free() + self.garbage() + len < needed {
            return Err(Error::RecordTooLarge {
                size: needed,
                max: self.free_space() + len,
            });
        }
        // Mark old space garbage first so compaction reclaims it.
        self.set_slot_entry(idx, HEADER_SIZE, 0);
        self.set_garbage(self.garbage() + len);
        if self.contiguous_free() < needed {
            self.compact();
        }
        let ptr = self.free_ptr();
        self.buf[ptr..ptr + needed].copy_from_slice(rec);
        self.set_slot_entry(idx, ptr, needed);
        self.set_free_ptr(ptr + needed);
        Ok(())
    }

    /// Iterate over all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count() as usize).map(move |i| {
            let (off, len) = self.slot_entry(i);
            &self.buf[off..off + len]
        })
    }

    /// Direct access to the record area of non-slotted pages (allocation
    /// maps, boot page). Ends before the torn-write trailer so map/boot
    /// data can never clobber (or be clobbered by) the trailer stamp.
    pub fn body(&self) -> &[u8] {
        &self.buf[HEADER_SIZE..OFF_TRAILER]
    }

    /// Mutable access to the record area of non-slotted pages.
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.buf[HEADER_SIZE..OFF_TRAILER]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::formatted(PageId(9), ObjectId(5), PageType::BTreeLeaf)
    }

    #[test]
    fn format_sets_identity() {
        let p = page();
        assert_eq!(p.page_id(), PageId(9));
        assert_eq!(p.object_id(), ObjectId(5));
        assert_eq!(p.page_type(), PageType::BTreeLeaf);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.page_lsn(), Lsn::NULL);
        assert_eq!(p.next_page(), PageId::INVALID);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE - TRAILER_SIZE);
    }

    #[test]
    fn insert_read_delete_roundtrip() {
        let mut p = page();
        p.insert_record(0, b"bbb").unwrap();
        p.insert_record(0, b"aaaa").unwrap();
        p.insert_record(2, b"c").unwrap();
        assert_eq!(p.record(0).unwrap(), b"aaaa");
        assert_eq!(p.record(1).unwrap(), b"bbb");
        assert_eq!(p.record(2).unwrap(), b"c");
        let old = p.delete_record(1).unwrap();
        assert_eq!(old, b"bbb");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.record(1).unwrap(), b"c");
    }

    #[test]
    fn update_in_place_shrink_grow() {
        let mut p = page();
        p.insert_record(0, b"hello").unwrap();
        p.insert_record(1, b"world").unwrap();
        assert_eq!(p.update_record(0, b"HELLO").unwrap(), b"hello");
        assert_eq!(p.record(0).unwrap(), b"HELLO");
        assert_eq!(p.update_record(0, b"hi").unwrap(), b"HELLO");
        assert_eq!(p.record(0).unwrap(), b"hi");
        assert_eq!(p.update_record(0, b"a-much-longer-record").unwrap(), b"hi");
        assert_eq!(p.record(0).unwrap(), b"a-much-longer-record");
        assert_eq!(p.record(1).unwrap(), b"world");
    }

    #[test]
    fn fills_up_and_compacts() {
        let mut p = page();
        let rec = vec![7u8; 100];
        let mut n = 0;
        while p.can_insert(rec.len()) {
            p.insert_record(n, &rec).unwrap();
            n += 1;
        }
        assert!(n >= 75, "expected ~78 records, got {n}");
        assert!(p.insert_record(0, &rec).is_err());
        // Delete every other record, then a larger record must still fit via
        // compaction.
        let mut i = 0;
        while i < p.slot_count() as usize {
            p.delete_record(i).unwrap();
            i += 1; // skip one (records shifted down)
        }
        let big = vec![9u8; 3000];
        assert!(p.can_insert(big.len()));
        p.insert_record(0, &big).unwrap();
        assert_eq!(p.record(0).unwrap(), &big[..]);
    }

    #[test]
    fn record_too_large_reported() {
        let mut p = page();
        let huge = vec![0u8; PAGE_SIZE];
        match p.insert_record(0, &huge) {
            Err(Error::RecordTooLarge { .. }) => {}
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn image_restore_roundtrip() {
        let mut p = page();
        p.insert_record(0, b"data").unwrap();
        p.set_page_lsn(Lsn(777));
        let img = *p.image();
        let mut q = Page::zeroed();
        q.restore_image(&img);
        assert_eq!(q.record(0).unwrap(), b"data");
        assert_eq!(q.page_lsn(), Lsn(777));
        assert_eq!(q.page_id(), PageId(9));
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut p = page();
        p.insert_record(0, b"payload").unwrap();
        p.stamp_checksum();
        p.verify_checksum().unwrap();
        // flip a byte in the record area
        let mut img = *p.image();
        img[HEADER_SIZE + 2] ^= 0xFF;
        let q = Page::from_image(&img).unwrap();
        assert!(q.verify_checksum().is_err());
        // all-zero page passes (never written)
        Page::zeroed().verify_checksum().unwrap();
    }

    #[test]
    fn header_fields_roundtrip() {
        let mut p = page();
        p.set_page_lsn(Lsn(123));
        p.set_last_fpi_lsn(Lsn(99));
        p.set_next_page(PageId(4));
        p.set_prev_page(PageId(3));
        p.set_level(2);
        p.set_flags(0xA5);
        assert_eq!(p.page_lsn(), Lsn(123));
        assert_eq!(p.last_fpi_lsn(), Lsn(99));
        assert_eq!(p.next_page(), PageId(4));
        assert_eq!(p.prev_page(), PageId(3));
        assert_eq!(p.level(), 2);
        assert_eq!(p.flags(), 0xA5);
    }

    #[test]
    fn page_type_decode_rejects_junk() {
        assert!(PageType::from_u16(77).is_err());
        assert_eq!(PageType::from_u16(3).unwrap(), PageType::BTreeLeaf);
    }
}
