//! Deterministic media-fault injection.
//!
//! [`FaultInjector`] wraps a [`MemFileManager`] and implements
//! [`FileManager`], so a whole database can be built on top of it
//! (`Database::create_on`) and subjected to the fault classes the media
//! hardening defends against:
//!
//! * **bit flip at rest** ([`FaultInjector::flip_bit`]) — one bit of a stored
//!   page image is inverted; the next read fails its CRC-32C with a
//!   consistent trailer and classifies as
//!   [`CorruptionKind::PageChecksum`](rewind_common::CorruptionKind).
//! * **torn write** ([`FaultInjector::arm_torn_write`]) — the next write to a
//!   chosen page persists only a prefix ending on a 512 B sector boundary;
//!   the old suffix (including the old trailer) survives, so the next read
//!   classifies as [`CorruptionKind::TornPage`](rewind_common::CorruptionKind).
//! * **short read / lost sectors** ([`FaultInjector::zero_tail`]) — the tail
//!   of a stored image from a sector boundary onward reads back as zeroes,
//!   as if the device returned fewer bytes than asked.
//! * **transient EIO** ([`FaultInjector::arm_eio_reads`] /
//!   [`FaultInjector::arm_eio_writes`]) — the next *n* random page reads or
//!   writes fail with [`Error::Io`]; the device "recovers" once the tokens
//!   are spent, so bounded retry in the layers above succeeds.
//! * **precise damage** ([`FaultInjector::corrupt_at_rest`]) — XOR a chosen
//!   byte of a stored image, for tests that need full control.
//!
//! All randomized choices (which bit, which sector boundary) come from a
//! seeded xorshift generator, so a run is a pure function of its seed — the
//! property the corruption-torture suite and its CI gate rely on.

use crate::file::{FileManager, MemFileManager};
use crate::io::IoBackend;
use crate::page::{Page, PAGE_SIZE, TRAILER_SIZE};
use crate::HEADER_SIZE;
use parking_lot::Mutex;
use rewind_common::{Error, IoStats, PageId, Result};
use std::sync::Arc;

/// Device sector size: torn writes and short reads happen on these
/// boundaries, matching the atomic-write granularity of real disks.
pub const SECTOR_SIZE: usize = 512;

const SECTORS_PER_PAGE: usize = PAGE_SIZE / SECTOR_SIZE;

/// A seeded xorshift64 generator — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        // xorshift has a fixed point at 0; displace any seed through a
        // splitmix-style constant so every seed (including 0) is usable.
        XorShift(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish value in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Default)]
struct FaultPlan {
    /// Next write to this page persists only a prefix of `cut` bytes.
    torn_write: Option<(PageId, usize)>,
    /// Fail this many upcoming random page reads with a transient EIO.
    eio_reads: u64,
    /// Fail this many upcoming random page writes with a transient EIO.
    eio_writes: u64,
}

/// A [`FileManager`] that injects deterministic, seed-driven media faults
/// into an in-memory backing file. See the module docs for the fault
/// classes.
pub struct FaultInjector {
    inner: MemFileManager,
    rng: Mutex<XorShift>,
    plan: Mutex<FaultPlan>,
}

impl FaultInjector {
    /// A fresh in-memory file behind a fault injector seeded with `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        Self::with_stats(seed, Arc::new(IoStats::new()))
    }

    /// As [`FaultInjector::new`], sharing the given I/O counters.
    pub fn with_stats(seed: u64, stats: Arc<IoStats>) -> FaultInjector {
        FaultInjector {
            inner: MemFileManager::with_stats(stats),
            rng: Mutex::new(XorShift::new(seed)),
            plan: Mutex::new(FaultPlan::default()),
        }
    }

    /// Invert one seed-chosen bit of `pid`'s stored image, inside the page
    /// body so the next read deterministically classifies as
    /// `PageChecksum` (header and trailer stay intact). Returns `false` if
    /// the page was never written.
    pub fn flip_bit(&self, pid: PageId) -> bool {
        let Some(mut img) = self.inner.raw_image(pid) else {
            return false;
        };
        let mut rng = self.rng.lock();
        let body = PAGE_SIZE - HEADER_SIZE - TRAILER_SIZE;
        let byte = HEADER_SIZE + rng.below(body);
        let bit = rng.below(8);
        img[byte] ^= 1 << bit;
        self.inner.store_raw(pid, img);
        true
    }

    /// XOR byte `offset` of `pid`'s stored image with `xor` — precise,
    /// caller-controlled damage. Returns `false` if the page was never
    /// written or `offset` is out of range.
    pub fn corrupt_at_rest(&self, pid: PageId, offset: usize, xor: u8) -> bool {
        if offset >= PAGE_SIZE || xor == 0 {
            return false;
        }
        let Some(mut img) = self.inner.raw_image(pid) else {
            return false;
        };
        img[offset] ^= xor;
        self.inner.store_raw(pid, img);
        true
    }

    /// Zero `pid`'s stored image from a seed-chosen sector boundary onward,
    /// as if a short read lost the tail sectors. The trailer is always in
    /// the zeroed region, so the next read classifies as `TornPage`.
    /// Returns `false` if the page was never written.
    pub fn zero_tail(&self, pid: PageId) -> bool {
        let Some(mut img) = self.inner.raw_image(pid) else {
            return false;
        };
        let cut = (1 + self.rng.lock().below(SECTORS_PER_PAGE - 1)) * SECTOR_SIZE;
        img[cut..].fill(0);
        self.inner.store_raw(pid, img);
        true
    }

    /// Arm a torn write: the next write to `pid` persists only a seed-chosen
    /// prefix (at least one sector, never the whole page); the previous
    /// image's suffix survives underneath.
    pub fn arm_torn_write(&self, pid: PageId) {
        let cut = (1 + self.rng.lock().below(SECTORS_PER_PAGE - 1)) * SECTOR_SIZE;
        self.plan.lock().torn_write = Some((pid, cut));
    }

    /// Fail the next `n` random page reads with a transient [`Error::Io`].
    pub fn arm_eio_reads(&self, n: u64) {
        self.plan.lock().eio_reads = n;
    }

    /// Fail the next `n` random page writes with a transient [`Error::Io`].
    pub fn arm_eio_writes(&self, n: u64) {
        self.plan.lock().eio_writes = n;
    }

    /// The wrapped in-memory file, for tests that need direct access.
    pub fn inner(&self) -> &MemFileManager {
        &self.inner
    }

    fn take_eio_read(&self) -> bool {
        let mut plan = self.plan.lock();
        if plan.eio_reads > 0 {
            plan.eio_reads -= 1;
            true
        } else {
            false
        }
    }

    fn take_eio_write(&self) -> bool {
        let mut plan = self.plan.lock();
        if plan.eio_writes > 0 {
            plan.eio_writes -= 1;
            true
        } else {
            false
        }
    }

    fn take_torn(&self, pid: PageId) -> Option<usize> {
        let mut plan = self.plan.lock();
        match plan.torn_write {
            Some((p, cut)) if p == pid => {
                plan.torn_write = None;
                Some(cut)
            }
            _ => None,
        }
    }

    /// The one fault gate for random reads: consume an EIO token (failing
    /// *before* any accounting, so an injected EIO never counts as a page
    /// read) or delegate. Scalar `read_page` and each page of a vectored
    /// batch route through identical token consumption.
    fn read_faulted(&self, pid: PageId) -> Option<Error> {
        if self.take_eio_read() {
            Some(Error::Io(format!("injected transient read error on {pid}")))
        } else {
            None
        }
    }

    /// The one fault gate for random writes: an EIO token fails the write
    /// outright; an armed tear persists only a sector prefix. Returns
    /// `None` when the write should pass through clean.
    fn write_faulted(&self, pid: PageId, page: &Page) -> Option<Result<()>> {
        if self.take_eio_write() {
            return Some(Err(Error::Io(format!(
                "injected transient write error on {pid}"
            ))));
        }
        if let Some(cut) = self.take_torn(pid) {
            // Persist only the prefix of the fully stamped new image; the
            // old suffix (or zeroes for a virgin page) survives underneath —
            // exactly what a power cut mid-write leaves behind.
            let mut stamped = page.clone();
            stamped.stamp_trailer();
            stamped.stamp_checksum();
            let mut img = self
                .inner
                .raw_image(pid)
                .unwrap_or_else(|| Box::new([0u8; PAGE_SIZE]));
            img[..cut].copy_from_slice(&stamped.image()[..cut]);
            self.inner.io_stats().add_page_writes(1);
            self.inner.store_raw(pid, img);
            return Some(Ok(()));
        }
        None
    }
}

impl FileManager for FaultInjector {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        if let Some(e) = self.read_faulted(pid) {
            return Err(e);
        }
        self.inner.read_page(pid)
    }

    fn read_page_seq(&self, pid: PageId) -> Result<Page> {
        self.inner.read_page_seq(pid)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        if let Some(res) = self.write_faulted(pid, page) {
            return res;
        }
        self.inner.write_page(pid, page)
    }

    fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()> {
        self.inner.write_page_seq(pid, page)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow_to(&self, count: u64) -> Result<()> {
        self.inner.grow_to(count)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn io_stats(&self) -> &Arc<IoStats> {
        self.inner.io_stats()
    }
}

impl IoBackend for FaultInjector {
    fn read_pages(&self, pids: &[PageId]) -> Vec<Result<Page>> {
        // Consume fault tokens page by page, exactly as N scalar reads
        // would, and hand the maximal clean segments to the inner backend
        // so run coalescing (and vectored-op accounting) survives fault
        // injection. A faulted page fails only its own slot.
        let mut out: Vec<Result<Page>> = Vec::with_capacity(pids.len());
        let mut seg_start = 0;
        for (i, &pid) in pids.iter().enumerate() {
            if let Some(e) = self.read_faulted(pid) {
                if seg_start < i {
                    out.extend(self.inner.read_pages(&pids[seg_start..i]));
                }
                out.push(Err(e));
                seg_start = i + 1;
            }
        }
        if seg_start < pids.len() {
            out.extend(self.inner.read_pages(&pids[seg_start..]));
        }
        out
    }

    fn write_pages(&self, batch: &[(PageId, Page)]) -> Vec<Result<()>> {
        let mut out: Vec<Result<()>> = Vec::with_capacity(batch.len());
        let mut seg_start = 0;
        for (i, (pid, page)) in batch.iter().enumerate() {
            if let Some(res) = self.write_faulted(*pid, page) {
                if seg_start < i {
                    out.extend(self.inner.write_pages(&batch[seg_start..i]));
                }
                out.push(res);
                seg_start = i + 1;
            }
        }
        if seg_start < batch.len() {
            out.extend(self.inner.write_pages(&batch[seg_start..]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use rewind_common::{CorruptionKind, Lsn, ObjectId};

    fn sample_page(pid: PageId) -> Page {
        let mut p = Page::formatted(pid, ObjectId(7), PageType::Heap);
        p.set_page_lsn(Lsn(4096));
        p.insert_record(0, b"fault fodder").unwrap();
        p
    }

    #[test]
    fn clean_passthrough_matches_mem() {
        let fi = FaultInjector::new(42);
        let p = sample_page(PageId(3));
        fi.write_page(PageId(3), &p).unwrap();
        let q = fi.read_page(PageId(3)).unwrap();
        assert_eq!(q.record(0).unwrap(), b"fault fodder");
        let s = fi.io_stats().snapshot();
        assert_eq!((s.page_writes, s.page_reads), (1, 1));
        assert_eq!(s.corruptions_detected, 0);
    }

    #[test]
    fn bit_flip_reads_back_as_page_checksum() {
        let fi = FaultInjector::new(1);
        fi.write_page(PageId(2), &sample_page(PageId(2))).unwrap();
        assert!(fi.flip_bit(PageId(2)));
        let err = fi.read_page(PageId(2)).unwrap_err();
        assert_eq!(err.corruption_kind(), Some(CorruptionKind::PageChecksum));
        assert_eq!(fi.io_stats().snapshot().corruptions_detected, 1);
        assert!(!fi.flip_bit(PageId(9)), "virgin page has nothing to flip");
    }

    #[test]
    fn torn_write_reads_back_as_torn_page() {
        let fi = FaultInjector::new(7);
        let pid = PageId(4);
        let mut old = sample_page(pid);
        fi.write_page(pid, &old).unwrap();
        // New version with a different pageLSN; tear the write.
        old.set_page_lsn(Lsn(8192));
        old.insert_record(1, b"second version").unwrap();
        fi.arm_torn_write(pid);
        fi.write_page(pid, &old).unwrap();
        let err = fi.read_page(pid).unwrap_err();
        assert_eq!(err.corruption_kind(), Some(CorruptionKind::TornPage));
        // The armed tear is one-shot: a clean rewrite heals the page.
        fi.write_page(pid, &old).unwrap();
        assert!(fi.read_page(pid).is_ok());
    }

    #[test]
    fn zero_tail_reads_back_as_torn_page() {
        let fi = FaultInjector::new(3);
        fi.write_page(PageId(5), &sample_page(PageId(5))).unwrap();
        assert!(fi.zero_tail(PageId(5)));
        let err = fi.read_page(PageId(5)).unwrap_err();
        assert_eq!(err.corruption_kind(), Some(CorruptionKind::TornPage));
    }

    #[test]
    fn transient_eio_is_bounded_and_typed() {
        let fi = FaultInjector::new(9);
        fi.write_page(PageId(6), &sample_page(PageId(6))).unwrap();
        fi.arm_eio_reads(2);
        for _ in 0..2 {
            let err = fi.read_page(PageId(6)).unwrap_err();
            assert!(err.is_transient(), "injected EIO must be retryable: {err}");
        }
        assert!(fi.read_page(PageId(6)).is_ok(), "device recovers after n");
        fi.arm_eio_writes(1);
        assert!(fi.write_page(PageId(6), &sample_page(PageId(6))).is_err());
        assert!(fi.write_page(PageId(6), &sample_page(PageId(6))).is_ok());
    }

    #[test]
    fn same_seed_same_faults() {
        let image = |seed| {
            let fi = FaultInjector::new(seed);
            fi.write_page(PageId(1), &sample_page(PageId(1))).unwrap();
            fi.flip_bit(PageId(1));
            fi.zero_tail(PageId(1));
            fi.inner().raw_image(PageId(1)).unwrap()
        };
        assert_eq!(image(123), image(123), "same seed must damage same bytes");
        assert_ne!(image(123), image(124), "different seed, different damage");
    }

    #[test]
    fn corrupt_at_rest_is_precise() {
        let fi = FaultInjector::new(0);
        fi.write_page(PageId(2), &sample_page(PageId(2))).unwrap();
        assert!(!fi.corrupt_at_rest(PageId(2), PAGE_SIZE, 0xFF), "oob");
        assert!(!fi.corrupt_at_rest(PageId(2), 100, 0), "no-op xor");
        assert!(fi.corrupt_at_rest(PageId(2), HEADER_SIZE + 1, 0x01));
        assert!(fi.read_page(PageId(2)).is_err());
        // Undo the damage: the page verifies again.
        assert!(fi.corrupt_at_rest(PageId(2), HEADER_SIZE + 1, 0x01));
        assert!(fi.read_page(PageId(2)).is_ok());
    }
}
